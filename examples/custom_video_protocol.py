#!/usr/bin/env python
"""A custom application-specific protocol on raw U-Net.

§1/§2.3 motivate U-Net's flexibility with "customized retransmission
protocols which embody knowledge of the real-time demands as well as
the interdependencies among video frames" (citing Cyclic-UDP).  This
example builds exactly that, straight on raw U-Net descriptors:

* I-frames (anchors) are retransmitted until acknowledged;
* P-frames (deltas) are sent once and *never* retransmitted -- a late
  P-frame is useless, so the protocol spends the bandwidth on the next
  frame instead.

No kernel, no socket API, no TCP semantics forced onto the stream --
the protocol is ~80 lines of user-level code.

Run:  python examples/custom_video_protocol.py
"""

import struct

from repro.core import SendDescriptor, UNetCluster
from repro.sim import AnyOf, Simulator

FRAME_BYTES = 3000
N_FRAMES = 48
I_FRAME_EVERY = 8
HEADER = struct.Struct(">BHH")  # type (I=1/P=2/ACK=3), frame id, chunk
FRAME_PERIOD_US = 2000.0


def main():
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    # drop a burst of cells mid-stream: switch congestion
    lost = {"n": 0}

    def burst_loss(cell):
        lost["n"] += 1
        return 2000 <= lost["n"] < 2120

    cluster.hosts["alice"].ni.port.tx_link.loss_fn = burst_loss
    kwargs = dict(segment_size=512 * 1024, send_ring=128, recv_ring=128,
                  free_ring=128)
    tx = cluster.open_session("alice", "encoder", **kwargs)
    rx = cluster.open_session("bob", "player", **kwargs)
    ch_tx, ch_rx = cluster.connect_sessions(tx, rx)
    stats = {"i_ok": 0, "p_ok": 0, "p_lost": 0, "retx": 0}
    acked = set()
    received = {}

    def encoder():
        yield from tx.provide_receive_buffers(8)
        unacked_i = {}
        for frame in range(N_FRAMES):
            is_i = frame % I_FRAME_EVERY == 0
            kind = 1 if is_i else 2
            payload = HEADER.pack(kind, frame, 0) + bytes([frame % 256]) * FRAME_BYTES
            offset = tx.alloc(len(payload))
            try:
                yield from tx.write_segment(offset, payload)
                desc = SendDescriptor(channel=ch_tx.ident, bufs=((offset, len(payload)),))
                yield from tx.send(desc)
            except Exception:
                tx.free(offset, len(payload))
                raise
            if is_i:
                unacked_i[frame] = (offset, len(payload))
            else:
                yield tx.endpoint.wait_send_complete(desc)
                tx.free(offset, len(payload))
            # real-time pacing + I-frame retransmission policy
            deadline = sim.now + FRAME_PERIOD_US
            while sim.now < deadline:
                wait = tx.endpoint.wait_recv(tx.caller)
                timer = sim.timeout(deadline - sim.now)
                yield AnyOf(sim, [wait, timer])
                while True:
                    ack = tx.recv_poll()
                    if ack is None:
                        break
                    _, fid, _ = HEADER.unpack(tx.peek_payload(ack)[: HEADER.size])
                    if fid in unacked_i:
                        off, ln = unacked_i.pop(fid)
                        tx.free(off, ln)
            # anchor frames past their period and still unacked: resend
            for fid, (off, ln) in list(unacked_i.items()):
                stats["retx"] += 1
                resend = SendDescriptor(channel=ch_tx.ident, bufs=((off, ln),))
                yield from tx.send(resend)

    def player():
        yield from rx.provide_receive_buffers(32)
        while stats["i_ok"] + stats["p_ok"] + stats["p_lost"] < N_FRAMES - 4:
            desc = yield from rx.recv()
            raw = rx.peek_payload(desc)
            kind, fid, _ = HEADER.unpack(raw[: HEADER.size])
            if not desc.is_inline:
                yield from rx.repost_free(desc)
            if fid in received:
                continue
            received[fid] = True
            if kind == 1:
                stats["i_ok"] += 1
                ack = HEADER.pack(3, fid, 0)
                yield from rx.send(SendDescriptor(channel=ch_rx.ident, inline=ack))
            else:
                stats["p_ok"] += 1

    sim.process(encoder())
    sim.process(player())
    sim.run(until=5e6)

    i_sent = (N_FRAMES + I_FRAME_EVERY - 1) // I_FRAME_EVERY
    p_sent = N_FRAMES - i_sent
    stats["p_lost"] = p_sent - stats["p_ok"]
    print(f"cells dropped by the network : ~120 (burst)")
    print(f"I-frames delivered           : {stats['i_ok']}/{i_sent} "
          f"(with {stats['retx']} selective retransmissions)")
    print(f"P-frames delivered           : {stats['p_ok']}/{p_sent} "
          f"({stats['p_lost']} lost and deliberately NOT retransmitted)")
    assert stats["i_ok"] == i_sent, "every anchor frame must arrive"
    print("\nall anchor frames arrived; late deltas were skipped -- a policy "
          "no kernel TCP/UDP stack could express (§2.3).")


if __name__ == "__main__":
    main()
