#!/usr/bin/env python
"""Event-driven reception with upcalls (§3.1).

A server that does *not* poll: it registers a UNIX-signal-style upcall
for the "receive queue non-empty" condition and spends its time on a
foreground computation.  The upcall handler drains every pending
message in one invocation (amortizing the ~30 us signal cost) and uses
disable/enable to form critical sections around its shared counter.

Run:  python examples/event_driven_server.py
"""

from repro.core import SendDescriptor, UNetCluster, register_upcall
from repro.core.upcall import UpcallCondition
from repro.sim import Simulator


def main():
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    client = cluster.open_session("alice", "client")
    server = cluster.open_session("bob", "server")
    ch_c, ch_s = cluster.connect_sessions(client, server)
    stats = {"handled": 0, "upcalls": 0, "compute_iterations": 0}

    # ---- the event-driven server -------------------------------------------
    def handler(endpoint):
        """Runs after signal delivery; consumes ALL pending messages."""
        stats["upcalls"] += 1
        batch = endpoint.recv_drain("server")
        for desc in batch:
            stats["handled"] += 1
            # per-message application processing
            yield from cluster.hosts["bob"].compute(5.0)
        print(f"  [{sim.now:9.1f} us] upcall #{stats['upcalls']}: "
              f"drained {len(batch)} message(s)")

    register_upcall(
        cluster.hosts["bob"], server.endpoint, handler, caller="server",
        condition=UpcallCondition.RECV_NONEMPTY,
    )

    def server_foreground():
        """The server's main thread crunches numbers, oblivious to the
        network -- except inside its critical section."""
        for i in range(40):
            yield from cluster.hosts["bob"].compute(50.0)
            stats["compute_iterations"] += 1
            if i == 20:
                # critical section: updates that must not interleave
                # with message handling (§3.1: upcalls can be disabled
                # cheaply)
                server.endpoint.disable_upcalls("server")
                yield from cluster.hosts["bob"].compute(200.0)
                server.endpoint.enable_upcalls("server")
                print(f"  [{sim.now:9.1f} us] critical section done "
                      "(upcalls were held)")

    # ---- a bursty client ---------------------------------------------------
    def client_proc():
        yield from client.provide_receive_buffers(4)
        for burst in range(4):
            for i in range(5):
                msg = f"b{burst}m{i}".encode()
                yield from client.send(
                    SendDescriptor(channel=ch_c.ident, inline=msg)
                )
            yield sim.timeout(600.0)  # gap between bursts

    sim.process(server_foreground())
    sim.process(client_proc())
    sim.run(until=1e6)

    print(f"\nmessages handled : {stats['handled']} (sent 20)")
    print(f"upcalls taken    : {stats['upcalls']} "
          "(bursts amortize the 30 us signal over several messages)")
    print(f"foreground loops : {stats['compute_iterations']}/40 completed")
    assert stats["handled"] == 20
    assert stats["upcalls"] < 20


if __name__ == "__main__":
    main()
