#!/usr/bin/env python
"""A tiny distributed key-value store on U-Net Active Messages.

Demonstrates §2.1's motivating workload -- "requests to simple database
servers" with 20-80 byte requests -- and the GAM request/reply +
bulk-store programming model: GET/PUT of small values by request/reply,
bulk upload of a large value with ``store``.

Run:  python examples/active_messages_kvstore.py
"""

import struct

from repro.am import UAM
from repro.core import UNetCluster
from repro.sim import Simulator

H_GET = 1
H_GET_REPLY = 2
H_PUT = 3
H_PUT_ACK = 4
H_BLOB_DONE = 5


def main():
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(segment_size=512 * 1024, send_ring=128, recv_ring=128,
                  free_ring=128)
    client_session = cluster.open_session("alice", "kv-client", **kwargs)
    server_session = cluster.open_session("bob", "kv-server", **kwargs)
    ch_c, ch_s = cluster.connect_sessions(client_session, server_session)
    client, server = UAM(client_session), UAM(server_session)

    database = {}
    state = {"replies": 0, "blob": None}

    # ---- server handlers (run at message-arrival time) -------------------
    def on_get(uam, channel, msg):
        key = msg.payload.decode()
        value = database.get(key, b"<missing>")
        yield from uam.reply(H_GET_REPLY, value[:36])

    def on_put(uam, channel, msg):
        key_len = msg.payload[0]
        key = msg.payload[1 : 1 + key_len].decode()
        database[key] = msg.payload[1 + key_len :]
        yield from uam.reply(H_PUT_ACK, b"ok")

    def on_blob(uam, channel, msg):
        # bulk store completed: msg.base/msg.total locate it in memory
        database["blob"] = bytes(uam.memory[msg.base : msg.base + msg.total])
        return
        yield

    server.register_handler(H_GET, on_get)
    server.register_handler(H_PUT, on_put)
    server.register_handler(H_BLOB_DONE, on_blob)

    # ---- client handlers -------------------------------------------------
    def on_get_reply(uam, channel, msg):
        state["value"] = msg.payload
        state["replies"] += 1
        return
        yield

    def on_put_ack(uam, channel, msg):
        state["replies"] += 1
        return
        yield

    client.register_handler(H_GET_REPLY, on_get_reply)
    client.register_handler(H_PUT_ACK, on_put_ack)

    def wait_replies(n):
        while state["replies"] < n:
            yield from client.poll_wait()

    def client_proc():
        yield from client.open_channel(ch_c.ident)
        # PUT small values: 20-80 byte requests, as in §2.1
        t0 = sim.now
        for key, value in [("alpha", b"1"), ("beta", b"22"), ("gamma", b"333")]:
            payload = bytes([len(key)]) + key.encode() + value
            yield from client.request(ch_c.ident, H_PUT, payload)
        yield from wait_replies(3)
        print(f"3 PUTs in {sim.now - t0:.1f} us "
              f"({(sim.now - t0) / 3:.1f} us per request/reply)")

        t0 = sim.now
        yield from client.request(ch_c.ident, H_GET, b"beta")
        yield from wait_replies(4)
        print(f"GET beta -> {state['value']!r} in {sim.now - t0:.1f} us")

        # bulk upload: a 64 KB value via reliable UAM store
        blob = bytes(i % 256 for i in range(64 * 1024))
        t0 = sim.now
        yield from client.store(ch_c.ident, blob, remote_addr=0, handler=H_BLOB_DONE)
        while "blob" not in database:
            yield from client.poll_wait()
        dt = sim.now - t0
        print(f"64 KB blob stored in {dt:.1f} us "
              f"({len(blob) / dt:.2f} MB/s; fiber limit ~15.2)")
        assert database["blob"] == blob
        state["done"] = True

    def server_proc():
        yield from server.open_channel(ch_s.ident)
        while not state.get("done"):
            yield from server.poll_wait(timeout_us=500.0)

    sim.process(client_proc())
    sim.process(server_proc())
    sim.run(until=1e8)
    print(f"database keys: {sorted(database)}")
    print(f"UAM retransmissions: {client.retransmissions + server.retransmissions}")


if __name__ == "__main__":
    main()
