#!/usr/bin/env python
"""Split-C parallel sorting across machine models (§6 / Figure 5).

Runs the sample sort -- both the small-message and the bulk-transfer
variant -- on 8-node models of the CM-5, the U-Net ATM cluster, and the
Meiko CS-2, then validates the ATM model against the *full* simulated
U-Net stack.

Run:  python examples/splitc_parallel_sort.py
"""

from repro.splitc.apps import sample_sort
from repro.splitc.harness import run_on_machine, run_on_unet_cluster
from repro.splitc.machines import ATM_CLUSTER, CM5, MEIKO_CS2

N = 2048  # keys per processor


def main():
    for bulk in (False, True):
        variant = "bulk transfers" if bulk else "small messages"
        print(f"sample sort, {variant} (8 procs x {N} keys):")
        base = None
        for machine in (CM5, ATM_CLUSTER, MEIKO_CS2):
            r = run_on_machine(
                machine, sample_sort, nprocs=8, n_per_proc=N, bulk=bulk
            )
            assert r.verified, "sort produced wrong output!"
            base = base or r.total_us
            print(f"  {machine.name:12s} {r.total_us / 1e3:8.2f} ms "
                  f"(x{r.total_us / base:4.2f} of CM-5)   "
                  f"comm {r.comm_fraction:4.0%}")
        print()

    print("validating the ATM model against the full U-Net stack "
          "(4 procs, real AAL5 cells on a simulated switch)...")
    full = run_on_unet_cluster(sample_sort, nprocs=4, n_per_proc=512, bulk=True)
    model = run_on_machine(
        ATM_CLUSTER, sample_sort, nprocs=4, n_per_proc=512, bulk=True
    )
    print(f"  full stack {full.total_us / 1e3:.2f} ms vs model "
          f"{model.total_us / 1e3:.2f} ms -- both verified: "
          f"{full.verified and model.verified}")


if __name__ == "__main__":
    main()
