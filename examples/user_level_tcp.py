#!/usr/bin/env python
"""User-level TCP over U-Net vs the SunOS kernel stack (§7).

Transfers 1 MB over both stacks and runs a small request/response
exchange, printing the Figure 8/9 story: the user-level stack reaches
the fiber rate with an 8 KB window while the kernel path crawls.

Run:  python examples/user_level_tcp.py
"""

from repro.bench.ip import build_kernel_atm_pair, build_unet_pair
from repro.ip.tcp import TcpConfig

TOTAL = 1_000_000


def transfer(kind):
    if kind == "unet":
        sim, net, stack_a, stack_b = build_unet_pair()
        config = TcpConfig(window=8192)  # §7.7: 8 KB is enough
    else:
        sim, net, stack_a, stack_b = build_kernel_atm_pair()
        config = stack_b.tcp_config(window=52 * 1024)
    server = stack_b.tcp_listen(9000, peer_addr=1, config=config)
    data = bytes(i % 256 for i in range(TOTAL))
    out = {}

    def client():
        conn = yield from stack_a.tcp_connect(2, 9000, config=config)
        out["t0"] = sim.now
        yield from conn.send(data)

    def srv():
        yield from server.wait_established()
        buf = bytearray()
        while len(buf) < TOTAL:
            chunk = yield from server.recv(1 << 20)
            buf.extend(chunk)
        out["t1"] = sim.now
        out["ok"] = bytes(buf) == data

    sim.process(client())
    sim.process(srv())
    sim.run(until=1e10)
    seconds = (out["t1"] - out["t0"]) / 1e6
    return TOTAL / seconds / 1e6, out["ok"], config.window


def main():
    for kind, label in (("unet", "U-Net TCP (user level)"),
                        ("kernel-atm", "kernel TCP (SunOS + Fore driver)")):
        rate, ok, window = transfer(kind)
        print(f"{label:34s} window {window // 1024:2d} KB: "
              f"{rate:5.2f} MB/s ({rate * 8:5.1f} Mbit/s)  "
              f"integrity {'OK' if ok else 'FAIL'}")
    print("\npaper: U-Net TCP 14-15 MB/s with 8 KB windows; kernel TCP "
          "9-10 MB/s even with 64 KB (Figure 8)")


if __name__ == "__main__":
    main()
