#!/usr/bin/env python
"""Quickstart: bring up a two-workstation U-Net cluster, open endpoints,
connect a channel through the kernel agents, and ping-pong a message.

Run:  python examples/quickstart.py
"""

from repro.core import ProtectionError, SendDescriptor, UNetCluster
from repro.sim import Simulator


def main():
    sim = Simulator()
    # Two 60 MHz SPARCstation-20s on a simulated ASX-200 ATM switch.
    cluster = UNetCluster.pair(sim)

    # Each *process* creates an endpoint via its kernel agent and gets a
    # session handle (segment + send/recv/free queues).
    client = cluster.open_session("alice", owner="client-process")
    server = cluster.open_session("bob", owner="server-process")

    # The cluster directory authenticates both sides, allocates a VCI
    # pair, programs the switch, and installs the channel in both muxes.
    ch_client, ch_server = cluster.connect_sessions(client, server, "demo-svc")
    print(f"channel established: {ch_client}")

    rtts = []

    def client_proc():
        yield from client.provide_receive_buffers(8)
        for i in range(5):
            t0 = sim.now
            # <= 40-byte messages ride inline in the descriptor: the
            # single-cell fast path (~65 us round trips).
            msg = f"ping {i}".encode()
            yield from client.send(SendDescriptor(channel=ch_client.ident, inline=msg))
            reply = yield from client.recv()
            rtts.append(sim.now - t0)
            print(f"  [{sim.now:8.1f} us] client got {client.peek_payload(reply)!r}")

    def server_proc():
        yield from server.provide_receive_buffers(8)
        for _ in range(5):
            desc = yield from server.recv()
            text = server.peek_payload(desc).decode()
            reply = text.replace("ping", "pong").encode()
            yield from server.send(SendDescriptor(channel=ch_server.ident, inline=reply))

    sim.process(client_proc())
    sim.process(server_proc())
    sim.run(until=1e6)

    print(f"\nmean round trip: {sum(rtts) / len(rtts):.1f} us "
          "(the paper's Figure 3 single-cell point is 65 us)")

    # Protection: another process cannot touch the client's endpoint.
    try:
        client.endpoint.recv_poll("evil-process")
    except ProtectionError as exc:
        print(f"protection works: {exc}")


if __name__ == "__main__":
    main()
