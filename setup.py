"""Setup shim for environments without the `wheel` package (offline),
where PEP 517 editable installs cannot build. `pip install -e . --no-use-pep517`
falls back to this file. Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
