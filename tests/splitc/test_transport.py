"""Transport timing semantics (LogP model) and UNetTransport plumbing."""

import pytest

from repro.core import UNetCluster
from repro.sim import Simulator
from repro.splitc import CM5, MEIKO_CS2, ModelTransport, UNetTransport
from repro.splitc.machines import MachineSpec


def collect(sim, transport, rank, hits):
    def handler(src, data):
        hits.append((sim.now, src, data))
        return
        yield

    transport.attach(rank, handler)


class TestModelTransportTiming:
    def test_small_message_cost(self):
        """Sender busy o; delivery after o + L + o."""
        sim = Simulator()
        tp = ModelTransport(sim, CM5, 2)
        hits = []
        collect(sim, tp, 1, hits)

        def sender():
            yield from tp.send(0, 1, b"m")
            return sim.now

        p = sim.process(sender())
        sim.run()
        assert p.value == pytest.approx(CM5.overhead_us)
        expected = CM5.overhead_us + CM5.one_way_wire_us + CM5.overhead_us
        assert hits[0][0] == pytest.approx(expected)

    def test_bulk_serialization_at_bandwidth(self):
        sim = Simulator()
        tp = ModelTransport(sim, CM5, 2)
        hits = []
        collect(sim, tp, 1, hits)
        nbytes = 100_000

        def sender():
            yield from tp.send_bulk(0, 1, bytes(nbytes))

        sim.process(sender())
        sim.run()
        wire = CM5.bulk_wire_us(nbytes)
        expected = CM5.overhead_us + wire + CM5.one_way_wire_us + CM5.overhead_us
        assert hits[0][0] == pytest.approx(expected, rel=0.01)

    def test_per_source_ordering(self):
        """A bulk followed by a small message from one source must not
        be overtaken."""
        sim = Simulator()
        tp = ModelTransport(sim, CM5, 2)
        hits = []
        collect(sim, tp, 1, hits)

        def sender():
            yield from tp.send_bulk(0, 1, bytes(50_000))
            yield from tp.send(0, 1, b"after")

        sim.process(sender())
        sim.run()
        assert [h[2] for h in hits][-1] == b"after"
        assert len(hits) == 2

    def test_machine_parameters_differentiate(self):
        """The same exchange is slower on the higher-overhead Meiko."""
        def rtt(machine: MachineSpec) -> float:
            sim = Simulator()
            tp = ModelTransport(sim, machine, 2)
            times = {}

            def echo(src, data):
                yield from tp.send(1, 0, data)

            def done(src, data):
                times["t1"] = sim.now
                return
                yield

            tp.attach(1, echo)
            tp.attach(0, done)

            def client():
                yield from tp.send(0, 1, b"x")

            sim.process(client())
            sim.run()
            return times["t1"]

        assert rtt(CM5) < rtt(MEIKO_CS2)

    def test_handlers_can_send_without_deadlock(self):
        """Reply-from-handler re-acquires the CPU (regression test for
        the re-entrant resource deadlock)."""
        sim = Simulator()
        tp = ModelTransport(sim, CM5, 2)
        got = {}

        def echo(src, data):
            yield from tp.send(1, src, b"re:" + data)

        def sink(src, data):
            got["reply"] = data
            return
            yield

        tp.attach(1, echo)
        tp.attach(0, sink)

        def client():
            yield from tp.send(0, 1, b"hello")

        sim.process(client())
        sim.run(until=1e6)
        assert got.get("reply") == b"re:hello"

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelTransport(Simulator(), CM5, 0)


class TestUNetTransport:
    def _build(self, nprocs=3):
        sim = Simulator()
        cluster = UNetCluster(sim, [(f"h{i}", 60.0) for i in range(nprocs)])
        return sim, UNetTransport(cluster, nprocs=nprocs)

    def test_small_messages_use_single_cell_requests(self):
        sim, tp = self._build(2)
        hits = []
        collect(sim, tp, 1, hits)

        def main():
            yield from tp.start()
            yield from tp.send(0, 1, b"tiny")

        sim.process(main())
        sim.run(until=1e6)
        assert hits and hits[0][2] == b"tiny"
        # single-cell request: delivered on the ~70 us UAM timescale
        assert hits[0][0] < 200.0

    def test_bulk_goes_via_uam_store(self):
        sim, tp = self._build(2)
        hits = []
        collect(sim, tp, 1, hits)
        blob = bytes(i % 256 for i in range(10_000))

        def main():
            yield from tp.start()
            yield from tp.send_bulk(0, 1, blob)

        sim.process(main())
        sim.run(until=1e7)
        assert hits and hits[0][2] == blob

    def test_all_pairs_connected(self):
        sim, tp = self._build(3)
        for a in range(3):
            peers = set(tp._channel_to[a])
            assert peers == {b for b in range(3) if b != a}

    def test_too_few_hosts_rejected(self):
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        with pytest.raises(ValueError):
            UNetTransport(cluster, nprocs=3)
