"""Runtime collectives: allreduce and broadcast."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.splitc import CM5, ModelTransport, SplitC


def build(nprocs=4):
    sim = Simulator()
    tp = ModelTransport(sim, CM5, nprocs)
    scs = [SplitC(tp, r) for r in range(nprocs)]
    return sim, scs


def run_all(sim, mains):
    procs = [sim.process(m) for m in mains]
    sim.run(until=1e9)
    assert all(not p.is_alive for p in procs), "a rank stalled"


class TestAllreduce:
    def test_sums_all_partials(self):
        sim, scs = build(4)
        for sc in scs:
            sc.alloc("red", 5)
        got = {}

        def main(sc):
            total = yield from sc.allreduce_sum("red", float(sc.rank + 1))
            got[sc.rank] = total

        run_all(sim, [main(sc) for sc in scs])
        assert all(v == 10.0 for v in got.values())  # 1+2+3+4

    def test_repeated_reductions(self):
        sim, scs = build(3)
        for sc in scs:
            sc.alloc("red", 4)
        got = {r: [] for r in range(3)}

        def main(sc):
            for round_ in range(4):
                total = yield from sc.allreduce_sum("red", float(round_))
                got[sc.rank].append(total)

        run_all(sim, [main(sc) for sc in scs])
        for r in range(3):
            assert got[r] == [0.0, 3.0, 6.0, 9.0]

    def test_undersized_array_rejected(self):
        sim, scs = build(4)
        for sc in scs:
            sc.alloc("red", 3)  # needs 5

        def main(sc):
            with pytest.raises(ValueError, match="slots"):
                yield from sc.allreduce_sum("red", 1.0)

        run_all(sim, [main(scs[0])])


class TestBroadcast:
    def test_root_value_everywhere(self):
        sim, scs = build(4)
        for sc in scs:
            sc.alloc("vec", 8)

        def main(sc):
            if sc.rank == 2:
                sc.local("vec")[:] = np.arange(8) * 1.5
            yield from sc.barrier()
            yield from sc.broadcast("vec", root=2)

        run_all(sim, [main(sc) for sc in scs])
        for sc in scs:
            assert np.array_equal(sc.local("vec"), np.arange(8) * 1.5)

    def test_default_root_zero(self):
        sim, scs = build(3)
        for sc in scs:
            sc.alloc("vec", 4)

        def main(sc):
            if sc.rank == 0:
                sc.local("vec")[:] = 7.0
            yield from sc.barrier()
            yield from sc.broadcast("vec")

        run_all(sim, [main(sc) for sc in scs])
        assert all(np.all(sc.local("vec") == 7.0) for sc in scs)
