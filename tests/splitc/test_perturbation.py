"""Split-C end-to-end under same-timestamp tie-break perturbation.

The paper's Figure 5 apps run over the full U-Net stack; their results
must not depend on the engine's FIFO accident for same-timestamp heap
entries.  This drives sample_sort through every perturbation order the
harness supports (fifo baseline, lifo, two seeded-random shuffles) and
asserts bit-identical results.
"""

from repro.analysis import perturb


def test_sample_sort_identical_under_all_tie_orders():
    verdict = perturb.race_check("sample_sort", random_orders=2)
    assert not verdict.diverged, verdict.format()
    assert verdict.confirmed == []
    baseline = verdict.baseline
    # four orders total: fifo baseline + lifo + random:1 + random:2
    assert [run.order for run in verdict.runs] == ["lifo", "random:1", "random:2"]
    for run in verdict.runs:
        assert run.metrics == baseline.metrics, (
            f"order {run.order} changed the app result"
        )
    # the app itself must have verified its sorted output in every run
    assert baseline.metrics["verified"] == "1"


def test_model_machine_suite_identical_under_lifo():
    """The LogP machine model (fig5 scenario) is likewise order-stable."""
    baseline = perturb.run_scenario("fig5", tie="fifo")
    lifo = perturb.run_scenario("fig5", tie="lifo")
    assert lifo.metrics == baseline.metrics
