"""Figure 5 shape assertions: who wins where, normalized to the CM-5.

The paper's claims (§6):

* matmul "shows clearly the CPU and network bandwidth disadvantages of
  the CM-5" -- ATM and Meiko win big;
* sample sort small-message shows "the CM-5['s] per-message overhead
  advantage";
* "the bulk message version improves the Meiko and ATM cluster
  performance dramatically with respect to the CM-5";
* the ATM cluster "performs worse than the CM-5 in applications using
  small messages (such as the small message radix sort and connected
  components) but better in ones optimized for bulk transfers";
* overall, the ATM cluster "is roughly equivalent to the Meiko CS-2".
"""

import pytest

from repro.splitc.apps import (
    blocked_matmul,
    connected_components,
    radix_sort,
    sample_sort,
)
from repro.splitc.harness import run_on_machine
from repro.splitc.machines import ATM_CLUSTER, CM5, MEIKO_CS2

# moderate sizes keep the suite quick while preserving the ratios
PARAMS = dict(nprocs=8)


def normalized(app, **params):
    rows = {}
    for machine in (CM5, ATM_CLUSTER, MEIKO_CS2):
        r = run_on_machine(machine, app, **PARAMS, **params)
        assert r.verified, f"{app.__name__} wrong on {machine.name}"
        rows[machine.name] = r.total_us
    cm5 = rows["CM-5"]
    return rows["U-Net ATM"] / cm5, rows["Meiko CS-2"] / cm5


class TestMatmul:
    def test_atm_and_meiko_beat_cm5(self):
        atm, meiko = normalized(blocked_matmul, n_blocks=4, block=32)
        assert atm < 0.7
        assert meiko < 0.7


class TestSampleSort:
    def test_small_message_version_favors_cm5(self):
        atm, meiko = normalized(sample_sort, n_per_proc=2048)
        assert atm > 1.0  # CM-5's per-message overhead advantage
        assert meiko > 1.0

    def test_bulk_version_flips_the_ranking(self):
        atm, meiko = normalized(sample_sort, n_per_proc=2048, bulk=True)
        assert atm < 0.8
        assert meiko < 0.8

    def test_bulk_improves_atm_dramatically(self):
        small_atm, _ = normalized(sample_sort, n_per_proc=2048)
        bulk_atm, _ = normalized(sample_sort, n_per_proc=2048, bulk=True)
        assert bulk_atm < small_atm / 2


class TestRadixSort:
    def test_small_message_version_favors_cm5(self):
        atm, _ = normalized(radix_sort, n_per_proc=2048)
        assert atm > 1.0

    def test_bulk_version_favors_atm(self):
        atm, meiko = normalized(radix_sort, n_per_proc=2048, bulk=True)
        assert atm < 1.0
        assert meiko < 1.0


class TestConnectedComponents:
    def test_small_message_app_favors_cm5(self):
        atm, _ = normalized(connected_components, n_per_proc=512)
        assert atm > 1.0


class TestAtmVsMeiko:
    def test_roughly_equivalent_overall(self):
        """§8: 'networks of workstations can indeed rival these
        specially-designed machines' -- geometric-mean ratio ATM/Meiko
        across the suite is near 1."""
        import math

        ratios = []
        for app, params in [
            (blocked_matmul, dict(n_blocks=4, block=32)),
            (sample_sort, dict(n_per_proc=2048)),
            (sample_sort, dict(n_per_proc=2048, bulk=True)),
            (radix_sort, dict(n_per_proc=2048, bulk=True)),
        ]:
            atm, meiko = normalized(app, **params)
            ratios.append(atm / meiko)
        gmean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        assert 0.4 < gmean < 2.0
