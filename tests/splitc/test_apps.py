"""The seven Split-C applications compute correct answers (verified
against serial ground truth) on every machine model, and the full-stack
U-Net transport agrees with the model."""

import pytest

from repro.splitc.apps import (
    blocked_matmul,
    conjugate_gradient,
    connected_components,
    radix_sort,
    sample_sort,
)
from repro.splitc.harness import run_on_machine, run_on_unet_cluster
from repro.splitc.machines import ALL_MACHINES, ATM_CLUSTER, CM5

SMALL = {
    "matmul": (blocked_matmul, {"n_blocks": 2, "block": 16}),
    "sample": (sample_sort, {"n_per_proc": 512}),
    "sample-bulk": (sample_sort, {"n_per_proc": 512, "bulk": True}),
    "radix": (radix_sort, {"n_per_proc": 512}),
    "radix-bulk": (radix_sort, {"n_per_proc": 512, "bulk": True}),
    "cc": (connected_components, {"n_per_proc": 256}),
    "cg": (conjugate_gradient, {"m": 16, "iterations": 8}),
}


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_verified_on_cm5_model(self, name):
        app, params = SMALL[name]
        result = run_on_machine(CM5, app, nprocs=4, label=name, **params)
        assert result.verified

    @pytest.mark.parametrize("name", ["matmul", "sample-bulk", "cg"])
    def test_verified_on_atm_model(self, name):
        app, params = SMALL[name]
        result = run_on_machine(ATM_CLUSTER, app, nprocs=4, label=name, **params)
        assert result.verified

    def test_different_proc_counts(self):
        for nprocs in (2, 8):
            result = run_on_machine(
                CM5, sample_sort, nprocs=nprocs, n_per_proc=256
            )
            assert result.verified


class TestTimingsShape:
    def test_total_at_least_busy_time(self):
        app, params = SMALL["sample"]
        r = run_on_machine(CM5, app, nprocs=4, **params)
        assert r.total_us >= r.compute_us
        assert r.total_us >= 0 and r.comm_us > 0

    def test_bulk_variant_communicates_less_time(self):
        small = run_on_machine(ATM_CLUSTER, sample_sort, nprocs=4, n_per_proc=1024)
        bulk = run_on_machine(
            ATM_CLUSTER, sample_sort, nprocs=4, n_per_proc=1024, bulk=True
        )
        assert bulk.comm_us < small.comm_us

    def test_cpu_factor_speeds_up_compute(self):
        cm5 = run_on_machine(CM5, conjugate_gradient, nprocs=4, m=16, iterations=4)
        atm = run_on_machine(
            ATM_CLUSTER, conjugate_gradient, nprocs=4, m=16, iterations=4
        )
        assert atm.compute_us < cm5.compute_us / 2


class TestFullStackValidation:
    """Split-C over real UAM over the simulated ATM cluster must produce
    the same verified results as the model transport."""

    def test_sample_sort_over_unet(self):
        result = run_on_unet_cluster(sample_sort, nprocs=4, n_per_proc=256)
        assert result.verified

    def test_matmul_over_unet(self):
        result = run_on_unet_cluster(
            blocked_matmul, nprocs=4, n_blocks=2, block=16
        )
        assert result.verified

    def test_cg_over_unet(self):
        result = run_on_unet_cluster(
            conjugate_gradient, nprocs=4, m=16, iterations=6
        )
        assert result.verified

    def test_model_and_full_stack_agree_on_timescale(self):
        """The ATM machine model's Table 2 numbers were measured from
        this very stack, so total times should agree within ~2.5x."""
        model = run_on_machine(
            ATM_CLUSTER, sample_sort, nprocs=4, n_per_proc=256, bulk=True
        )
        full = run_on_unet_cluster(
            sample_sort, nprocs=4, n_per_proc=256, bulk=True
        )
        assert full.verified and model.verified
        ratio = full.total_us / model.total_us
        assert 0.4 < ratio < 2.5
