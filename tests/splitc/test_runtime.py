"""Split-C runtime semantics over the model transport."""

import numpy as np
import pytest

from repro.sim import Simulator
from repro.splitc import CM5, ModelTransport, SplitC


def build(nprocs=4):
    sim = Simulator()
    tp = ModelTransport(sim, CM5, nprocs)
    scs = [SplitC(tp, r) for r in range(nprocs)]
    return sim, tp, scs


def run_all(sim, mains, until=1e9):
    procs = [sim.process(m) for m in mains]
    sim.run(until=until)
    assert all(not p.is_alive for p in procs), "a rank stalled"
    return procs


class TestScalarOps:
    def test_read_remote(self):
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("a", 4)
        out = {}

        def main(sc):
            sc.local("a")[:] = sc.rank + 1
            yield from sc.barrier()
            out[sc.rank] = (yield from sc.read(1 - sc.rank, "a", 2))

        run_all(sim, [main(sc) for sc in scs])
        assert out == {0: 2.0, 1: 1.0}

    def test_local_read_takes_no_time(self):
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("a", 4)
        out = {}

        def main(sc):
            sc.local("a")[0] = 42.0
            t0 = sim.now
            value = yield from sc.read(sc.rank, "a", 0)
            out["v"] = value
            out["dt"] = sim.now - t0

        run_all(sim, [main(scs[0])])
        assert out["v"] == 42.0
        assert out["dt"] == 0.0

    def test_write_remote(self):
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("a", 4)

        def main(sc):
            yield from sc.barrier()
            if sc.rank == 0:
                yield from sc.write(1, "a", 3, 7.5)
            yield from sc.barrier()

        run_all(sim, [main(sc) for sc in scs])
        assert scs[1].local("a")[3] == 7.5

    def test_read_async_pipelines(self):
        """Split-phase reads overlap: N pipelined reads finish far sooner
        than N sequential round trips."""
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("a", 64)
        times = {}

        def main(sc):
            sc.local("a")[:] = np.arange(64) + sc.rank * 100
            yield from sc.barrier()
            if sc.rank == 0:
                t0 = sim.now
                futures = []
                for i in range(32):
                    fut = yield from sc.read_async(1, "a", i)
                    futures.append(fut)
                values = []
                for fut in futures:
                    values.append((yield from sc.read_wait(fut, "a")))
                times["pipelined"] = sim.now - t0
                assert values == [100.0 + i for i in range(32)]
                t0 = sim.now
                for i in range(32):
                    yield from sc.read(1, "a", i)
                times["sequential"] = sim.now - t0
            else:
                yield sim.timeout(50_000.0)

        run_all(sim, [main(sc) for sc in scs])
        assert times["pipelined"] < times["sequential"] / 2

    def test_store_scalar2_async(self):
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("a", 8, dtype=np.int64)

        def main(sc):
            yield from sc.barrier()
            if sc.rank == 0:
                yield from sc.store_scalar2(1, "a", 1, 11, 5, 55)
                yield from sc.store_scalar2(1, "a", 7, 77)
                yield from sc.sync()
            yield from sc.barrier()

        run_all(sim, [main(sc) for sc in scs])
        a = scs[1].local("a")
        assert (a[1], a[5], a[7]) == (11, 55, 77)


class TestBulkOps:
    def test_put_get_roundtrip(self):
        sim, tp, scs = build(3)
        for sc in scs:
            sc.alloc("buf", 100)
        out = {}

        def main(sc):
            sc.local("buf")[:] = sc.rank
            yield from sc.barrier()
            yield from sc.put_bulk(
                (sc.rank + 1) % 3, "buf", 10, np.full(5, float(sc.rank))
            )
            yield from sc.sync()
            yield from sc.barrier()
            out[sc.rank] = (yield from sc.get_bulk((sc.rank + 2) % 3, "buf", 10, 5))

        run_all(sim, [main(sc) for sc in scs])
        for r in range(3):
            # rank r fetched from (r+2)%3, which was written by (r+1)%3
            assert np.all(out[r] == float((r + 1) % 3))

    def test_bulk_faster_per_byte_than_scalars(self):
        """The whole point of bulk transfers: amortized overhead."""
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("buf", 512)
        times = {}

        def main(sc):
            yield from sc.barrier()
            if sc.rank == 0:
                t0 = sim.now
                yield from sc.put_bulk(1, "buf", 0, np.ones(256))
                yield from sc.sync()
                times["bulk"] = sim.now - t0
                t0 = sim.now
                for i in range(256):
                    yield from sc.store_scalar2(1, "buf", 256 + i, 1.0)
                yield from sc.sync()
                times["scalar"] = sim.now - t0
            else:
                yield sim.timeout(100_000.0)

        run_all(sim, [main(sc) for sc in scs])
        assert times["bulk"] < times["scalar"] / 4


class TestBarrier:
    def test_barrier_synchronizes(self):
        sim, tp, scs = build(4)
        order = []

        def main(sc):
            yield sim.timeout(100.0 * sc.rank)  # skewed arrivals
            order.append(("before", sc.rank, sim.now))
            yield from sc.barrier()
            order.append(("after", sc.rank, sim.now))

        run_all(sim, [main(sc) for sc in scs])
        last_before = max(t for kind, _, t in order if kind == "before")
        first_after = min(t for kind, _, t in order if kind == "after")
        assert first_after >= last_before

    def test_multiple_barriers(self):
        sim, tp, scs = build(3)
        counts = {r: 0 for r in range(3)}

        def main(sc):
            for _ in range(5):
                yield from sc.barrier()
                counts[sc.rank] += 1

        run_all(sim, [main(sc) for sc in scs])
        assert all(v == 5 for v in counts.values())


class TestAllocation:
    def test_duplicate_name_rejected(self):
        sim, tp, scs = build(1)
        scs[0].alloc("x", 4)
        with pytest.raises(ValueError):
            scs[0].alloc("x", 4)

    def test_unknown_name_rejected(self):
        sim, tp, scs = build(1)
        with pytest.raises(KeyError):
            scs[0]._name_id("ghost")


class TestTimings:
    def test_comm_and_compute_buckets(self):
        sim, tp, scs = build(2)
        for sc in scs:
            sc.alloc("a", 4)

        def main(sc):
            yield from sc.barrier()
            if sc.rank == 0:
                yield from sc.read(1, "a", 0)
                yield from sc.compute(500.0)
            yield from sc.barrier()

        run_all(sim, [main(sc) for sc in scs])
        t = scs[0].timings
        assert t.compute_us == pytest.approx(500.0)
        # one read >= one round trip's worth of comm time
        assert t.comm_us >= CM5.round_trip_us
