"""Table 2 machine parameters."""

import pytest

from repro.splitc.machines import ALL_MACHINES, ATM_CLUSTER, CM5, MEIKO_CS2


class TestTable2:
    def test_cm5_parameters(self):
        assert CM5.overhead_us == 3.0
        assert CM5.round_trip_us == 12.0
        assert CM5.bandwidth_bps == 10e6

    def test_meiko_parameters(self):
        assert MEIKO_CS2.overhead_us == 11.0
        assert MEIKO_CS2.round_trip_us == 25.0
        assert MEIKO_CS2.bandwidth_bps == 39e6

    def test_atm_parameters(self):
        """The ATM column comes from the paper's own measurements:
        6 us overhead, 71 us round trip, 14 MB/s."""
        assert ATM_CLUSTER.overhead_us == 6.0
        assert ATM_CLUSTER.round_trip_us == 71.0
        assert ATM_CLUSTER.bandwidth_bps == 14e6

    def test_cpu_ordering(self):
        """CM-5 nodes are the slowest, the ATM cluster's the fastest."""
        assert CM5.cpu_factor < MEIKO_CS2.cpu_factor < ATM_CLUSTER.cpu_factor

    def test_network_characteristics_ordering(self):
        """§6: 'the CM-5's ... network has lower overheads and
        latencies'; the CS-2 has the fastest network bandwidth."""
        assert CM5.overhead_us < ATM_CLUSTER.overhead_us < MEIKO_CS2.overhead_us
        assert CM5.round_trip_us < MEIKO_CS2.round_trip_us < ATM_CLUSTER.round_trip_us
        assert MEIKO_CS2.bandwidth_bps > ATM_CLUSTER.bandwidth_bps > CM5.bandwidth_bps

    def test_compute_scaling(self):
        assert ATM_CLUSTER.compute_us(320.0) == pytest.approx(100.0)
        assert CM5.compute_us(320.0) == 320.0

    def test_wire_latency_positive(self):
        for machine in ALL_MACHINES:
            assert machine.one_way_wire_us >= 1.0

    def test_bulk_wire_time(self):
        assert CM5.bulk_wire_us(10_000_000) == pytest.approx(1e6)
