"""UAM reliable delivery under injected cell loss (§5.1.1's go-back-N)."""

import pytest

from repro.am import UAM, UamConfig
from repro.core import UNetCluster
from repro.sim import Simulator


def build_lossy(drop_nth=None, drop_range=None, window=8):
    """Pair with a loss function on alice's transmit fiber."""
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(segment_size=512 * 1024, send_ring=128, recv_ring=128, free_ring=128)
    sa = cluster.open_session("alice", "pa", **kwargs)
    sb = cluster.open_session("bob", "pb", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    counter = {"n": 0}

    def loss(cell):
        counter["n"] += 1
        if drop_nth is not None and counter["n"] % drop_nth == 0:
            return True
        if drop_range is not None:
            lo, hi = drop_range
            return lo <= counter["n"] < hi
        return False

    cluster.hosts["alice"].ni.port.tx_link.loss_fn = loss
    cfg = UamConfig(window=window)
    return sim, cluster, UAM(sa, cfg), UAM(sb, cfg), ch_a, ch_b


def run_store(sim, ua, ub, ch_a, ch_b, data, until=5e6):
    stop = {}

    def done(uam, ch, msg):
        stop["done"] = True
        return
        yield

    ub.register_handler(3, done)

    def client():
        yield from ua.open_channel(ch_a.ident)
        yield from ua.store(ch_a.ident, data, remote_addr=0, handler=3)
        while not stop.get("done"):
            yield from ua.poll_wait()

    def server():
        yield from ub.open_channel(ch_b.ident)
        while not stop.get("done"):
            yield from ub.poll_wait(timeout_us=500.0)

    p1 = sim.process(client())
    p2 = sim.process(server())
    sim.run(until=until)
    assert stop.get("done"), "transfer never completed despite retransmission"
    return stop


class TestLossRecovery:
    def test_periodic_cell_loss_recovered(self):
        """Dropping every 500th cell kills whole AAL5 PDUs (one lost
        cell corrupts the PDU's CRC); go-back-N must still deliver
        every byte, in order, exactly once."""
        sim, cluster, ua, ub, ch_a, ch_b = build_lossy(drop_nth=500)
        data = bytes(i % 256 for i in range(30_000))
        run_store(sim, ua, ub, ch_a, ch_b, data)
        assert bytes(ub.memory[: len(data)]) == data
        assert ua.retransmissions > 0

    def test_burst_loss_recovered(self):
        """A contiguous burst (switch congestion) is also recovered."""
        sim, cluster, ua, ub, ch_a, ch_b = build_lossy(drop_range=(50, 120))
        data = bytes((7 * i) % 256 for i in range(20_000))
        run_store(sim, ua, ub, ch_a, ch_b, data)
        assert bytes(ub.memory[: len(data)]) == data
        assert ua.retransmissions > 0

    def test_single_cell_requests_recovered(self):
        # single-cell PDUs: every 5th cell dropped = every 5th message
        # lost outright, yet all 20 round trips must complete
        sim, cluster, ua, ub, ch_a, ch_b = build_lossy(drop_nth=5)
        stop, count = {}, {"replies": 0}

        def echo(uam, ch, msg):
            yield from uam.reply(2, msg.payload)

        def done(uam, ch, msg):
            count["replies"] += 1
            return
            yield

        ub.register_handler(1, echo)
        ua.register_handler(2, done)
        n = 20

        def client():
            yield from ua.open_channel(ch_a.ident)
            for i in range(n):
                yield from ua.request(ch_a.ident, 1, bytes([i]))
            while count["replies"] < n:
                yield from ua.poll_wait()
            stop["done"] = True

        def server():
            yield from ub.open_channel(ch_b.ident)
            while not stop.get("done"):
                yield from ub.poll_wait(timeout_us=500.0)

        sim.process(client())
        sim.process(server())
        sim.run(until=5e6)
        assert count["replies"] == n
        assert ua.retransmissions > 0

    def test_duplicates_are_suppressed(self):
        """Go-back-N resends every unacked message after a loss, so
        messages that already arrived show up again; the receiver must
        process each original exactly once."""
        sim, cluster, ua, ub, ch_a, ch_b = build_lossy(drop_range=(100, 190))
        data = bytes(i % 256 for i in range(30_000))
        run_store(sim, ua, ub, ch_a, ch_b, data)
        assert bytes(ub.memory[: len(data)]) == data
        assert ua.retransmissions > 0
        # duplicate-free accounting: exactly the payload bytes counted
        assert ub.xfer_bytes_in == len(data)

    def test_no_loss_no_retransmissions(self):
        sim, cluster, ua, ub, ch_a, ch_b = build_lossy(drop_nth=None)
        data = bytes(10_000)
        run_store(sim, ua, ub, ch_a, ch_b, data)
        assert ua.retransmissions == 0
        assert ub.duplicates == 0
