"""UAM behaviour tests: request/reply, bulk ops, rules, flow control."""

import pytest

from repro.am import UAM, UamConfig, UamError
from repro.core import UNetCluster
from repro.sim import Simulator


def build(window=8, **uam_kwargs):
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(segment_size=512 * 1024, send_ring=128, recv_ring=128, free_ring=128)
    sa = cluster.open_session("alice", "pa", **kwargs)
    sb = cluster.open_session("bob", "pb", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    cfg = UamConfig(window=window, **uam_kwargs)
    return sim, cluster, UAM(sa, cfg), UAM(sb, cfg), ch_a, ch_b


def serve(uam, stop):
    while not stop.get("done"):
        yield from uam.poll_wait(timeout_us=500.0)


def run_exchange(sim, *gens, until=1e8):
    procs = [sim.process(g) for g in gens]
    sim.run(until=until)
    return procs


class TestRequestReply:
    def test_roundtrip_payload(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        stop, got = {}, {}

        def echo(uam, ch, msg):
            yield from uam.reply(2, msg.payload.upper())

        def done(uam, ch, msg):
            got["reply"] = msg.payload
            return
            yield

        ub.register_handler(1, echo)
        ua.register_handler(2, done)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.request(ch_a.ident, 1, b"hello")
            while "reply" not in got:
                yield from ua.poll_wait()
            stop["done"] = True

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert got["reply"] == b"HELLO"

    def test_handler_receives_channel_and_args(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        stop, seen = {}, {}

        def handler(uam, ch, msg):
            seen["channel"] = ch
            seen["handler_index"] = msg.handler
            stop["done"] = True
            return
            yield

        ub.register_handler(7, handler)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.request(ch_a.ident, 7, b"\x01\x02\x03\x04" * 4)

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert seen["channel"] == ch_b.ident
        assert seen["handler_index"] == 7

    def test_oversized_request_rejected(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()

        def client():
            yield from ua.open_channel(ch_a.ident)
            with pytest.raises(UamError, match="payload"):
                yield from ua.request(ch_a.ident, 1, bytes(37))

        run_exchange(sim, client())

    def test_unknown_channel_rejected(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()

        def client():
            with pytest.raises(UamError, match="not open"):
                yield from ua.request(99, 1, b"")

        run_exchange(sim, client())

    def test_missing_handler_raises(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.request(ch_a.ident, 42, b"")

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from ub.poll_wait(timeout_us=5000.0)

        p1 = sim.process(client())
        p2 = sim.process(server())
        with pytest.raises(UamError, match="no handler"):
            sim.run(until=1e8)


class TestReplyRules:
    def test_reply_outside_handler_rejected(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()

        def client():
            yield from ua.open_channel(ch_a.ident)
            with pytest.raises(UamError, match="inside a handler"):
                yield from ua.reply(1, b"")

        run_exchange(sim, client())

    def test_reply_handler_cannot_reply(self):
        """§5: 'in order to prevent live-lock, a reply message handler
        cannot send another reply'."""
        sim, cluster, ua, ub, ch_a, ch_b = build()
        stop, errors = {}, []

        def echo(uam, ch, msg):
            yield from uam.reply(2, msg.payload)

        def reply_replier(uam, ch, msg):
            try:
                yield from uam.reply(2, b"again")
            except UamError as exc:
                errors.append(exc)
            stop["done"] = True

        ub.register_handler(1, echo)
        ua.register_handler(2, reply_replier)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.request(ch_a.ident, 1, b"x")
            while not stop.get("done"):
                yield from ua.poll_wait()

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert len(errors) == 1

    def test_request_inside_handler_rejected(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        stop, errors = {}, []

        def bad_handler(uam, ch, msg):
            try:
                yield from uam.request(ch, 1, b"")
            except UamError as exc:
                errors.append(exc)
            stop["done"] = True

        ub.register_handler(1, bad_handler)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.request(ch_a.ident, 1, b"x")

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert len(errors) == 1


class TestBulk:
    def test_store_writes_remote_memory(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        data = bytes(i % 256 for i in range(10_000))
        stop = {}

        def done(uam, ch, msg):
            stop["done"] = True
            return
            yield

        ub.register_handler(3, done)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.store(ch_a.ident, data, remote_addr=2048, handler=3)
            while not stop.get("done"):
                yield from ua.poll_wait()

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert bytes(ub.memory[2048 : 2048 + len(data)]) == data

    def test_get_reads_remote_memory(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        data = bytes((i * 3) % 256 for i in range(9_000))
        stop = {}

        def done(uam, ch, msg):
            stop["done"] = True
            return
            yield

        ua.register_handler(4, done)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.get(
                ch_a.ident, remote_addr=512, local_addr=4096,
                length=len(data), handler=4,
            )
            while not stop.get("done"):
                yield from ua.poll_wait()

        def server():
            yield from ub.open_channel(ch_b.ident)
            ub.memory[512 : 512 + len(data)] = data
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert bytes(ua.memory[4096 : 4096 + len(data)]) == data

    def test_zero_length_store_completes(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        stop = {}

        def done(uam, ch, msg):
            stop["done"] = True
            return
            yield

        ub.register_handler(3, done)

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.store(ch_a.ident, b"", remote_addr=0, handler=3)
            while not stop.get("done"):
                yield from ua.poll_wait()

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert stop["done"]

    def test_store_out_of_memory_range_dropped(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        stop = {}

        def client():
            yield from ua.open_channel(ch_a.ident)
            yield from ua.store(
                ch_a.ident, bytes(100),
                remote_addr=len(ub.memory) - 10, handler=0,
            )
            yield from ua.poll_wait(timeout_us=2000.0)
            stop["done"] = True

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert ub.memory_range_errors >= 1


class TestFlowControl:
    def test_window_limits_outstanding(self):
        """The sender never has more than w unacknowledged messages."""
        sim, cluster, ua, ub, ch_a, ch_b = build(window=4)
        stop = {}
        max_seen = {"n": 0}

        def client():
            yield from ua.open_channel(ch_a.ident)
            peer = ua._peers[ch_a.ident]
            data = bytes(50_000)
            orig_emit = ua._emit

            def spying_emit(p, *args, **kw):
                max_seen["n"] = max(max_seen["n"], len(p.unacked) + 1)
                return orig_emit(p, *args, **kw)

            ua._emit = spying_emit
            yield from ua.store(ch_a.ident, data, remote_addr=0)
            stop["done"] = True

        def server():
            yield from ub.open_channel(ch_b.ident)
            yield from serve(ub, stop)

        run_exchange(sim, client(), server())
        assert max_seen["n"] <= 4

    def test_preallocated_buffers_match_4w(self):
        """§5.1.1: 4w buffers per channel: w tx slots + 2w receive
        buffers posted to the free queue (replies share the tx pool)."""
        sim, cluster, ua, ub, ch_a, ch_b = build(window=8)

        def client():
            before = len(ua.session.endpoint.free_queue)
            yield from ua.open_channel(ch_a.ident)
            peer = ua._peers[ch_a.ident]
            assert len(peer.tx_slots) == 8
            assert len(ua.session.endpoint.free_queue) - before == 16

        run_exchange(sim, client())

    def test_window_must_fit_sequence_space(self):
        sim, cluster, ua, ub, ch_a, ch_b = build()
        with pytest.raises(UamError):
            UAM(ua.session, UamConfig(window=128))
