"""UAM wire-format tests."""

import pytest
from hypothesis import given, strategies as st

from repro.am import wire


class TestEncodeDecode:
    def test_request_roundtrip(self):
        raw = wire.encode(wire.MSG_REQUEST, 5, 4, 9, b"hello")
        msg = wire.decode(raw)
        assert (msg.type, msg.seq, msg.ack, msg.handler) == (wire.MSG_REQUEST, 5, 4, 9)
        assert msg.payload == b"hello"
        assert msg.is_data

    def test_ack_roundtrip(self):
        msg = wire.decode(wire.encode(wire.MSG_ACK, 0, 77, 0))
        assert msg.type == wire.MSG_ACK
        assert msg.ack == 77
        assert not msg.is_data

    def test_xfer_roundtrip(self):
        raw = wire.encode(
            wire.MSG_XFER, 1, 2, 3, b"chunk", base=1000, offset=500, total=9999
        )
        msg = wire.decode(raw)
        assert (msg.base, msg.offset, msg.total) == (1000, 500, 9999)
        assert msg.payload == b"chunk"

    @given(
        st.sampled_from(sorted(wire.DATA_TYPES)),
        st.integers(0, 255),
        st.integers(0, 255),
        st.integers(0, 255),
        st.binary(max_size=100),
    )
    def test_roundtrip_property(self, msg_type, seq, ack, handler, payload):
        raw = wire.encode(msg_type, seq, ack, handler, payload)
        msg = wire.decode(raw)
        assert msg.type == msg_type
        assert msg.seq == seq and msg.ack == ack and msg.handler == handler
        assert msg.payload == payload

    def test_short_message_rejected(self):
        with pytest.raises(ValueError):
            wire.decode(b"\x01\x02")

    def test_short_bulk_header_rejected(self):
        with pytest.raises(ValueError):
            wire.decode(bytes([wire.MSG_XFER, 0, 0, 0]) + b"\x00\x00")

    def test_sequence_wraparound(self):
        raw = wire.encode(wire.MSG_REQUEST, 256 + 3, 257, 0, b"")
        msg = wire.decode(raw)
        assert msg.seq == 3 and msg.ack == 1


class TestSingleCellFit:
    def test_small_request_fits_one_cell(self):
        """Header + 36 bytes = 40 bytes: a single-cell message."""
        raw = wire.encode(wire.MSG_REQUEST, 0, 0, 0, bytes(wire.SMALL_PAYLOAD_MAX))
        assert len(raw) == 40

    def test_ack_is_single_cell(self):
        assert len(wire.encode(wire.MSG_ACK, 0, 0, 0)) <= 40

    def test_xfer_chunk_fits_buffer(self):
        raw = wire.encode(wire.MSG_XFER, 0, 0, 0, bytes(wire.XFER_CHUNK), 0, 0, 1)
        assert len(raw) == wire.XFER_BUFFER


class TestSeqArithmetic:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(0, 0, True), (0, 1, True), (1, 0, False), (250, 3, True), (3, 250, False)],
    )
    def test_seq_lte(self, a, b, expected):
        assert wire.seq_lte(a, b) is expected
