"""Property-based reliability: TCP over U-Net delivers exactly the sent
byte stream under arbitrary (seeded) cell-loss patterns."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.ip import build_unet_pair
from repro.ip.tcp import TcpConfig


def lossy_transfer(seed: int, loss_prob: float, n_bytes: int):
    sim, _net, sa, sb = build_unet_pair()
    rng = random.Random(seed)
    sa.session.host.ni.port.tx_link.loss_fn = lambda cell: rng.random() < loss_prob
    sb.session.host.ni.port.tx_link.loss_fn = lambda cell: rng.random() < loss_prob
    config = TcpConfig(window=8192)
    server = sb.tcp_listen(7000, peer_addr=1, config=config)
    data = bytes((seed + i) % 256 for i in range(n_bytes))
    hold = {}

    def client():
        conn = yield from sa.tcp_connect(2, 7000, config=config)
        hold["conn"] = conn
        yield from conn.send(data)

    def srv():
        yield from server.wait_established()
        got = b""
        while len(got) < n_bytes:
            got += yield from server.recv(1 << 20)
        hold["data"] = got

    sim.process(client())
    sim.process(srv())
    sim.run(until=sim.now + 3e7)
    return hold, data


class TestRandomLoss:
    @given(st.integers(0, 10_000))
    @settings(max_examples=6, deadline=None)
    def test_light_random_loss(self, seed):
        """0.2% cell loss: every transfer completes bit-exact."""
        hold, data = lossy_transfer(seed, 0.002, 20_000)
        assert hold.get("data") == data

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_moderate_loss(self, seed):
        """1% cell loss (≈30-40% of 2 KB segments die): still exact."""
        hold, data = lossy_transfer(seed, 0.01, 15_000)
        assert hold.get("data") == data
        assert hold["conn"].retransmits > 0

    def test_no_duplicate_delivery(self):
        """Retransmissions never duplicate bytes in the app stream."""
        hold, data = lossy_transfer(3, 0.01, 15_000)
        assert len(hold["data"]) == len(data)

    def test_bidirectional_loss(self):
        """Loss on the ack path too (both directions lossy above)."""
        hold, data = lossy_transfer(99, 0.005, 25_000)
        assert hold.get("data") == data
