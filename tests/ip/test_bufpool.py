"""Reference-counted segment buffers (§7.3) and their use by U-Net TCP."""

import pytest

from repro.bench.ip import build_unet_pair
from repro.core.errors import UNetError
from repro.ip.bufpool import SegmentBufferPool
from repro.ip.tcp import TcpConfig


def make_pool(count=4, size=256):
    sim, _net, sa, sb = build_unet_pair()
    return sim, sa, SegmentBufferPool(sa.session, count, size)


class TestRefCounting:
    def test_acquire_gives_single_reference(self):
        sim, sa, pool = make_pool()
        buf = pool.try_acquire()
        assert buf.refs == 1
        assert pool.available == 3

    def test_release_on_last_decref(self):
        sim, sa, pool = make_pool()
        buf = pool.try_acquire()
        buf.incref()
        buf.decref()
        assert pool.available == 3  # still held
        buf.decref()
        assert pool.available == 4  # returned

    def test_shared_between_messages_without_copy(self):
        """§7.3: blocks 'shared by several messages without the need for
        copy operations' -- two references, one fill."""
        sim, sa, pool = make_pool()
        buf = pool.try_acquire()

        def fill():
            yield from buf.fill(sa.session, b"shared-data")

        sim.process(fill())
        sim.run(until=sim.now + 1e4)
        first = buf.incref()  # second message's reference
        assert first is buf
        assert buf.peek(sa.session) == b"shared-data"

    def test_exhaustion_returns_none(self):
        sim, sa, pool = make_pool(count=2)
        assert pool.try_acquire() is not None
        assert pool.try_acquire() is not None
        assert pool.try_acquire() is None
        assert pool.exhaustions == 1

    def test_overfill_rejected(self):
        sim, sa, pool = make_pool(size=16)
        buf = pool.try_acquire()

        def fill():
            with pytest.raises(UNetError, match="capacity"):
                yield from buf.fill(sa.session, bytes(17))

        p = sim.process(fill())
        sim.run(until=sim.now + 1e4)
        assert p.ok

    def test_double_decref_rejected(self):
        sim, sa, pool = make_pool()
        buf = pool.try_acquire()
        buf.decref()
        with pytest.raises(UNetError):
            buf.decref()

    def test_incref_after_release_rejected(self):
        sim, sa, pool = make_pool()
        buf = pool.try_acquire()
        buf.decref()
        with pytest.raises(UNetError):
            buf.incref()

    def test_validation(self):
        sim, sa, _ = make_pool()
        with pytest.raises(ValueError):
            SegmentBufferPool(sa.session, 0, 64)


class TestTcpZeroCopyRetransmit:
    def _lossy_transfer(self, drop_range):
        sim, _net, sa, sb = build_unet_pair()
        counter = {"n": 0}

        def loss(cell):
            counter["n"] += 1
            lo, hi = drop_range
            return lo <= counter["n"] < hi

        sa.session.host.ni.port.tx_link.loss_fn = loss
        config = TcpConfig(window=8192)
        server = sb.tcp_listen(7000, peer_addr=1, config=config)
        data = bytes(i % 256 for i in range(50_000))
        hold = {}

        def client():
            conn = yield from sa.tcp_connect(2, 7000, config=config)
            hold["conn"] = conn
            yield from conn.send(data)

        def srv():
            yield from server.wait_established()
            got = b""
            while len(got) < len(data):
                got += yield from server.recv(1 << 20)
            hold["data"] = got

        sim.process(client())
        sim.process(srv())
        sim.run(until=sim.now + 1e7)
        return hold, data

    def test_retransmissions_reuse_buffers(self):
        hold, data = self._lossy_transfer((300, 360))
        assert hold["data"] == data
        conn = hold["conn"]
        assert conn.retransmits > 0
        env = conn.env
        # every retransmission went out of the original buffer, no copy
        assert env.zero_copy_retransmits == conn.retransmits
        assert env.pool_fallbacks == 0

    def test_no_buffer_leaks(self):
        hold, data = self._lossy_transfer((300, 360))
        env = hold["conn"].env
        assert len(env._inflight) == 0
        assert env._pool.available == env._pool.total

    def test_lossless_transfer_no_leaks_either(self):
        hold, data = self._lossy_transfer((0, 0))
        assert hold["data"] == data
        env = hold["conn"].env
        assert env.zero_copy_retransmits == 0
        assert env._pool.available == env._pool.total
