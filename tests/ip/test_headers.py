"""IP/UDP/TCP header encode/decode and checksum tests."""

import pytest
from hypothesis import given, strategies as st

from repro.ip.headers import (
    FLAG_ACK,
    FLAG_SYN,
    IP_HEADER_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    IpDatagram,
    TcpSegment,
    UdpPacket,
)


class TestIpDatagram:
    def test_roundtrip(self):
        d = IpDatagram(src=1, dst=2, proto=PROTO_UDP, payload=b"data")
        out = IpDatagram.decode(d.encode())
        assert (out.src, out.dst, out.proto, out.payload) == (1, 2, PROTO_UDP, b"data")

    @given(st.integers(0, 255), st.integers(0, 255), st.binary(max_size=300))
    def test_roundtrip_property(self, src, dst, payload):
        d = IpDatagram(src=src, dst=dst, proto=PROTO_TCP, payload=payload)
        out = IpDatagram.decode(d.encode())
        assert out.payload == payload and out.src == src and out.dst == dst

    def test_header_checksum_detects_corruption(self):
        raw = bytearray(IpDatagram(src=1, dst=2, proto=17, payload=b"x").encode())
        raw[8] ^= 0xFF  # flip TTL
        with pytest.raises(ValueError, match="checksum"):
            IpDatagram.decode(bytes(raw))

    def test_short_datagram_rejected(self):
        with pytest.raises(ValueError, match="short"):
            IpDatagram.decode(b"\x45" * 10)

    def test_trailing_padding_ignored(self):
        """AAL5 reassembly can hand back cell-padded datagrams; the IP
        length field must govern."""
        raw = IpDatagram(src=1, dst=2, proto=17, payload=b"hello").encode()
        out = IpDatagram.decode(raw + bytes(20))
        assert out.payload == b"hello"

    def test_bad_version_rejected(self):
        raw = bytearray(IpDatagram(src=1, dst=2, proto=17, payload=b"").encode())
        raw[0] = 0x55
        with pytest.raises(ValueError, match="version"):
            IpDatagram.decode(bytes(raw))


class TestUdpPacket:
    def test_roundtrip(self):
        p = UdpPacket(src_port=1234, dst_port=80, payload=b"payload")
        out = UdpPacket.decode(p.encode())
        assert (out.src_port, out.dst_port, out.payload) == (1234, 80, b"payload")
        assert out.with_checksum

    @given(st.binary(max_size=200), st.integers(1, 65535), st.integers(1, 65535))
    def test_roundtrip_property(self, payload, sport, dport):
        p = UdpPacket(src_port=sport, dst_port=dport, payload=payload)
        assert UdpPacket.decode(p.encode()).payload == payload

    def test_checksum_detects_corruption(self):
        raw = bytearray(UdpPacket(src_port=1, dst_port=2, payload=b"hello!").encode())
        raw[-1] ^= 0x01
        with pytest.raises(ValueError, match="checksum"):
            UdpPacket.decode(bytes(raw))

    def test_checksum_can_be_disabled(self):
        """§7.6: the checksum can be switched off by applications."""
        raw = bytearray(
            UdpPacket(src_port=1, dst_port=2, payload=b"hi", with_checksum=False).encode()
        )
        raw[-1] ^= 0x01  # corruption passes without checksum
        out = UdpPacket.decode(bytes(raw))
        assert not out.with_checksum

    def test_odd_length_payload(self):
        p = UdpPacket(src_port=1, dst_port=2, payload=b"odd")
        assert UdpPacket.decode(p.encode()).payload == b"odd"


class TestTcpSegment:
    def test_roundtrip(self):
        seg = TcpSegment(
            src_port=5, dst_port=6, seq=1000, ack=2000,
            flags=FLAG_SYN | FLAG_ACK, window=8192, payload=b"abc",
        )
        out = TcpSegment.decode(seg.encode())
        assert out.seq == 1000 and out.ack == 2000
        assert out.flag(FLAG_SYN) and out.flag(FLAG_ACK)
        assert out.window == 8192 and out.payload == b"abc"

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 0xFFFF),
        st.binary(max_size=300),
    )
    def test_roundtrip_property(self, seq, ack, window, payload):
        seg = TcpSegment(
            src_port=1, dst_port=2, seq=seq, ack=ack,
            flags=FLAG_ACK, window=window, payload=payload,
        )
        out = TcpSegment.decode(seg.encode())
        assert (out.seq, out.ack, out.window, out.payload) == (seq, ack, window, payload)

    def test_checksum_detects_corruption(self):
        raw = bytearray(
            TcpSegment(src_port=1, dst_port=2, seq=0, ack=0, flags=FLAG_ACK,
                       window=100, payload=b"body").encode()
        )
        raw[22] ^= 0x10  # flip a payload byte
        with pytest.raises(ValueError, match="checksum"):
            TcpSegment.decode(bytes(raw))

    def test_describe(self):
        seg = TcpSegment(src_port=1, dst_port=2, seq=9, ack=0, flags=FLAG_SYN,
                         window=0)
        assert "SYN" in seg.describe()

    def test_pure_ack_is_40_bytes_with_ip(self):
        """§7.8: 'an active acknowledgment ... consists of only a 40
        byte TCP/IP header' -- i.e. one U-Net single cell."""
        ack = TcpSegment(src_port=1, dst_port=2, seq=0, ack=1, flags=FLAG_ACK,
                         window=8192)
        assert IP_HEADER_SIZE + len(ack.encode()) == 40
