"""The SunOS mbuf allocation rule and its saw-tooth (§7.3)."""

import pytest
from hypothesis import given, strategies as st

from repro.ip.mbuf import (
    MBUF_CLUSTER_BYTES,
    MBUF_SMALL_BYTES,
    SMALL_REMAINDER_LIMIT,
    MbufChain,
    mbuf_chain_for,
)


class TestAllocationRule:
    @pytest.mark.parametrize(
        "size,clusters,smalls",
        [
            (0, 0, 1),
            (1, 0, 1),
            (112, 0, 1),
            (113, 0, 2),
            (511, 0, 5),
            (512, 1, 0),  # remainder >= 512 gets a cluster
            (1024, 1, 0),
            (1025, 1, 1),
            (1535, 1, 5),  # 511-byte remainder -> small mbuf chain
            (1536, 2, 0),
            (8192, 8, 0),
            (8292, 8, 1),
        ],
    )
    def test_chain_shapes(self, size, clusters, smalls):
        chain = mbuf_chain_for(size)
        assert (chain.clusters, chain.smalls) == (clusters, smalls)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mbuf_chain_for(-1)

    @given(st.integers(0, 64 * 1024))
    def test_capacity_covers_data(self, size):
        chain = mbuf_chain_for(size)
        cap = chain.clusters * MBUF_CLUSTER_BYTES + chain.smalls * MBUF_SMALL_BYTES
        assert cap >= size
        assert chain.wasted_bytes == cap - size

    @given(st.integers(1, 64 * 1024))
    def test_small_mbufs_only_for_small_remainders(self, size):
        chain = mbuf_chain_for(size)
        remainder = size % MBUF_CLUSTER_BYTES
        if chain.smalls:
            assert 0 < remainder < SMALL_REMAINDER_LIMIT


class TestSawTooth:
    def test_cost_spikes_below_half_K_remainder(self):
        """Crossing from a 511-byte remainder (5 small mbufs) to a
        512-byte one (1 cluster) drops the processing cost sharply --
        Figure 7's saw-tooth."""
        cost = lambda size: mbuf_chain_for(size).processing_us(6.0, 25.0)
        expensive = cost(1024 + 511)
        cheap = cost(1024 + 512)
        assert expensive > cheap + 50.0

    def test_sawtooth_period_is_1k(self):
        cost = lambda size: mbuf_chain_for(size).processing_us(6.0, 25.0)
        assert cost(2300) - cost(2048) == cost(3324) - cost(3072)

    def test_smalls_have_no_refcounts_cost_more(self):
        """The degradation exists because small mbufs are copied."""
        per_byte_small = 25.0 / MBUF_SMALL_BYTES
        per_byte_cluster = 6.0 / MBUF_CLUSTER_BYTES
        assert per_byte_small > 10 * per_byte_cluster
