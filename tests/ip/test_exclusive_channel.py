"""§7.1 extension: 'an exclusive U-Net channel per TCP connection ...
would be simple to implement' -- so it is implemented: the U-Net mux
becomes the TCP demultiplexer and the port lookup disappears."""

import pytest

from repro.core import UNetCluster
from repro.ip.tcp import TcpConfig
from repro.ip.unet import UnetIpStack
from repro.sim import Simulator


def build():
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(segment_size=1024 * 1024, send_ring=48, recv_ring=192,
                  free_ring=192)
    sa = cluster.open_session("alice", "ipa", **kwargs)
    sb = cluster.open_session("bob", "ipb", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)  # the shared IP channel
    stack_a = UnetIpStack(sa, addr=1, recv_buffers=80)
    stack_b = UnetIpStack(sb, addr=2, recv_buffers=80)
    stack_a.add_peer(2, ch_a.ident)
    stack_b.add_peer(1, ch_b.ident)
    # a second, exclusive channel between the same endpoints for one
    # TCP connection (kernel-mediated setup, as always)
    ex_a, ex_b = cluster.connect_sessions(sa, sb)

    def boot():
        yield from stack_a.start()
        yield from stack_b.start()

    sim.process(boot())
    sim.run(until=5000.0)
    return sim, cluster, stack_a, stack_b, ex_a, ex_b


def transfer(sim, stack_a, stack_b, ex_a=None, ex_b=None, n_bytes=30_000):
    config = TcpConfig(window=8192)
    server = stack_b.tcp_listen(
        7000, peer_addr=1, config=config,
        channel_id=ex_b.ident if ex_b else None,
    )
    data = bytes(i % 256 for i in range(n_bytes))
    hold = {}

    def client():
        conn = yield from stack_a.tcp_connect(
            2, 7000, config=config, channel_id=ex_a.ident if ex_a else None
        )
        hold["conn"] = conn
        yield from conn.send(data)

    def srv():
        yield from server.wait_established()
        got = b""
        while len(got) < n_bytes:
            got += yield from server.recv(1 << 20)
        hold["data"] = got

    sim.process(client())
    sim.process(srv())
    sim.run(until=sim.now + 1e8)
    return hold, data, server


class TestExclusiveChannel:
    def test_transfer_over_exclusive_channel(self):
        sim, cluster, stack_a, stack_b, ex_a, ex_b = build()
        hold, data, server = transfer(sim, stack_a, stack_b, ex_a, ex_b)
        assert hold.get("data") == data
        # every segment demultiplexed by the channel, not by ports
        assert stack_b.tcp_channel_demux_hits > 0
        assert stack_b.tcp_channel_demux_hits == server.segments_received

    def test_shared_channel_does_not_use_fast_demux(self):
        sim, cluster, stack_a, stack_b, ex_a, ex_b = build()
        hold, data, server = transfer(sim, stack_a, stack_b)  # shared path
        assert hold.get("data") == data
        assert stack_b.tcp_channel_demux_hits == 0

    def test_exclusive_and_shared_coexist(self):
        """A connection on its own channel and one on the shared IP
        channel run side by side without crosstalk."""
        sim, cluster, stack_a, stack_b, ex_a, ex_b = build()
        config = TcpConfig(window=8192)
        srv_ex = stack_b.tcp_listen(7001, peer_addr=1, config=config,
                                    channel_id=ex_b.ident)
        srv_sh = stack_b.tcp_listen(7002, peer_addr=1, config=config)
        data_ex = bytes(20_000)
        data_sh = bytes(i % 7 for i in range(20_000))
        hold = {}

        def client():
            c1 = yield from stack_a.tcp_connect(2, 7001, config=config,
                                                channel_id=ex_a.ident)
            c2 = yield from stack_a.tcp_connect(2, 7002, config=config)
            yield from c1.send(data_ex)
            yield from c2.send(data_sh)

        def receiver(server, key, expect):
            def proc():
                yield from server.wait_established()
                got = b""
                while len(got) < len(expect):
                    got += yield from server.recv(1 << 20)
                hold[key] = got
            return proc()

        sim.process(client())
        sim.process(receiver(srv_ex, "ex", data_ex))
        sim.process(receiver(srv_sh, "sh", data_sh))
        sim.run(until=sim.now + 1e8)
        assert hold.get("ex") == data_ex
        assert hold.get("sh") == data_sh
