"""Error-path buffer leaks in the IP send paths (found by simflow).

A failure after ``alloc`` but before the firmware takes ownership of
the descriptor must return the buffer: no completion will ever fire
for it, so nothing else can reclaim it.
"""

import pytest

from repro.bench.ip import build_kernel_atm_pair, build_unet_pair


class TestUnetIpSendErrorPath:
    def test_failed_write_frees_the_datagram_buffer(self):
        sim, cluster, stack_a, stack_b = build_unet_pair()
        segment = stack_a.session.endpoint.segment
        before = segment.live_allocations

        def boom(offset, data):
            raise RuntimeError("injected write failure")

        stack_a.session.write_segment = boom
        done = []

        def sender():
            with pytest.raises(RuntimeError, match="injected"):
                yield from stack_a.send_ip(2, 17, b"payload bytes")
            done.append(True)

        sim.process(sender())
        sim.run(until=sim.now + 1e6)
        assert done == [True]
        assert segment.live_allocations == before
        assert stack_a.packets_out == 0

    def test_successful_send_still_reclaims(self):
        sim, cluster, stack_a, stack_b = build_unet_pair()
        segment = stack_a.session.endpoint.segment
        before = segment.live_allocations

        def sender():
            yield from stack_a.send_ip(2, 17, b"payload bytes")

        sim.process(sender())
        sim.run(until=sim.now + 1e6)
        assert segment.live_allocations == before
        assert stack_a.packets_out == 1


class TestKernelDeviceTxErrorPath:
    def test_failed_dma_write_frees_the_device_buffer(self):
        sim, cluster, stack_a, stack_b = build_kernel_atm_pair()
        device = stack_a.device
        segment = device.session.endpoint.segment
        before = segment.live_allocations

        def boom(offset, data):
            raise RuntimeError("injected DMA setup failure")

        segment.write = boom
        assert device.transmit(b"x" * 100)
        with pytest.raises(RuntimeError, match="injected"):
            sim.run(until=sim.now + 1e6)
        del segment.write
        assert segment.live_allocations == before
        assert device.packets_sent == 0
