"""Ethernet segment model tests."""

import pytest

from repro.ip.ethernet import (
    ETHERNET_BPS,
    ETHERNET_MTU,
    INTERFRAME_GAP_US,
    EthernetFrame,
    EthernetLan,
)
from repro.sim import Simulator


class TestFrames:
    def test_mtu_enforced(self):
        with pytest.raises(ValueError):
            EthernetFrame(1, 2, bytes(ETHERNET_MTU + 1))

    def test_minimum_frame_size(self):
        tiny = EthernetFrame(1, 2, b"x")
        assert tiny.wire_bytes == 64 + 8  # min frame + preamble

    def test_full_frame_size(self):
        frame = EthernetFrame(1, 2, bytes(1500))
        assert frame.wire_bytes == 1500 + 18 + 8


class TestLan:
    def test_delivery_by_address(self):
        sim = Simulator()
        lan = EthernetLan(sim)
        p1, p2, p3 = lan.attach(1), lan.attach(2), lan.attach(3)
        got = {2: [], 3: []}
        p2.set_rx_sink(lambda f: got[2].append(f.payload))
        p3.set_rx_sink(lambda f: got[3].append(f.payload))
        p1.send_frame(2, b"for-two")
        p1.send_frame(3, b"for-three")
        sim.run()
        assert got[2] == [b"for-two"]
        assert got[3] == [b"for-three"]

    def test_serialization_at_10mbit(self):
        sim = Simulator()
        lan = EthernetLan(sim)
        p1, p2 = lan.attach(1), lan.attach(2)
        arrivals = []
        p2.set_rx_sink(lambda f: arrivals.append(sim.now))
        p1.send_frame(2, bytes(1000))
        sim.run()
        expected = (1000 + 18 + 8) * 8 / ETHERNET_BPS * 1e6
        assert arrivals == [pytest.approx(expected)]

    def test_shared_medium_serializes_both_directions(self):
        sim = Simulator()
        lan = EthernetLan(sim)
        p1, p2 = lan.attach(1), lan.attach(2)
        arrivals = []
        p1.set_rx_sink(lambda f: arrivals.append(("p1", sim.now)))
        p2.set_rx_sink(lambda f: arrivals.append(("p2", sim.now)))
        p1.send_frame(2, bytes(1000))
        p2.send_frame(1, bytes(1000))
        sim.run()
        frame_us = (1026) * 8 / ETHERNET_BPS * 1e6
        assert arrivals[0][1] == pytest.approx(frame_us)
        assert arrivals[1][1] == pytest.approx(2 * frame_us + INTERFRAME_GAP_US)

    def test_duplicate_address_rejected(self):
        sim = Simulator()
        lan = EthernetLan(sim)
        lan.attach(1)
        with pytest.raises(ValueError):
            lan.attach(1)

    def test_counters(self):
        sim = Simulator()
        lan = EthernetLan(sim)
        p1, p2 = lan.attach(1), lan.attach(2)
        p2.set_rx_sink(lambda f: None)
        for _ in range(3):
            p1.send_frame(2, bytes(100))
        sim.run()
        assert lan.frames_sent == 3
