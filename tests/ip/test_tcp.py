"""TCP engine tests over the user-level U-Net stack."""

import pytest

from repro.bench.ip import build_unet_pair
from repro.ip.tcp import TcpConfig


def run(sim, *gens, until=1e9):
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + until)  # relative: the sim may have run before
    return procs


def connect_pair(config=None):
    sim, cluster, sa, sb = build_unet_pair()
    server = sb.tcp_listen(7000, peer_addr=1, config=config)
    holder = {}

    def connector():
        holder["client"] = yield from sa.tcp_connect(2, 7000, config=config)

    run(sim, connector(), until=1e6)
    assert "client" in holder, "handshake did not complete"
    return sim, cluster, holder["client"], server


class TestHandshake:
    def test_three_way_establishes_both_sides(self):
        sim, cluster, client, server = connect_pair()
        assert client.state == "ESTABLISHED"
        assert server.state == "ESTABLISHED"

    def test_connect_twice_rejected(self):
        sim, cluster, client, server = connect_pair()

        def bad():
            with pytest.raises(RuntimeError):
                yield from client.connect()

        run(sim, bad())


class TestDataTransfer:
    @pytest.mark.parametrize("size", [1, 100, 2048, 10_000, 60_000])
    def test_one_way_integrity(self, size):
        sim, cluster, client, server = connect_pair()
        data = bytes((i * 17) % 256 for i in range(size))
        got = {}

        def sender():
            yield from client.send(data)

        def receiver():
            buf = b""
            while len(buf) < size:
                chunk = yield from server.recv(1 << 20)
                buf += chunk
            got["data"] = buf

        run(sim, sender(), receiver())
        assert got["data"] == data

    def test_bidirectional_transfer(self):
        sim, cluster, client, server = connect_pair()
        a2b = bytes(range(256)) * 40
        b2a = bytes(reversed(range(256))) * 30
        got = {}

        def side(conn, out, n_in, key):
            def proc():
                yield from conn.send(out)
                buf = b""
                while len(buf) < n_in:
                    buf += yield from conn.recv(1 << 20)
                got[key] = buf
            return proc()

        run(sim, side(client, a2b, len(b2a), "client"),
            side(server, b2a, len(a2b), "server"))
        assert got["server"] == a2b
        assert got["client"] == b2a

    def test_small_writes_coalesce_into_mss_segments(self):
        sim, cluster, client, server = connect_pair()
        got = {}

        def sender():
            for _ in range(64):
                yield from client.send(bytes(256))

        def receiver():
            buf = b""
            while len(buf) < 64 * 256:
                buf += yield from server.recv(1 << 20)
            got["n"] = len(buf)

        run(sim, sender(), receiver())
        assert got["n"] == 64 * 256
        # 16 KB in >=2048-byte segments: far fewer data segments than writes
        assert client.segments_sent < 64

    def test_recv_max_bytes_respected(self):
        sim, cluster, client, server = connect_pair()
        got = {}

        def sender():
            yield from client.send(bytes(1000))

        def receiver():
            chunk = yield from server.recv(100)
            got["len"] = len(chunk)

        run(sim, sender(), receiver())
        assert got["len"] == 100


class TestCloseSemantics:
    def test_fin_delivers_eof(self):
        sim, cluster, client, server = connect_pair()
        got = {}

        def sender():
            yield from client.send(b"bye")
            client.close()

        def receiver():
            data = yield from server.recv()
            got["data"] = data
            eof = yield from server.recv()
            got["eof"] = eof

        run(sim, sender(), receiver())
        assert got["data"] == b"bye"
        assert got["eof"] == b""


class TestFlowControl:
    def test_receiver_window_bounds_flight(self):
        """The sender never has more unacked data than the window."""
        config = TcpConfig(window=4096)
        sim, cluster, client, server = connect_pair(config)
        max_flight = {"n": 0}
        data = bytes(40_000)
        got = {}

        def sender():
            orig = client._emit

            def spy(flags, seq, payload=b""):
                # snd_nxt is advanced before _emit runs
                max_flight["n"] = max(
                    max_flight["n"], client.snd_nxt - client.snd_una
                )
                return orig(flags, seq, payload)

            client._emit = spy
            yield from client.send(data)

        def receiver():
            buf = b""
            while len(buf) < len(data):
                buf += yield from server.recv(1 << 20)
            got["ok"] = buf == data

        run(sim, sender(), receiver())
        assert got["ok"]
        assert max_flight["n"] <= 4096

    def test_slow_reader_throttles_sender(self):
        """§7.4: the advertised window reflects application buffer
        space; a slow application stalls the peer instead of losing data."""
        config = TcpConfig(window=4096)
        sim, cluster, client, server = connect_pair(config)
        data = bytes(i % 256 for i in range(30_000))
        got = {}

        def sender():
            yield from client.send(data)

        def slow_receiver():
            buf = b""
            while len(buf) < len(data):
                chunk = yield from server.recv(2048)
                buf += chunk
                yield sim.timeout(2000.0)  # dawdle
            got["data"] = buf

        run(sim, sender(), slow_receiver(), until=1e10)
        assert got["data"] == data
        assert server.dropped_out_of_order == 0


class TestReliability:
    def _lossy_pair(self, drop_cells):
        sim, cluster, sa, sb = build_unet_pair()
        counter = {"n": 0}

        def loss(cell):
            counter["n"] += 1
            return counter["n"] in drop_cells

        cluster.hosts["alice"].ni.port.tx_link.loss_fn = loss
        config = TcpConfig(window=8192)
        server = sb.tcp_listen(7000, peer_addr=1, config=config)
        holder = {}

        def connector():
            holder["client"] = yield from sa.tcp_connect(2, 7000, config=config)

        run(sim, connector())
        return sim, holder["client"], server

    def test_lost_segment_retransmitted(self):
        # drop a burst mid-stream: whole segments vanish (AAL5 CRC)
        sim, client, server = self._lossy_pair(set(range(100, 150)))
        data = bytes(i % 251 for i in range(40_000))
        got = {}

        def sender():
            yield from client.send(data)

        def receiver():
            buf = b""
            while len(buf) < len(data):
                buf += yield from server.recv(1 << 20)
            got["data"] = buf

        run(sim, sender(), receiver(), until=1e9)
        assert got["data"] == data
        assert client.retransmits > 0
        assert client.timeouts > 0

    def test_congestion_window_collapses_on_loss(self):
        sim, client, server = self._lossy_pair(set(range(100, 150)))
        data = bytes(40_000)
        got = {}
        observed = {"cwnd_after_loss": None}

        def sender():
            pre_loss_cwnd = client.cwnd
            yield from client.send(data)

        def receiver():
            buf = b""
            while len(buf) < len(data):
                buf += yield from server.recv(1 << 20)
            got["done"] = True

        run(sim, sender(), receiver(), until=1e9)
        assert got.get("done")
        # multiplicative decrease happened: ssthresh came down from 64K
        assert client.ssthresh < 64 * 1024


class TestTimers:
    def test_rto_respects_granularity(self):
        """§7.8: the BSD 500 ms timer makes the rto enormous relative to
        LAN round trips; U-Net's 1 ms timer keeps it proportionate."""
        fine = connect_pair(TcpConfig(timer_granularity_us=1000.0))
        coarse = connect_pair(TcpConfig(timer_granularity_us=500_000.0))
        for (sim, cluster, client, server), minimum in (
            (fine, 1000.0), (coarse, 500_000.0)
        ):
            assert client.rto_us >= 2 * minimum
            assert client.rto_us % minimum == 0
