"""User-level UDP over U-Net: delivery, demux, pcb cache, MTU."""

import pytest

from repro.bench.ip import build_unet_pair
from repro.core.errors import UNetError


def run(sim, *gens, until=1e8):
    procs = [sim.process(g) for g in gens]
    sim.run(until=until)
    return procs


class TestDelivery:
    def test_roundtrip_payload(self):
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)
        got = {}

        def sender():
            yield from a.sendto(b"ping", (2, 2000))

        def receiver():
            data, src = yield from b.recvfrom()
            got["data"], got["src"] = data, src

        run(sim, sender(), receiver())
        assert got["data"] == b"ping"
        assert got["src"] == (1, 1000)

    @pytest.mark.parametrize("size", [0, 1, 100, 1472, 4096, 8900])
    def test_various_sizes(self, size):
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket()
        b = sb.udp_socket(2000)
        payload = bytes(i % 256 for i in range(size))
        got = {}

        def sender():
            yield from a.sendto(payload, (2, 2000))

        def receiver():
            got["data"], _ = yield from b.recvfrom()

        run(sim, sender(), receiver())
        assert got["data"] == payload

    def test_port_demultiplexing(self):
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)
        b1 = sb.udp_socket(2001)
        b2 = sb.udp_socket(2002)
        got = {}

        def sender():
            yield from a.sendto(b"one", (2, 2001))
            yield from a.sendto(b"two", (2, 2002))

        def rcv(sock, key):
            data, _ = yield from sock.recvfrom()
            got[key] = data

        run(sim, sender(), rcv(b1, "b1"), rcv(b2, "b2"))
        assert got == {"b1": b"one", "b2": b"two"}

    def test_unbound_port_counts_bad(self):
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)

        def sender():
            yield from a.sendto(b"ghost", (2, 9999))

        run(sim, sender())
        sim.run(until=1e8)
        assert sb.bad_packets == 1


class TestMtu:
    def test_oversized_datagram_rejected(self):
        """§7.5: no send-side fragmentation; the 9 KB MTU is a hard cap."""
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)

        def sender():
            with pytest.raises(UNetError, match="MTU"):
                yield from a.sendto(bytes(9 * 1024), (2, 2000))

        run(sim, sender())


class TestPcbCache:
    def test_cache_hits_after_first_packet(self):
        """§7.6: pcb caching per incoming channel speeds up demux."""
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)

        def sender():
            for _ in range(5):
                yield from a.sendto(b"x", (2, 2000))

        def receiver():
            for _ in range(5):
                yield from b.recvfrom()

        run(sim, sender(), receiver())
        assert sb.pcb_misses == 1
        assert sb.pcb_hits == 4


class TestChecksumControl:
    def test_checksum_disabled_skips_cost(self):
        """§7.6: applications may switch the UDP checksum off."""
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)
        a.checksum_enabled = False
        got = {}

        def sender():
            t0 = sim.now
            yield from a.sendto(bytes(4000), (2, 2000))
            got["send_time"] = sim.now - t0

        def receiver():
            got["data"], _ = yield from b.recvfrom()

        run(sim, sender(), receiver())
        assert len(got["data"]) == 4000
        # 4000-byte checksum would cost ~40 us; sending must be well under
        # the checksummed cost
        sim2, cluster2, sa2, sb2 = build_unet_pair()
        a2 = sa2.udp_socket(1000)
        sb2.udp_socket(2000)
        got2 = {}

        def sender2():
            t0 = sim2.now
            yield from a2.sendto(bytes(4000), (2, 2000))
            got2["send_time"] = sim2.now - t0

        run(sim2, sender2())
        assert got2["send_time"] - got["send_time"] == pytest.approx(40.0, abs=5.0)


class TestStatistics:
    def test_packet_counters(self):
        sim, cluster, sa, sb = build_unet_pair()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)

        def sender():
            for _ in range(3):
                yield from a.sendto(b"m", (2, 2000))

        def receiver():
            for _ in range(3):
                yield from b.recvfrom()

        run(sim, sender(), receiver())
        assert sa.packets_out == 3
        assert sb.packets_in == 3
        assert b.received == 3
