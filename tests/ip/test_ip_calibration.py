"""Shape assertions for the §7 results (Figures 6-9, Table 3 IP rows).

These pin the *relationships* the paper reports; absolute values carry
looser tolerances (see EXPERIMENTS.md for side-by-side numbers).
"""

import pytest

from repro.bench.ip import tcp_bandwidth, tcp_rtt, udp_bandwidth, udp_rtt


class TestFigure6KernelLatency:
    def test_atm_worse_than_ethernet_for_small_messages(self):
        """§7: 'for small messages the latency of both UDP and TCP
        messages is larger using ATM than going over Ethernet'."""
        atm = udp_rtt(64, kind="kernel-atm", n=3).mean_us
        eth = udp_rtt(64, kind="kernel-eth", n=3).mean_us
        assert atm > eth

    def test_atm_wins_for_large_messages(self):
        atm = udp_rtt(4096, kind="kernel-atm", n=3).mean_us
        eth = udp_rtt(4096, kind="kernel-eth", n=3).mean_us
        assert atm < eth

    def test_kernel_small_latency_near_a_millisecond(self):
        atm = udp_rtt(64, kind="kernel-atm", n=3).mean_us
        assert 900.0 < atm < 2500.0


class TestFigure9UnetLatency:
    def test_unet_udp_rtt_matches_table3(self):
        """Table 3: UDP round-trip ~138 us (small messages)."""
        rtt = udp_rtt(64, kind="unet", n=4).mean_us
        assert rtt == pytest.approx(138.0, rel=0.15)

    def test_unet_tcp_rtt_matches_table3(self):
        """Table 3: TCP round-trip ~157 us."""
        rtt = tcp_rtt(8, kind="unet", n=4).mean_us
        assert rtt == pytest.approx(157.0, rel=0.15)

    def test_tcp_slightly_over_udp(self):
        udp = udp_rtt(64, kind="unet", n=3).mean_us
        tcp = tcp_rtt(64, kind="unet", n=3).mean_us
        assert udp < tcp < udp + 80.0

    def test_order_of_magnitude_over_kernel(self):
        unet = udp_rtt(64, kind="unet", n=3).mean_us
        kernel = udp_rtt(64, kind="kernel-atm", n=3).mean_us
        assert kernel / unet > 7.0


class TestFigure7UdpBandwidth:
    def test_unet_udp_lossless(self):
        """§7.6: 'U-Net UDP does not experience any losses'."""
        for size in (1000, 4096):
            r = udp_bandwidth(size, kind="unet")
            assert r.drops == 0

    def test_unet_udp_near_fiber_rate(self):
        r = udp_bandwidth(4096, kind="unet")
        assert r.recv_rate > 14e6

    def test_kernel_udp_loses_under_load(self):
        results = [udp_bandwidth(s, kind="kernel-atm") for s in (1000, 8000)]
        assert any(r.drops > 0 for r in results)

    def test_kernel_send_rate_exceeds_delivery(self):
        """Figure 7 plots sender-perceived vs actually-received rates."""
        r = udp_bandwidth(8000, kind="kernel-atm")
        assert r.send_rate > r.recv_rate

    def test_kernel_far_below_unet(self):
        kernel = udp_bandwidth(1000, kind="kernel-atm").recv_rate
        unet = udp_bandwidth(1000, kind="unet").recv_rate
        assert unet > 3 * kernel

    def test_mbuf_sawtooth_visible(self):
        """§7.3: throughput dips when the remainder lands in 112-byte
        small mbufs (just under a 512 boundary) and recovers past it."""
        slow = udp_bandwidth(1500, kind="kernel-atm").send_rate  # 476-byte rem
        fast = udp_bandwidth(1536, kind="kernel-atm").send_rate  # 512-byte rem
        assert fast > slow * 1.05


class TestFigure8TcpBandwidth:
    def test_unet_tcp_full_bandwidth_with_8k_window(self):
        """§7.7: 'U-Net TCP achieves a 14-15 Mbytes/sec bandwidth using
        an 8 Kbyte window'."""
        r = tcp_bandwidth(4096, kind="unet", window=8192)
        assert 14e6 < r.bytes_per_second < 16e6

    def test_kernel_tcp_capped_even_with_64k_window(self):
        """§7.7: 'even with a 64K window the kernel TCP/ATM combination
        will not achieve more than 9-10 Mbytes/sec'."""
        r = tcp_bandwidth(4096, kind="kernel-atm", window=64 * 1024 - 1)
        assert r.bytes_per_second < 12e6

    def test_kernel_tcp_needs_big_windows(self):
        small = tcp_bandwidth(4096, kind="kernel-atm", window=8192)
        big = tcp_bandwidth(4096, kind="kernel-atm", window=64 * 1024 - 1)
        assert big.bytes_per_second > 2 * small.bytes_per_second

    def test_unet_window_insensitive_above_8k(self):
        w8 = tcp_bandwidth(4096, kind="unet", window=8192).bytes_per_second
        w32 = tcp_bandwidth(4096, kind="unet", window=32768).bytes_per_second
        assert abs(w32 - w8) / w8 < 0.1

    def test_write_size_insensitivity_unet(self):
        """Figure 8's x axis: application write size barely matters for
        U-Net TCP once past small writes."""
        rates = [
            tcp_bandwidth(ws, kind="unet", window=8192).bytes_per_second
            for ws in (2048, 4096, 8192)
        ]
        assert max(rates) / min(rates) < 1.2
