"""The same user-level IP stack runs unchanged over kernel-emulated
endpoints (§3.5: 'for software engineering reasons it may well be
desirable to use a single interface to the network across all
applications') -- just slower."""

import pytest

from repro.core import UNetCluster
from repro.ip.unet import UnetIpStack
from repro.sim import Simulator


def build_pair(emulated: bool):
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(
        segment_size=512 * 1024, send_ring=48, recv_ring=128, free_ring=128,
        emulated=emulated,
    )
    sa = cluster.open_session("alice", "ipa", **kwargs)
    sb = cluster.open_session("bob", "ipb", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    stack_a = UnetIpStack(sa, addr=1, recv_buffers=40)
    stack_b = UnetIpStack(sb, addr=2, recv_buffers=40)
    stack_a.add_peer(2, ch_a.ident)
    stack_b.add_peer(1, ch_b.ident)

    def boot():
        yield from stack_a.start()
        yield from stack_b.start()

    sim.process(boot())
    sim.run(until=5000.0)
    return sim, stack_a, stack_b


def udp_ping(sim, stack_a, stack_b, size=64, n=3):
    a = stack_a.udp_socket(1000)
    b = stack_b.udp_socket(2000)
    rtts = []

    def client():
        for _ in range(n):
            t0 = sim.now
            yield from a.sendto(bytes(size), (2, 2000))
            data, _src = yield from b_echo_recv()
            rtts.append(sim.now - t0)

    def b_echo_recv():
        data, src = yield from a.recvfrom()
        return data, src

    def server():
        for _ in range(n):
            data, (src, port) = yield from b.recvfrom()
            yield from b.sendto(data, (src, port))

    sim.process(client())
    sim.process(server())
    sim.run(until=sim.now + 1e7)
    return rtts


class TestIpOverEmulatedEndpoints:
    def test_udp_works_unchanged(self):
        sim, stack_a, stack_b = build_pair(emulated=True)
        rtts = udp_ping(sim, stack_a, stack_b)
        assert len(rtts) == 3

    def test_emulated_is_slower_than_regular(self):
        sim_e, sa_e, sb_e = build_pair(emulated=True)
        emu = udp_ping(sim_e, sa_e, sb_e)
        sim_r, sa_r, sb_r = build_pair(emulated=False)
        reg = udp_ping(sim_r, sa_r, sb_r)
        assert min(emu) > min(reg) + 50.0  # kernel crossings both ways

    def test_tcp_works_over_emulated(self):
        sim, stack_a, stack_b = build_pair(emulated=True)
        server = stack_b.tcp_listen(7000, peer_addr=1)
        data = bytes(i % 256 for i in range(20_000))
        got = {}

        def client():
            conn = yield from stack_a.tcp_connect(2, 7000)
            yield from conn.send(data)

        def srv():
            yield from server.wait_established()
            buf = b""
            while len(buf) < len(data):
                buf += yield from server.recv(1 << 20)
            got["data"] = buf

        sim.process(client())
        sim.process(srv())
        sim.run(until=sim.now + 1e8)
        assert got.get("data") == data
