"""Kernel-stack behaviour: mbuf costs, bounded buffers, silent drops."""

import pytest

from repro.bench.ip import build_kernel_atm_pair, build_kernel_eth_pair


def run(sim, *gens, until=1e9):
    procs = [sim.process(g) for g in gens]
    sim.run(until=until)
    return procs


class TestKernelUdp:
    @pytest.mark.parametrize("builder", [build_kernel_atm_pair, build_kernel_eth_pair])
    def test_roundtrip(self, builder):
        sim, net, sa, sb = builder()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)
        got = {}

        def sender():
            yield from a.sendto(b"kernel ping", (2, 2000))

        def receiver():
            got["data"], got["src"] = yield from b.recvfrom()

        run(sim, sender(), receiver())
        assert got["data"] == b"kernel ping"
        assert got["src"] == (1, 1000)

    def test_large_datagram_over_ethernet_fragments(self):
        sim, lan, sa, sb = build_kernel_eth_pair()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)
        payload = bytes(i % 256 for i in range(6000))
        got = {}

        def sender():
            yield from a.sendto(payload, (2, 2000))

        def receiver():
            got["data"], _ = yield from b.recvfrom()

        run(sim, sender(), receiver())
        assert got["data"] == payload
        assert lan.frames_sent >= 5  # 6 KB over 1480-byte fragments

    def test_socket_buffer_overrun_drops(self):
        """§7.3: the 52 KB socket receive buffer drops on overrun when
        the application does not drain."""
        sim, cluster, sa, sb = build_kernel_atm_pair()
        a = sa.udp_socket(1000)
        b = sb.udp_socket(2000)  # never drained

        def sender():
            for _ in range(10):
                yield from a.sendto(bytes(8000), (2, 2000))

        run(sim, sender(), until=1e8)
        sim.run(until=2e8)
        assert b.drops > 0
        assert b.buffered_bytes <= sb.costs.sockbuf_bytes
        assert b.received + b.drops == 10

    def test_sender_not_notified_of_drops(self):
        """§7.4: packets are dropped 'without notifying the sending
        application' -- sendto reports success regardless."""
        sim, cluster, sa, sb = build_kernel_atm_pair()
        a = sa.udp_socket(1000)
        sb.udp_socket(2000)
        completed = {"n": 0}

        def sender():
            for _ in range(80):
                yield from a.sendto(bytes(8000), (2, 2000))
                completed["n"] += 1

        run(sim, sender(), until=2e8)
        assert completed["n"] == 80  # every send "succeeded"


class TestKernelTcp:
    def test_roundtrip(self):
        sim, cluster, sa, sb = build_kernel_atm_pair()
        server = sb.tcp_listen(7000, peer_addr=1)
        data = bytes(i % 256 for i in range(20_000))
        got = {}

        def client():
            conn = yield from sa.tcp_connect(2, 7000)
            yield from conn.send(data)

        def srv():
            yield from server.wait_established()
            buf = b""
            while len(buf) < len(data):
                buf += yield from server.recv(1 << 20)
            got["data"] = buf

        run(sim, client(), srv(), until=1e9)
        assert got["data"] == data

    def test_kernel_defaults_match_sunos(self):
        sim, cluster, sa, sb = build_kernel_atm_pair()
        config = sa.tcp_config()
        assert config.timer_granularity_us == 500_000.0  # pr_slow_timeout
        assert config.delayed_ack is True
        assert config.mss == 9140

    def test_delayed_ack_default(self):
        """Kernel TCP delays acks; a lone small segment is acked only
        after the 200 ms delayed-ack timer (or piggybacked)."""
        sim, cluster, sa, sb = build_kernel_atm_pair()
        server = sb.tcp_listen(7000, peer_addr=1)
        state = {}

        def client():
            conn = yield from sa.tcp_connect(2, 7000)
            state["conn"] = conn
            yield from conn.send(b"x")

        def srv():
            yield from server.wait_established()
            yield from server.recv()

        run(sim, client(), srv(), until=5e4)  # 50 ms: before delack fires
        conn = state["conn"]
        assert conn.snd_una < conn.snd_nxt  # still unacknowledged
        sim.run(until=1e6)  # past the 200 ms delayed-ack timer
        assert conn.snd_una == conn.snd_nxt


class TestDeviceQueue:
    def test_devq_overflow_counts(self):
        sim, cluster, sa, sb = build_kernel_atm_pair()
        # fill the queue directly: the devq is bounded at 46 packets
        dev = sa.device
        accepted = sum(1 for _ in range(100) if dev.transmit(b"\x00" * 64))
        # the driver may have already pulled one packet off the queue
        assert accepted in (dev.costs.devq_packets, dev.costs.devq_packets + 1)
        assert dev.tx_drops == 100 - accepted
