"""Upcall dispatch tests: conditions, critical sections, batching."""

import pytest

from repro.core import SendDescriptor, UNetCluster, UpcallCondition, register_upcall
from repro.sim import Simulator

from tests.core.conftest import run


def build():
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    sa = cluster.open_session("alice", "pa")
    sb = cluster.open_session("bob", "pb")
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    return sim, cluster, sa, sb, ch_a, ch_b


class TestNonEmptyUpcall:
    def test_handler_runs_on_arrival(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        got = []

        def handler(endpoint):
            for desc in endpoint.recv_drain("pb"):
                got.append(desc.inline)
            yield sim.timeout(0)

        register_upcall(cluster.hosts["bob"], sb.endpoint, handler, caller="pb")

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"ding"))

        run(sim, sender())
        sim.run(until=1e9)
        assert got == [b"ding"]

    def test_single_upcall_consumes_batch(self):
        """§3.1: all pending messages are consumed in a single upcall."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        batches = []

        def handler(endpoint):
            batch = endpoint.recv_drain("pb")
            batches.append(len(batch))
            # simulate per-batch processing time so arrivals pile up
            yield sim.timeout(200.0)

        reg = register_upcall(
            cluster.hosts["bob"], sb.endpoint, handler, caller="pb"
        )

        def sender():
            for i in range(10):
                yield from sa.send(
                    SendDescriptor(channel=ch_a.ident, inline=bytes([i]))
                )

        run(sim, sender())
        sim.run(until=1e9)
        assert sum(batches) == 10
        assert len(batches) < 10  # batching actually happened
        assert reg.invocations == len(batches)

    def test_signal_cost_charged(self):
        """The UNIX-signal upcall costs ~30 us before the handler runs."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        times = {}

        def handler(endpoint):
            times["handler_at"] = sim.now
            endpoint.recv_drain("pb")
            yield sim.timeout(0)

        register_upcall(cluster.hosts["bob"], sb.endpoint, handler, caller="pb")
        arrival = {}
        orig_deliver = sb.endpoint.deliver

        def spy(desc):
            arrival["at"] = sim.now
            return orig_deliver(desc)

        sb.endpoint.deliver = spy

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"x"))

        run(sim, sender())
        sim.run(until=1e9)
        assert times["handler_at"] - arrival["at"] == pytest.approx(30.0)

    def test_no_signal_cost_option(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        times = {}

        def handler(endpoint):
            times["handler_at"] = sim.now
            endpoint.recv_drain("pb")
            yield sim.timeout(0)

        register_upcall(
            cluster.hosts["bob"], sb.endpoint, handler, caller="pb",
            signal_cost=False,
        )

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"x"))

        run(sim, sender())
        sim.run(until=1e9)
        assert "handler_at" in times


class TestCriticalSections:
    def test_disabled_upcalls_are_held(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        got = []

        def handler(endpoint):
            got.extend(endpoint.recv_drain("pb"))
            yield sim.timeout(0)

        register_upcall(
            cluster.hosts["bob"], sb.endpoint, handler, caller="pb",
            signal_cost=False,
        )
        sb.endpoint.disable_upcalls("pb")

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"x"))

        def enabler():
            yield sim.timeout(5000.0)
            assert got == []  # held while disabled
            sb.endpoint.enable_upcalls("pb")

        run(sim, sender(), enabler())
        sim.run(until=1e9)
        assert len(got) == 1


class TestAlmostFullUpcall:
    def test_fires_near_capacity(self):
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb", recv_ring=8)
        ch_a, ch_b = cluster.connect_sessions(sa, sb)
        fired = []

        def handler(endpoint):
            fired.append(len(endpoint.recv_queue))
            endpoint.recv_drain("pb")
            yield sim.timeout(0)

        register_upcall(
            cluster.hosts["bob"], sb.endpoint, handler,
            condition=UpcallCondition.RECV_ALMOST_FULL, caller="pb",
            signal_cost=False,
        )

        def sender():
            for i in range(6):
                yield from sa.send(
                    SendDescriptor(channel=ch_a.ident, inline=bytes([i]))
                )

        run(sim, sender())
        sim.run(until=1e9)
        assert fired and fired[0] >= 6  # 75% of 8


class TestCancel:
    def test_cancelled_upcall_stops(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        got = []

        def handler(endpoint):
            got.extend(endpoint.recv_drain("pb"))
            yield sim.timeout(0)

        reg = register_upcall(
            cluster.hosts["bob"], sb.endpoint, handler, caller="pb",
            signal_cost=False,
        )
        reg.cancel()

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"x"))

        run(sim, sender())
        sim.run(until=1e9)
        assert got == []
