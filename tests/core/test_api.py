"""UNetSession convenience-layer behaviour."""

import pytest

from repro.core import ProtectionError, SendDescriptor, UNetCluster
from repro.core.errors import QueueFullError, SegmentRangeError
from repro.sim import Simulator

from tests.core.conftest import run


class TestSendCopy:
    def test_small_goes_inline(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        out = {}

        def sender():
            desc = yield from sa.send_copy(ch_a.ident, b"tiny")
            out["desc"] = desc

        run(sim, sender())
        assert out["desc"].inline == b"tiny"

    def test_large_transient_buffer_freed(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        free_before = sa.endpoint.segment.free_bytes

        def sender():
            yield from sb.provide_receive_buffers(4)
            yield from sa.send_copy(ch_a.ident, bytes(3000))

        run(sim, sender())
        sim.run(until=1e9)
        assert sa.endpoint.segment.free_bytes == free_before

    def test_explicit_tx_offset_not_freed(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        out = {}

        def sender():
            yield from sb.provide_receive_buffers(4)
            offset = sa.alloc(3000)
            out["offset"] = offset
            yield from sa.send_copy(ch_a.ident, bytes(3000), tx_offset=offset)
            # caller-managed buffer: still allocated, reusable
            sa.endpoint.segment.check_range(offset, 3000)

        run(sim, sender())


class TestPeekVsRead:
    def test_peek_charges_no_copy_time(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        host_b = cluster.hosts["bob"]
        out = {}

        def sender():
            yield from sb.provide_receive_buffers(4)
            yield from sa.send_copy(ch_a.ident, bytes(2000))

        def receiver():
            desc = yield from sb.recv()
            busy = host_b.cpu.busy_us
            data = sb.peek_payload(desc)  # §3.4 true zero copy
            out["peek_cost"] = host_b.cpu.busy_us - busy
            out["len"] = len(data)

        run(sim, sender(), receiver())
        assert out["peek_cost"] == 0.0
        assert out["len"] == 2000

    def test_recv_payload_charges_copy(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        host_b = cluster.hosts["bob"]
        out = {}

        def sender():
            yield from sb.provide_receive_buffers(4)
            yield from sa.send_copy(ch_a.ident, bytes(2000))

        def receiver():
            desc = yield from sb.recv()
            busy = host_b.cpu.busy_us
            yield from sb.recv_payload(desc)
            out["copy_cost"] = host_b.cpu.busy_us - busy

        run(sim, sender(), receiver())
        assert out["copy_cost"] >= 2000 * host_b.costs.copy_us_per_byte


class TestBufferProvisioning:
    def test_free_queue_overflow_raises(self, sim):
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa", free_ring=4, segment_size=256 * 1024)

        def provider():
            with pytest.raises(QueueFullError):
                yield from sa.provide_receive_buffers(5, size=4160)

        run(sim, provider())

    def test_segment_exhaustion_raises(self, sim):
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa", segment_size=16 * 1024)

        def provider():
            with pytest.raises(SegmentRangeError):
                yield from sa.provide_receive_buffers(8, size=4160)

        run(sim, provider())

    def test_inline_descriptor_size_cap(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        with pytest.raises(ValueError):
            sa.make_descriptor(ch_a.ident, data=bytes(41))


class TestSessionOwnership:
    def test_session_constructor_checks_owner(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        from repro.core import UNetSession

        with pytest.raises(ProtectionError):
            UNetSession(cluster.hosts["alice"], sa.endpoint, "someone-else")


class TestClusterBuilders:
    def test_paper_testbed_is_eight_mixed_nodes(self):
        sim = Simulator()
        cluster = UNetCluster.paper_testbed(sim)
        assert len(cluster.hosts) == 8
        clocks = sorted(h.mhz for h in cluster.hosts.values())
        assert clocks == [50.0] * 3 + [60.0] * 5

    def test_unknown_ni_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown NI kind"):
            UNetCluster.pair(Simulator(), ni_kind="quantum")

    def test_back_pressure_send_resumes(self, sim):
        """session.send waits out a full send ring instead of failing."""
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa", send_ring=2)
        sb = cluster.open_session("bob", "pb")
        ch_a, ch_b = cluster.connect_sessions(sa, sb)
        sent = {"n": 0}

        def sender():
            for i in range(20):
                yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=bytes([i])))
                sent["n"] += 1

        def receiver():
            for _ in range(20):
                yield from sb.recv()

        run(sim, sender(), receiver())
        assert sent["n"] == 20
