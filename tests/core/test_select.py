"""The select()-style blocking receive model (§3.1)."""

import pytest

from repro.core import SendDescriptor, UNetCluster
from repro.core.select import select_recv
from repro.sim import Simulator


def build():
    """One receiver process with two endpoints, two remote senders."""
    sim = Simulator()
    cluster = UNetCluster(sim, [("rx", 60.0), ("tx1", 60.0), ("tx2", 60.0)])
    r1 = cluster.open_session("rx", "receiver")
    r2 = cluster.open_session("rx", "receiver")
    s1 = cluster.open_session("tx1", "sender1")
    s2 = cluster.open_session("tx2", "sender2")
    ch_s1, ch_r1 = cluster.connect_sessions(s1, r1)
    ch_s2, ch_r2 = cluster.connect_sessions(s2, r2)
    return sim, cluster, (r1, r2), (s1, ch_s1), (s2, ch_s2)


class TestSelect:
    def test_wakes_on_whichever_endpoint_receives(self):
        sim, cluster, (r1, r2), (s1, ch1), (s2, ch2) = build()
        got = {}

        def receiver():
            hits = yield from select_recv([r1, r2])
            got["ready"] = hits
            got["at"] = sim.now

        def sender():
            yield sim.timeout(500.0)
            yield from s2.send(SendDescriptor(channel=ch2.ident, inline=b"x"))

        sim.process(receiver())
        sim.process(sender())
        sim.run(until=1e6)
        assert got["ready"] == [r2]
        assert got["at"] > 500.0

    def test_immediate_when_already_pending(self):
        sim, cluster, (r1, r2), (s1, ch1), (s2, ch2) = build()
        got = {}

        def sender():
            yield from s1.send(SendDescriptor(channel=ch1.ident, inline=b"x"))

        def receiver():
            yield sim.timeout(1000.0)  # message is already there
            hits = yield from select_recv([r1, r2], timeout_us=10.0)
            got["ready"] = hits

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=1e6)
        assert got["ready"] == [r1]

    def test_timeout_returns_empty(self):
        sim, cluster, (r1, r2), _s1, _s2 = build()
        got = {}

        def receiver():
            t0 = sim.now
            hits = yield from select_recv([r1, r2], timeout_us=300.0)
            got["ready"] = hits
            got["waited"] = sim.now - t0

        sim.process(receiver())
        sim.run(until=1e6)
        assert got["ready"] == []
        assert got["waited"] >= 300.0

    def test_both_ready_reported_together(self):
        sim, cluster, (r1, r2), (s1, ch1), (s2, ch2) = build()
        got = {}

        def senders():
            yield from s1.send(SendDescriptor(channel=ch1.ident, inline=b"a"))
            yield from s2.send(SendDescriptor(channel=ch2.ident, inline=b"b"))

        def receiver():
            yield sim.timeout(2000.0)
            got["ready"] = yield from select_recv([r1, r2])

        sim.process(senders())
        sim.process(receiver())
        sim.run(until=1e6)
        assert set(id(s) for s in got["ready"]) == {id(r1), id(r2)}

    def test_wakeup_cost_charged_once(self):
        sim, cluster, (r1, r2), (s1, ch1), (s2, ch2) = build()
        host = cluster.hosts["rx"]
        got = {}

        def sender():
            yield from s1.send(SendDescriptor(channel=ch1.ident, inline=b"x"))

        def receiver():
            yield sim.timeout(1000.0)
            before = host.cpu.busy_us
            yield from select_recv([r1, r2])
            got["cost"] = host.cpu.busy_us - before

        sim.process(sender())
        sim.process(receiver())
        sim.run(until=1e6)
        assert got["cost"] == pytest.approx(host.costs.select_wakeup_us)

    def test_validation(self):
        sim, cluster, (r1, r2), (s1, ch1), _ = build()
        with pytest.raises(ValueError):
            list(select_recv([]))
        with pytest.raises(ValueError):
            list(select_recv([r1, s1]))  # different hosts/processes
