"""NI multiplexing among processes (§1's key issue: 'multiplexing the
network among processes' without kernel mediation)."""

import pytest

from repro.core import SendDescriptor, UNetCluster
from repro.sim import Simulator

from tests.core.conftest import run


def build_two_senders():
    """Two processes on one host, each streaming to its own receiver
    endpoint on the peer host."""
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(segment_size=512 * 1024, send_ring=64, recv_ring=128, free_ring=128)
    s1 = cluster.open_session("alice", "proc1", **kwargs)
    s2 = cluster.open_session("alice", "proc2", **kwargs)
    r1 = cluster.open_session("bob", "rx1", **kwargs)
    r2 = cluster.open_session("bob", "rx2", **kwargs)
    ch1, _ = cluster.connect_sessions(s1, r1)
    ch2, _ = cluster.connect_sessions(s2, r2)
    return sim, cluster, (s1, ch1, r1), (s2, ch2, r2)


class TestFairSharing:
    def test_two_streams_share_the_fiber_roughly_equally(self):
        """Two processes blasting concurrently each get ~half the
        bandwidth: the NI serves send queues without kernel arbitration."""
        sim, cluster, (s1, ch1, r1), (s2, ch2, r2) = build_two_senders()
        n, size = 60, 2048
        done = {}

        def sender(session, channel, key):
            offset = session.alloc(size)
            yield from session.write_segment(offset, bytes(size))
            for _ in range(n):
                yield from session.send(
                    SendDescriptor(channel=channel.ident, bufs=((offset, size),))
                )

        def receiver(session, key):
            yield from session.provide_receive_buffers(100)
            for _ in range(n):
                desc = yield from session.recv()
                yield from session.repost_free(desc)
            done[key] = sim.now

        run(
            sim,
            sender(s1, ch1, "a"), sender(s2, ch2, "b"),
            receiver(r1, "a"), receiver(r2, "b"),
        )
        # both streams finish within ~25% of each other
        assert abs(done["a"] - done["b"]) / max(done["a"], done["b"]) < 0.25

    def test_combined_throughput_matches_single_stream(self):
        """Multiplexing costs no aggregate bandwidth."""
        def run_streams(two: bool):
            sim, cluster, (s1, ch1, r1), (s2, ch2, r2) = build_two_senders()
            n, size = 50, 2048
            done = {}

            def sender(session, channel):
                offset = session.alloc(size)
                yield from session.write_segment(offset, bytes(size))
                for _ in range(n):
                    yield from session.send(
                        SendDescriptor(channel=channel.ident, bufs=((offset, size),))
                    )

            def receiver(session, key):
                yield from session.provide_receive_buffers(100)
                for _ in range(n):
                    desc = yield from session.recv()
                    yield from session.repost_free(desc)
                done[key] = sim.now

            gens = [sender(s1, ch1), receiver(r1, "a")]
            if two:
                gens += [sender(s2, ch2), receiver(r2, "b")]
            run(sim, *gens)
            total = n * size * (2 if two else 1)
            return total / max(done.values())

        single = run_streams(False)
        double = run_streams(True)
        assert double > 0.85 * single

    def test_small_messages_interleave_with_bulk(self):
        """A latency-sensitive process sharing the NI with a bulk
        stream still gets round trips well under kernel-stack latency
        (the multiplexing story of §3.2)."""
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        kwargs = dict(segment_size=512 * 1024, send_ring=64, recv_ring=128,
                      free_ring=128)
        ping_a = cluster.open_session("alice", "ping", **kwargs)
        ping_b = cluster.open_session("bob", "pong", **kwargs)
        bulk_a = cluster.open_session("alice", "bulk", **kwargs)
        bulk_b = cluster.open_session("bob", "sink", **kwargs)
        ch_ping, ch_pong = cluster.connect_sessions(ping_a, ping_b)
        ch_bulk, _ = cluster.connect_sessions(bulk_a, bulk_b)
        rtts = []

        def pinger():
            yield from ping_a.provide_receive_buffers(8)
            yield sim.timeout(500.0)  # let the bulk stream ramp up
            for _ in range(10):
                t0 = sim.now
                yield from ping_a.send(
                    SendDescriptor(channel=ch_ping.ident, inline=b"hi")
                )
                yield from ping_a.recv()
                rtts.append(sim.now - t0)

        def ponger():
            yield from ping_b.provide_receive_buffers(8)
            for _ in range(10):
                desc = yield from ping_b.recv()
                yield from ping_b.send(
                    SendDescriptor(channel=ch_pong.ident, inline=desc.inline)
                )

        def bulk_sender():
            offset = bulk_a.alloc(4096)
            yield from bulk_a.write_segment(offset, bytes(4096))
            for _ in range(80):
                yield from bulk_a.send(
                    SendDescriptor(channel=ch_bulk.ident, bufs=((offset, 4096),))
                )

        def bulk_sink():
            yield from bulk_b.provide_receive_buffers(100)
            for _ in range(80):
                desc = yield from bulk_b.recv()
                yield from bulk_b.repost_free(desc)

        run(sim, pinger(), ponger(), bulk_sender(), bulk_sink())
        mean_rtt = sum(rtts) / len(rtts)
        # degraded by queueing behind bulk cells, but nowhere near the
        # millisecond kernel path
        assert 65.0 <= mean_rtt < 800.0
