"""Direct-access U-Net (§3.6) extension tests."""

import pytest

from repro.core import SendDescriptor, UNetCluster
from repro.core.direct import DirectSendDescriptor
from repro.sim import Simulator

from tests.core.conftest import run


def build():
    sim = Simulator()
    cluster = UNetCluster.pair(sim, ni_kind="direct")
    sa = cluster.open_session("alice", "pa", segment_size=128 * 1024)
    sb = cluster.open_session("bob", "pb", segment_size=128 * 1024)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    return sim, cluster, sa, sb, ch_a, ch_b


class TestDirectDeposit:
    def test_payload_lands_at_remote_offset(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        payload = b"deposited-right-here" * 10
        target = 10_000

        def sender():
            off = sa.alloc(len(payload))
            yield from sa.write_segment(off, payload)
            desc = DirectSendDescriptor(
                channel=ch_a.ident, bufs=((off, len(payload)),),
                remote_offset=target,
            )
            yield from sa.send(desc)

        got = {}

        def receiver():
            desc = yield from sb.recv()
            got["desc"] = desc

        run(sim, sender(), receiver())
        desc = got["desc"]
        assert desc.bufs == ((target, len(payload)),)
        # True zero copy: the data is already in place in the segment.
        assert sb.endpoint.segment.read(target, len(payload)) == payload
        assert cluster.hosts["bob"].ni.direct_deposits == 1

    def test_no_free_buffers_needed(self):
        """Direct deposits bypass the free queue entirely."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        payload = bytes(5000)  # would need 2 buffers on the base path

        def sender():
            off = sa.alloc(len(payload))
            yield from sa.write_segment(off, payload)
            yield from sa.send(
                DirectSendDescriptor(
                    channel=ch_a.ident, bufs=((off, len(payload)),),
                    remote_offset=0,
                )
            )

        got = {}

        def receiver():
            # note: provide_receive_buffers never called
            desc = yield from sb.recv()
            got["len"] = desc.length

        run(sim, sender(), receiver())
        assert got["len"] == 5000
        assert sb.endpoint.no_buffer_drops == 0

    def test_base_level_still_works(self):
        """§3.6: direct-access is a strict superset of base-level."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        got = {}

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"base"))
            yield from sa.send_copy(ch_a.ident, bytes(2000))

        def receiver():
            yield from sb.provide_receive_buffers(4)
            d1 = yield from sb.recv()
            d2 = yield from sb.recv()
            got["inline"] = d1.inline
            got["len2"] = d2.length

        run(sim, sender(), receiver())
        assert got["inline"] == b"base"
        assert got["len2"] == 2000


class TestDirectProtection:
    def test_out_of_segment_deposit_dropped(self):
        """A deposit outside the destination segment must never write."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        payload = bytes(100)

        def sender():
            off = sa.alloc(len(payload))
            yield from sa.write_segment(off, payload)
            yield from sa.send(
                DirectSendDescriptor(
                    channel=ch_a.ident, bufs=((off, len(payload)),),
                    remote_offset=sb.endpoint.segment.size - 10,  # overruns
                )
            )

        run(sim, sender())
        sim.run(until=1e9)
        assert cluster.hosts["bob"].ni.direct_range_errors == 1
        assert sb.endpoint.recv_poll("pb") is None

    def test_negative_offset_rejected_at_source(self):
        with pytest.raises(ValueError):
            DirectSendDescriptor(channel=1, inline=b"x", remote_offset=-1)


class TestDirectPerformance:
    def test_direct_cheaper_than_buffered(self):
        """Skipping buffer management beats the base-level receive path."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        payload = bytes(48)
        times = {}

        def sender():
            off = sa.alloc(4096)
            yield from sa.write_segment(off, payload)
            t0 = sim.now
            yield from sa.send(
                DirectSendDescriptor(
                    channel=ch_a.ident, bufs=((off, len(payload)),),
                    remote_offset=0,
                )
            )
            d = yield from sb_recv()
            times["direct"] = sim.now - t0
            t0 = sim.now
            yield from sa.send(
                SendDescriptor(channel=ch_a.ident, bufs=((off, len(payload)),))
            )
            d = yield from sb_recv()
            times["base"] = sim.now - t0

        def sb_recv():
            desc = yield from sb.recv()
            return desc

        def prime():
            yield from sb.provide_receive_buffers(4)

        run(sim, prime(), sender())
        assert times["direct"] < times["base"]
