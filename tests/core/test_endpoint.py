"""Endpoint semantics: rings, ownership, upcall critical sections."""

import pytest

from repro.core import (
    FreeDescriptor,
    ProtectionError,
    RecvDescriptor,
    SendDescriptor,
    UNetError,
)
from repro.core.endpoint import Channel, Endpoint
from repro.sim import Simulator


def make_endpoint(sim=None, **kwargs):
    sim = sim if sim is not None else Simulator()
    defaults = dict(name="ep", owner="me", segment_size=4096)
    defaults.update(kwargs)
    return Endpoint(sim, **defaults)


def attach_channel(endpoint, ident=1):
    ch = Channel(
        ident=ident, endpoint=endpoint, tx_vci=32, rx_vci=33, peer_host="peer"
    )
    endpoint.channels[ident] = ch
    return ch


class TestSend:
    def test_post_send_requires_registered_channel(self):
        ep = make_endpoint()
        with pytest.raises(ProtectionError, match="channel"):
            ep.post_send(SendDescriptor(channel=9, inline=b"x"), "me")

    def test_post_send_on_closed_channel(self):
        ep = make_endpoint()
        ch = attach_channel(ep)
        ch.open = False
        with pytest.raises(ProtectionError):
            ep.post_send(SendDescriptor(channel=1, inline=b"x"), "me")

    def test_post_send_validates_buffer_ranges(self):
        ep = make_endpoint()
        attach_channel(ep)
        bad = SendDescriptor(channel=1, bufs=((4090, 100),))
        with pytest.raises(Exception):
            ep.post_send(bad, "me")

    def test_back_pressure(self):
        ep = make_endpoint(send_ring=2)
        attach_channel(ep)
        d = lambda: SendDescriptor(channel=1, inline=b"x")
        assert ep.post_send(d(), "me")
        assert ep.post_send(d(), "me")
        assert not ep.post_send(d(), "me")


class TestOwnership:
    def test_wrong_owner_send(self):
        ep = make_endpoint()
        attach_channel(ep)
        with pytest.raises(ProtectionError):
            ep.post_send(SendDescriptor(channel=1, inline=b"x"), "intruder")

    def test_wrong_owner_recv(self):
        ep = make_endpoint()
        with pytest.raises(ProtectionError):
            ep.recv_poll("intruder")

    def test_wrong_owner_free(self):
        ep = make_endpoint()
        with pytest.raises(ProtectionError):
            ep.post_free(FreeDescriptor(0, 64), "intruder")

    def test_destroyed_endpoint_rejects_ops(self):
        ep = make_endpoint()
        attach_channel(ep)
        ep.destroyed = True
        with pytest.raises(UNetError):
            ep.recv_poll("me")


class TestReceive:
    def test_deliver_and_poll(self):
        ep = make_endpoint()
        desc = RecvDescriptor(channel=1, length=3, inline=b"abc")
        assert ep.deliver(desc)
        assert ep.recv_poll("me") is desc
        assert ep.messages_received == 1

    def test_deliver_full_ring_drops(self):
        ep = make_endpoint(recv_ring=1)
        ep.deliver(RecvDescriptor(channel=1, length=1, inline=b"a"))
        assert not ep.deliver(RecvDescriptor(channel=1, length=1, inline=b"b"))
        assert ep.receive_drops == 1

    def test_drain_consumes_all(self):
        ep = make_endpoint()
        for i in range(3):
            ep.deliver(RecvDescriptor(channel=1, length=1, inline=bytes([i])))
        assert len(ep.recv_drain("me")) == 3
        assert ep.recv_poll("me") is None

    def test_wait_recv_event(self):
        sim = Simulator()
        ep = make_endpoint(sim)
        ev = ep.wait_recv("me")
        assert not ev.triggered
        ep.deliver(RecvDescriptor(channel=1, length=1, inline=b"x"))
        assert ev.triggered


class TestUpcallSections:
    def test_disable_enable(self):
        ep = make_endpoint()
        ep.disable_upcalls("me")
        assert not ep.upcalls_enabled
        ev = ep.wait_upcalls_enabled()
        assert not ev.triggered
        ep.enable_upcalls("me")
        assert ev.triggered

    def test_enabled_by_default(self):
        ep = make_endpoint()
        assert ep.wait_upcalls_enabled().triggered

    def test_only_owner_toggles(self):
        ep = make_endpoint()
        with pytest.raises(ProtectionError):
            ep.disable_upcalls("intruder")


class TestSendCompletion:
    def test_completion_event_after_injection(self):
        sim = Simulator()
        ep = make_endpoint(sim)
        attach_channel(ep)
        desc = SendDescriptor(channel=1, inline=b"x")
        ev = ep.wait_send_complete(desc)
        assert not ev.triggered
        # the NI marks and triggers:
        desc.injected = True
        desc.completion.succeed()
        assert ev.triggered

    def test_completion_event_already_injected(self):
        sim = Simulator()
        ep = make_endpoint(sim)
        desc = SendDescriptor(channel=1, inline=b"x")
        desc.injected = True
        assert ep.wait_send_complete(desc).triggered
