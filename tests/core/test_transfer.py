"""End-to-end message transfer through the full simulated stack.

These are integration tests: bytes leave one process's communication
segment, become AAL5 cells on a fiber, pass the switch, and land in the
peer's segment (or inline descriptor).
"""

import pytest

from repro.core import SINGLE_CELL_MAX, SendDescriptor, UNetCluster
from repro.sim import Simulator

from tests.core.conftest import run


def send_and_recv(size, ni_kind="sba200"):
    sim = Simulator()
    cluster = UNetCluster.pair(sim, ni_kind=ni_kind)
    sa = cluster.open_session("alice", "pa", segment_size=256 * 1024)
    sb = cluster.open_session("bob", "pb", segment_size=256 * 1024)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    payload = bytes(i % 251 for i in range(size))
    out = {}

    def sender():
        yield from sa.send_copy(ch_a.ident, payload)

    def receiver():
        yield from sb.provide_receive_buffers(8)
        desc = yield from sb.recv()
        out["data"] = yield from sb.recv_payload(desc)
        out["channel"] = desc.channel

    run(sim, sender(), receiver())
    return payload, out, ch_b


class TestDataIntegrity:
    @pytest.mark.parametrize("size", [0, 1, 39, 40, 41, 48, 100, 4159, 4160, 4161, 9000])
    def test_payload_roundtrip_sba200(self, size):
        payload, out, ch_b = send_and_recv(size)
        assert out["data"] == payload
        assert out["channel"] == ch_b.ident

    @pytest.mark.parametrize("size", [0, 40, 41, 1024])
    def test_payload_roundtrip_sba100(self, size):
        payload, out, _ = send_and_recv(size, ni_kind="sba100")
        assert out["data"] == payload

    @pytest.mark.parametrize("size", [0, 40, 1024])
    def test_payload_roundtrip_fore(self, size):
        payload, out, _ = send_and_recv(size, ni_kind="fore")
        assert out["data"] == payload

    def test_small_message_arrives_inline(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"tiny"))

        out = {}

        def receiver():
            desc = yield from sb.recv()
            out["desc"] = desc

        run(sim, sender(), receiver())
        assert out["desc"].is_inline
        assert out["desc"].inline == b"tiny"

    def test_large_message_uses_free_buffers(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair

        def sender():
            yield from sa.send_copy(ch_a.ident, bytes(5000))

        out = {}

        def receiver():
            yield from sb.provide_receive_buffers(4, size=4160)
            desc = yield from sb.recv()
            out["desc"] = desc

        run(sim, sender(), receiver())
        desc = out["desc"]
        assert not desc.is_inline
        assert len(desc.bufs) == 2  # 5000 bytes across 4160-byte buffers
        assert desc.length == 5000


class TestOrdering:
    def test_messages_arrive_in_order(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        got = []

        def sender():
            for i in range(20):
                yield from sa.send(
                    SendDescriptor(channel=ch_a.ident, inline=bytes([i]))
                )

        def receiver():
            for _ in range(20):
                desc = yield from sb.recv()
                got.append(desc.inline[0])

        run(sim, sender(), receiver())
        assert got == list(range(20))

    def test_interleaved_sizes_keep_order(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        sizes = [8, 2000, 16, 500, 40, 4100]
        got = []

        def sender():
            for i, size in enumerate(sizes):
                yield from sa.send_copy(ch_a.ident, bytes([i]) * size)

        def receiver():
            yield from sb.provide_receive_buffers(12)
            for _ in sizes:
                desc = yield from sb.recv()
                data = yield from sb.recv_payload(desc)
                got.append((len(data), data[:1]))
                if not desc.is_inline:
                    yield from sb.repost_free(desc)

        run(sim, sender(), receiver())
        assert got == [(s, bytes([i])) for i, s in enumerate(sizes)]


class TestResourceExhaustion:
    def test_no_free_buffers_drops_large_message(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair

        def sender():
            yield from sa.send_copy(ch_a.ident, bytes(1000))  # needs a buffer
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"ok"))

        out = {}

        def receiver():
            # no free buffers provided: the 1000-byte message must drop,
            # the inline message still arrives
            desc = yield from sb.recv()
            out["desc"] = desc

        run(sim, sender(), receiver())
        assert out["desc"].inline == b"ok"
        assert sb.endpoint.no_buffer_drops == 1

    def test_recv_ring_overflow_drops(self, sim):
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb", recv_ring=2)
        ch_a, ch_b = cluster.connect_sessions(sa, sb)

        def sender():
            for i in range(6):
                yield from sa.send(
                    SendDescriptor(channel=ch_a.ident, inline=bytes([i]))
                )

        run(sim, sender())
        sim.run(until=1e9)
        # receiver never drained: ring holds 2, rest dropped
        assert sb.endpoint.receive_drops == 4

    def test_injected_flag_set(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        desc = SendDescriptor(channel=ch_a.ident, inline=b"x")

        def sender():
            yield from sa.send(desc)
            yield sa.endpoint.wait_send_complete(desc)

        run(sim, sender())
        assert desc.injected


class TestCounters:
    def test_message_counters(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair

        def sender():
            for _ in range(3):
                yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"m"))

        def receiver():
            for _ in range(3):
                yield from sb.recv()

        run(sim, sender(), receiver())
        assert sa.endpoint.messages_sent == 3
        assert sb.endpoint.messages_received == 3
        ni = cluster.hosts["alice"].ni
        assert ni.pdus_sent == 3
