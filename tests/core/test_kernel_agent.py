"""Kernel agent: resource limits, channel setup, authentication."""

import pytest

from repro.core import (
    ChannelError,
    ProtectionError,
    ResourceLimitError,
    ResourceLimits,
    UNetCluster,
)
from repro.sim import Simulator


def make_cluster(limits=None):
    sim = Simulator()
    return sim, UNetCluster.pair(sim, limits=limits)


class TestEndpointLimits:
    def test_endpoint_count_limit(self):
        sim, cluster = make_cluster(
            ResourceLimits(max_endpoints=2, max_pinned_bytes=10**7)
        )
        agent = cluster.agent("alice")
        agent.create_endpoint("p", segment_size=1024)
        agent.create_endpoint("p", segment_size=1024)
        with pytest.raises(ResourceLimitError, match="endpoint limit"):
            agent.create_endpoint("p", segment_size=1024)

    def test_pinned_memory_limit(self):
        sim, cluster = make_cluster(
            ResourceLimits(max_pinned_bytes=100 * 1024, max_segment_bytes=80 * 1024)
        )
        agent = cluster.agent("alice")
        agent.create_endpoint("p", segment_size=64 * 1024)
        with pytest.raises(ResourceLimitError, match="pin"):
            agent.create_endpoint("p", segment_size=64 * 1024)

    def test_segment_size_limit(self):
        """Base-level U-Net bounds communication segment size (§3.3)."""
        sim, cluster = make_cluster(ResourceLimits(max_segment_bytes=64 * 1024))
        with pytest.raises(ResourceLimitError, match="segment"):
            cluster.agent("alice").create_endpoint("p", segment_size=128 * 1024)

    def test_ring_limit(self):
        sim, cluster = make_cluster(ResourceLimits(max_ring_entries=64))
        with pytest.raises(ResourceLimitError, match="ring"):
            cluster.agent("alice").create_endpoint("p", send_ring=128)

    def test_destroy_releases_pinned_memory(self):
        sim, cluster = make_cluster(
            ResourceLimits(max_pinned_bytes=100 * 1024, max_segment_bytes=80 * 1024)
        )
        agent = cluster.agent("alice")
        ep = agent.create_endpoint("p", segment_size=64 * 1024)
        agent.destroy_endpoint(ep, "p")
        agent.create_endpoint("p", segment_size=64 * 1024)  # fits again

    def test_destroy_requires_owner(self):
        sim, cluster = make_cluster()
        agent = cluster.agent("alice")
        ep = agent.create_endpoint("p")
        with pytest.raises(ProtectionError):
            agent.destroy_endpoint(ep, "q")


class TestChannelSetup:
    def test_connect_installs_both_sides(self):
        sim, cluster = make_cluster()
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        ch_a, ch_b = cluster.connect_sessions(sa, sb)
        assert ch_a.tx_vci == ch_b.rx_vci
        assert ch_a.rx_vci == ch_b.tx_vci
        assert ch_a.peer_host == "bob"
        assert ch_b.peer_host == "alice"
        assert ch_a.ident in sa.endpoint.channels
        assert ch_b.ident in sb.endpoint.channels

    def test_unknown_service(self):
        sim, cluster = make_cluster()
        sa = cluster.open_session("alice", "pa")
        with pytest.raises(ChannelError, match="unknown service"):
            cluster.directory.connect(sa.endpoint, "ghost", "pa")

    def test_advertise_requires_owner(self):
        sim, cluster = make_cluster()
        sa = cluster.open_session("alice", "pa")
        with pytest.raises(ProtectionError):
            cluster.directory.advertise("svc", sa.endpoint, "other")

    def test_duplicate_service(self):
        sim, cluster = make_cluster()
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        with pytest.raises(ChannelError):
            cluster.directory.advertise("svc", sa.endpoint, "pa")

    def test_disconnect_closes_both(self):
        sim, cluster = make_cluster()
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        ch_a, ch_b = cluster.connect_sessions(sa, sb)
        cluster.directory.disconnect(ch_a, "pa")
        assert not ch_a.open
        assert not ch_b.open
        assert ch_a.rx_vci not in cluster.hosts["alice"].ni.mux
        assert ch_b.rx_vci not in cluster.hosts["bob"].ni.mux


class TestAuthentication:
    def test_denied_by_local_policy(self):
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        cluster.agent("alice").auth = lambda caller, local, peer: False
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        with pytest.raises(ProtectionError, match="denied"):
            cluster.directory.connect(sa.endpoint, "svc", "pa")

    def test_denied_by_remote_policy(self):
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        cluster.agent("bob").auth = lambda caller, local, peer: False
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        with pytest.raises(ProtectionError, match="refused"):
            cluster.directory.connect(sa.endpoint, "svc", "pa")

    def test_no_routes_installed_when_denied(self):
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        cluster.agent("alice").auth = lambda *a: False
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        before = len(cluster.hosts["bob"].ni.mux)
        with pytest.raises(ProtectionError):
            cluster.directory.connect(sa.endpoint, "svc", "pa")
        assert len(cluster.hosts["bob"].ni.mux) == before
