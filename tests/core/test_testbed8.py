"""Eight-node testbed integration (§4.2's five SS-20s + three SS-10s)."""

import pytest

from repro.core import SendDescriptor, UNetCluster
from repro.sim import Simulator

from tests.core.conftest import run


@pytest.fixture
def testbed():
    sim = Simulator()
    cluster = UNetCluster.paper_testbed(sim)
    return sim, cluster


class TestAllToAll:
    def test_every_pair_communicates(self, testbed):
        """28 full-duplex channels; every node sends a tagged message to
        every other and verifies all arrivals."""
        sim, cluster = testbed
        names = cluster.host_names
        sessions = {
            name: cluster.open_session(name, f"app-{name}") for name in names
        }
        channels = {}
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                ch_ab, ch_ba = cluster.connect_sessions(sessions[a], sessions[b])
                channels[(a, b)] = ch_ab
                channels[(b, a)] = ch_ba
        received = {name: set() for name in names}

        def node(name):
            session = sessions[name]
            yield from session.provide_receive_buffers(12)
            my_index = names.index(name)
            for peer in names:
                if peer != name:
                    msg = f"{my_index}".encode()
                    yield from session.send(
                        SendDescriptor(
                            channel=channels[(name, peer)].ident, inline=msg
                        )
                    )
            for _ in range(len(names) - 1):
                desc = yield from session.recv()
                received[name].add(int(session.peek_payload(desc)))

        run(sim, *[node(name) for name in names])
        for i, name in enumerate(names):
            assert received[name] == set(range(8)) - {i}

    def test_switch_carried_every_route(self, testbed):
        sim, cluster = testbed
        names = cluster.host_names
        sessions = {n: cluster.open_session(n, f"p-{n}") for n in names}
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                cluster.connect_sessions(sessions[a], sessions[b])
        # 28 duplex circuits = 56 switch routes
        assert len(cluster.network.switch._routes) == 56


class TestMixedClocks:
    def test_ss10_round_trips_slower_than_ss20(self, testbed):
        """Host-side costs scale with the clock: the 50 MHz SS-10s see
        slightly slower round trips than the 60 MHz SS-20s."""
        sim, cluster = testbed

        def measure(a, b):
            sa = cluster.open_session(a, f"m-{a}")
            sb = cluster.open_session(b, f"m-{b}")
            ch_a, ch_b = cluster.connect_sessions(sa, sb)
            out = {}

            def pinger():
                yield from sa.provide_receive_buffers(4)
                t0 = sim.now
                yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"x"))
                yield from sa.recv()
                out["rtt"] = sim.now - t0

            def ponger():
                yield from sb.provide_receive_buffers(4)
                desc = yield from sb.recv()
                yield from sb.send(
                    SendDescriptor(channel=ch_b.ident, inline=desc.inline)
                )

            run(sim, pinger(), ponger())
            return out["rtt"]

        fast = measure("ss20-0", "ss20-1")
        slow = measure("ss10-0", "ss10-1")
        assert slow > fast

    def test_clock_speeds_match_spec(self, testbed):
        sim, cluster = testbed
        assert cluster.hosts["ss20-0"].mhz == 60.0
        assert cluster.hosts["ss10-2"].mhz == 50.0


class TestConcurrentLoad:
    def test_four_simultaneous_streams(self, testbed):
        """Four disjoint pairs stream concurrently through the switch
        with zero loss (output-buffered, disjoint ports)."""
        sim, cluster = testbed
        names = cluster.host_names
        pairs = [(names[i], names[i + 4]) for i in range(4)]
        n, size = 30, 2048
        done = {"count": 0}

        def make_pair(a, b):
            sa = cluster.open_session(a, f"s-{a}", segment_size=512 * 1024,
                                      free_ring=128)
            sb = cluster.open_session(b, f"s-{b}", segment_size=512 * 1024,
                                      free_ring=128)
            ch_a, _ = cluster.connect_sessions(sa, sb)

            def sender():
                offset = sa.alloc(size)
                yield from sa.write_segment(offset, bytes(size))
                for _ in range(n):
                    yield from sa.send(
                        SendDescriptor(channel=ch_a.ident, bufs=((offset, size),))
                    )

            def receiver():
                yield from sb.provide_receive_buffers(60)
                for _ in range(n):
                    desc = yield from sb.recv()
                    assert desc.length == size
                    yield from sb.repost_free(desc)
                done["count"] += 1

            return [sender(), receiver()]

        gens = []
        for a, b in pairs:
            gens.extend(make_pair(a, b))
        run(sim, *gens)
        assert done["count"] == 4
        for link in cluster.network.switch.output_links:
            assert link.cells_dropped == 0
