"""Communication segment: bounds, allocator invariants (property-based)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SegmentRangeError
from repro.core.segment import BUFFER_ALIGNMENT, CommSegment, align_up


class TestRawAccess:
    def test_write_read_roundtrip(self):
        seg = CommSegment(1024)
        seg.write(100, b"hello")
        assert seg.read(100, 5) == b"hello"

    def test_zero_initialized(self):
        seg = CommSegment(64)
        assert seg.read(0, 64) == bytes(64)

    def test_out_of_range_write(self):
        seg = CommSegment(64)
        with pytest.raises(SegmentRangeError):
            seg.write(60, b"too long")

    def test_out_of_range_read(self):
        seg = CommSegment(64)
        with pytest.raises(SegmentRangeError):
            seg.read(64, 1)

    def test_negative_offset(self):
        seg = CommSegment(64)
        with pytest.raises(SegmentRangeError):
            seg.read(-1, 2)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            CommSegment(0)


class TestAllocator:
    def test_alloc_returns_aligned(self):
        seg = CommSegment(1024)
        for _ in range(5):
            off = seg.alloc(13)
            assert off % BUFFER_ALIGNMENT == 0

    def test_alloc_free_reuse(self):
        seg = CommSegment(128)
        a = seg.alloc(64)
        b = seg.alloc(64)
        with pytest.raises(SegmentRangeError):
            seg.alloc(1)
        seg.free(a, 64)
        c = seg.alloc(64)
        assert c == a

    def test_free_merges_neighbours(self):
        seg = CommSegment(192)
        offs = [seg.alloc(64) for _ in range(3)]
        for off in offs:
            seg.free(off, 64)
        # after merging, a full-size allocation must succeed
        assert seg.alloc(192) == 0

    def test_double_free_detected(self):
        seg = CommSegment(128)
        a = seg.alloc(64)
        seg.free(a, 64)
        with pytest.raises(SegmentRangeError):
            seg.free(a, 64)

    def test_exhaustion_message(self):
        seg = CommSegment(64)
        seg.alloc(64)
        with pytest.raises(SegmentRangeError, match="exhausted"):
            seg.alloc(8)

    def test_alloc_validation(self):
        seg = CommSegment(64)
        with pytest.raises(ValueError):
            seg.alloc(0)

    def test_free_bytes(self):
        seg = CommSegment(128)
        assert seg.free_bytes == 128
        seg.alloc(40)  # rounds to 40 (already aligned)
        assert seg.free_bytes == 88

    @given(
        st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=30)
    )
    @settings(max_examples=50)
    def test_alloc_never_overlaps(self, sizes):
        """Property: live allocations never overlap and stay in bounds."""
        seg = CommSegment(8192)
        live = []
        for size in sizes:
            try:
                off = seg.alloc(size)
            except SegmentRangeError:
                continue
            for other_off, other_size in live:
                a0, a1 = off, off + align_up(size)
                b0, b1 = other_off, other_off + align_up(other_size)
                assert a1 <= b0 or b1 <= a0, "overlapping allocations"
            assert off + size <= seg.size
            live.append((off, size))

    @given(
        st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=20)
    )
    @settings(max_examples=50)
    def test_full_free_restores_capacity(self, sizes):
        """Property: freeing everything returns the segment to one block."""
        seg = CommSegment(16384)
        live = []
        for size in sizes:
            live.append((seg.alloc(size), size))
        for off, size in live:
            seg.free(off, size)
        assert seg.free_bytes == seg.size
        assert seg.alloc(seg.size) == 0


class TestAlignUp:
    @pytest.mark.parametrize(
        "value,expected", [(0, 0), (1, 8), (8, 8), (9, 16), (4160, 4160)]
    )
    def test_align_up(self, value, expected):
        assert align_up(value) == expected
