"""Error-path segment-buffer leaks (found by simflow, fixed in PR 7).

Each test injects a failure into a send path mid-flight and asserts
the transient buffer is returned to the segment allocator instead of
leaking.  The script-level fixes (bench/micro, benchmarks/, examples/)
are regression-covered statically by
``tests/analysis/flow/test_typestate.py::test_real_tree_is_clean``.
"""

import pytest

from repro.core import UNetCluster
from repro.sim import Simulator


def build(emulated=False):
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    sa = cluster.open_session("alice", "pa", emulated=emulated)
    sb = cluster.open_session("bob", "pb", emulated=emulated)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    return sim, cluster, sa, sb, ch_a, ch_b


class TestSendCopyErrorPath:
    def test_failed_write_frees_the_transient_buffer(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        segment = sa.endpoint.segment
        before = segment.live_allocations

        def boom(offset, data):
            raise RuntimeError("injected write failure")

        sa.write_segment = boom
        done = []

        def sender():
            with pytest.raises(RuntimeError, match="injected"):
                yield from sa.send_copy(ch_a.ident, bytes(4096))
            done.append(True)

        sim.process(sender())
        sim.run(until=1e6)
        assert done == [True]
        assert segment.live_allocations == before

    def test_successful_send_still_frees(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        segment = sa.endpoint.segment
        before = segment.live_allocations

        def pump():
            yield from sb.provide_receive_buffers(4)
            yield from sa.send_copy(ch_a.ident, bytes(4096))

        sim.process(pump())
        sim.run(until=1e6)
        assert segment.live_allocations == before


class TestEmulatedForwardErrorPath:
    def test_failed_forward_frees_the_kernel_bounce_buffer(self):
        sim, cluster, sa, sb, ch_a, ch_b = build(emulated=True)
        emu = cluster.agents["alice"].emulation
        real_segment = emu.real.segment
        before = real_segment.live_allocations

        original_write = real_segment.write

        def boom(offset, data):
            raise RuntimeError("injected kernel copy failure")

        real_segment.write = boom

        def sender():
            yield from sa.send_copy(ch_a.ident, bytes(4096))

        sim.process(sender())
        with pytest.raises(RuntimeError, match="injected"):
            sim.run(until=1e6)
        real_segment.write = original_write
        assert real_segment.live_allocations == before
