"""Channel/endpoint teardown paths and in-flight traffic behaviour."""

import pytest

from repro.core import ChannelError, ProtectionError, SendDescriptor, UNetCluster
from repro.sim import Simulator

from tests.core.conftest import run


class TestDisconnect:
    def test_traffic_stops_after_disconnect(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair

        def exchange():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"1"))
            yield from sb.recv()

        run(sim, exchange())
        cluster.directory.disconnect(ch_a, "procA")
        with pytest.raises(ProtectionError):
            sa.endpoint.post_send(
                SendDescriptor(channel=ch_a.ident, inline=b"2"), "procA"
            )

    def test_disconnect_requires_owner(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        with pytest.raises(ProtectionError):
            cluster.directory.disconnect(ch_a, "someone-else")

    def test_in_flight_cells_after_teardown_are_unrouted(self, pair, sim):
        """Cells already on the wire when the circuit closes are dropped
        at the switch, not delivered to a stale endpoint."""
        cluster, sa, sb, ch_a, ch_b = pair

        def sender():
            yield from sa.send_copy(ch_a.ident, bytes(4000))

        sim.process(sender())
        # past the compose+post (~90 us) but well before the ~260 us of
        # cell serialization completes: cells are on the wire
        sim.run(until=sim.now + 150.0)
        cluster.directory.disconnect(ch_a, "procA")
        sim.run(until=sim.now + 1e6)
        assert cluster.network.switch.cells_unrouted > 0
        assert sb.endpoint.messages_received == 0

    def test_reconnect_after_disconnect(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        cluster.directory.disconnect(ch_a, "procA")
        ch_a2, ch_b2 = cluster.connect_sessions(sa, sb)
        got = {}

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a2.ident, inline=b"again"))

        def receiver():
            desc = yield from sb.recv()
            got["data"] = desc.inline

        run(sim, sender(), receiver())
        assert got["data"] == b"again"


class TestEndpointDestroy:
    def test_destroy_closes_channels_on_both_sides(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        cluster.agent("alice").destroy_endpoint(sa.endpoint, "procA")
        assert sa.endpoint.destroyed
        assert not ch_a.open

    def test_destroy_frees_the_mux_slot(self, pair, sim):
        cluster, sa, sb, ch_a, ch_b = pair
        mux = cluster.hosts["alice"].ni.mux
        assert ch_a.rx_vci in mux
        cluster.agent("alice").destroy_endpoint(sa.endpoint, "procA")
        assert ch_a.rx_vci not in mux


class TestDirectoryServiceLifecycle:
    def test_withdrawn_service_rejects_connect(self, sim):
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        cluster.directory.withdraw("svc", "pb")
        with pytest.raises(ChannelError, match="unknown service"):
            cluster.directory.connect(sa.endpoint, "svc", "pa")

    def test_connect_to_destroyed_service(self, sim):
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa")
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        cluster.agent("bob").destroy_endpoint(sb.endpoint, "pb")
        with pytest.raises(ChannelError, match="destroyed"):
            cluster.directory.connect(sa.endpoint, "svc", "pa")

    def test_withdraw_requires_owner(self, sim):
        cluster = UNetCluster.pair(sim)
        sb = cluster.open_session("bob", "pb")
        cluster.directory.advertise("svc", sb.endpoint, "pb")
        with pytest.raises(ProtectionError):
            cluster.directory.withdraw("svc", "pa")
