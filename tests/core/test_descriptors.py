"""Descriptor invariants, including the single-cell inline limit."""

import pytest

from repro.core.descriptors import (
    SINGLE_CELL_MAX,
    FreeDescriptor,
    RecvDescriptor,
    SendDescriptor,
)


class TestSendDescriptor:
    def test_inline_length(self):
        d = SendDescriptor(channel=1, inline=b"abcd")
        assert d.length == 4
        assert not d.injected

    def test_scatter_gather_length(self):
        d = SendDescriptor(channel=1, bufs=((0, 100), (200, 50)))
        assert d.length == 150

    def test_inline_limit_is_single_cell(self):
        """40 bytes + 8-byte AAL5 trailer = exactly one cell."""
        SendDescriptor(channel=1, inline=bytes(SINGLE_CELL_MAX))
        with pytest.raises(ValueError):
            SendDescriptor(channel=1, inline=bytes(SINGLE_CELL_MAX + 1))

    def test_inline_and_bufs_mutually_exclusive(self):
        with pytest.raises(ValueError):
            SendDescriptor(channel=1, inline=b"x", bufs=((0, 10),))

    def test_bad_buffer_rejected(self):
        with pytest.raises(ValueError):
            SendDescriptor(channel=1, bufs=((-1, 10),))
        with pytest.raises(ValueError):
            SendDescriptor(channel=1, bufs=((0, 0),))

    def test_empty_inline_allowed(self):
        assert SendDescriptor(channel=1, inline=b"").length == 0


class TestRecvDescriptor:
    def test_inline_flag(self):
        assert RecvDescriptor(channel=1, length=4, inline=b"abcd").is_inline
        assert not RecvDescriptor(channel=1, length=4, bufs=((0, 4),)).is_inline


class TestFreeDescriptor:
    def test_valid(self):
        fd = FreeDescriptor(offset=0, length=4160)
        assert fd.length == 4160

    def test_invalid(self):
        with pytest.raises(ValueError):
            FreeDescriptor(offset=-1, length=10)
        with pytest.raises(ValueError):
            FreeDescriptor(offset=0, length=0)


class TestSingleCellConstant:
    def test_value_matches_paper(self):
        """§8: 'the round-trip latency for messages smaller than 40
        bytes is about 65 usec' -- 40 bytes is the single-cell payload."""
        assert SINGLE_CELL_MAX == 40
