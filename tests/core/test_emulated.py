"""Kernel-emulated endpoints (§3.5): same interface, slower path."""

import pytest

from repro.core import SendDescriptor, UNetCluster
from repro.core.kernel_agent import ResourceLimits
from repro.sim import Simulator

from tests.core.conftest import run


def build(emulated=True):
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    sa = cluster.open_session("alice", "pa", emulated=emulated)
    sb = cluster.open_session("bob", "pb", emulated=emulated)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    return sim, cluster, sa, sb, ch_a, ch_b


def ping_once(sim, sa, sb, ch_a, ch_b, size=32):
    payload = bytes(size)
    out = {}

    def pinger():
        yield from sa.provide_receive_buffers(4)
        t0 = sim.now
        yield from sa.send_copy(ch_a.ident, payload)
        desc = yield from sa.recv()
        out["rtt"] = sim.now - t0
        out["data"] = sa.peek_payload(desc)

    def ponger():
        yield from sb.provide_receive_buffers(4)
        desc = yield from sb.recv()
        yield from sb.send_copy(ch_b.ident, sb.peek_payload(desc))

    run(sim, pinger(), ponger())
    return out


class TestEmulatedTransfer:
    def test_small_message_roundtrip(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        out = ping_once(sim, sa, sb, ch_a, ch_b)
        assert out["data"] == bytes(32)

    def test_large_message_roundtrip(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        payload = bytes(range(256)) * 16  # 4 KB
        got = {}

        def sender():
            yield from sa.send_copy(ch_a.ident, payload)

        def receiver():
            yield from sb.provide_receive_buffers(4)
            desc = yield from sb.recv()
            got["data"] = yield from sb.recv_payload(desc)

        run(sim, sender(), receiver())
        assert got["data"] == payload

    def test_emulated_to_regular_interop(self):
        """An emulated endpoint can talk to a regular one."""
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa", emulated=True)
        sb = cluster.open_session("bob", "pb")  # regular
        ch_a, ch_b = cluster.connect_sessions(sa, sb)
        got = {}

        def sender():
            yield from sa.send(SendDescriptor(channel=ch_a.ident, inline=b"mix"))

        def receiver():
            desc = yield from sb.recv()
            got["data"] = desc.inline

        run(sim, sender(), receiver())
        assert got["data"] == b"mix"


class TestEmulatedPerformance:
    def test_emulated_slower_than_regular(self):
        """§3.5: emulated endpoints 'cannot offer the same level of
        performance'."""
        sim_e, *rest_e = build(emulated=True)
        rtt_e = ping_once(sim_e, *rest_e[1:])["rtt"]
        sim_r, *rest_r = build(emulated=False)
        rtt_r = ping_once(sim_r, *rest_r[1:])["rtt"]
        assert rtt_e > rtt_r + 30.0  # kernel crossings dominate

    def test_emulated_consumes_no_ni_resources(self):
        """§3.5: emulated endpoints consume no additional NI resources:
        only the kernel's single real endpoint is attached."""
        sim, cluster, sa, sb, ch_a, ch_b = build()
        ni = cluster.hosts["alice"].ni
        assert len(ni.endpoints) == 1  # just the kernel's multiplexing endpoint
        assert ni.endpoints[0].owner == "<kernel>"

    def test_emulated_not_counted_against_endpoint_limit(self):
        sim = Simulator()
        cluster = UNetCluster.pair(
            sim, limits=ResourceLimits(max_endpoints=1, max_pinned_bytes=10**7)
        )
        agent = cluster.agent("alice")
        # the kernel's real endpoint takes the single regular slot...
        for _ in range(3):
            agent.create_endpoint("p", emulated=True)
        # ...and three emulated endpoints were still created
        assert sum(1 for e in agent.endpoints if e.emulated) == 3


class TestEmulatedLifecycle:
    def test_destroy_emulated_endpoint(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        agent = cluster.agent("alice")
        cluster.directory.disconnect(ch_a, "pa")
        agent.destroy_endpoint(sa.endpoint, "pa")
        assert sa.endpoint.destroyed
        assert sa.endpoint not in agent.endpoints

    def test_disconnect_unregisters_real_tag(self):
        sim, cluster, sa, sb, ch_a, ch_b = build()
        mux_a = cluster.hosts["alice"].ni.mux
        assert ch_a.rx_vci in mux_a
        cluster.directory.disconnect(ch_a, "pa")
        assert ch_a.rx_vci not in mux_a
        assert not ch_a.open
        assert not ch_b.open
