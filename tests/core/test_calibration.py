"""Calibration tests: the simulated stack must reproduce the paper's
headline measurements (shape and approximate magnitude).

Tolerances are deliberately loose (typically 10-15%) -- the substrate is
a simulator, not the authors' testbed -- but the *relationships* the
paper emphasizes are asserted tightly (who is faster, where crossovers
fall).
"""

import pytest

from repro.atm.aal5 import aal5_limit_bandwidth
from repro.bench import (
    fore_interface_stats,
    raw_bandwidth,
    raw_rtt,
    sba100_cost_breakup,
)


class TestSba200Latency:
    def test_single_cell_rtt_is_65us(self):
        """§4.2.3: 'The round-trip time is 65 us for a one-cell message'."""
        r = raw_rtt(32, n=6)
        assert r.mean_us == pytest.approx(65.0, rel=0.05)

    def test_rtt_flat_up_to_40_bytes(self):
        r0 = raw_rtt(0, n=4)
        r40 = raw_rtt(40, n=4)
        assert r40.mean_us - r0.mean_us < 5.0

    def test_multicell_starts_near_120us(self):
        """§4.2.3: 'Longer messages start at 120 us for 48 bytes'."""
        r = raw_rtt(48, n=4)
        assert r.mean_us == pytest.approx(120.0, rel=0.10)

    def test_per_cell_increment_near_6us(self):
        """§4.2.3: '...and cost roughly an extra 6 us per additional
        cell (i.e., 48 bytes)'."""
        r1 = raw_rtt(96, n=4)
        r2 = raw_rtt(96 + 480, n=4)  # 10 more cells
        per_cell = (r2.mean_us - r1.mean_us) / 10
        assert per_cell == pytest.approx(6.0, rel=0.25)

    def test_signal_adds_30us_per_end(self):
        """§4.2.3: signals instead of polling add ~30 us on each end."""
        poll = raw_rtt(32, n=4).mean_us
        signal = raw_rtt(32, n=4, signal_wakeup=True).mean_us
        assert signal - poll == pytest.approx(60.0, abs=6.0)

    def test_single_cell_optimization_matters(self):
        """Ablation: without the fast path, small messages pay the full
        buffer-management cost."""
        fast = raw_rtt(32, n=4).mean_us
        slow = raw_rtt(32, n=4, single_cell_optimization=False).mean_us
        assert slow > fast + 25.0


class TestSba200Bandwidth:
    def test_saturation_at_800_bytes(self):
        """§4.2.3/Figure 4: 'with packet sizes as low as 800 bytes, the
        fiber can be saturated'."""
        bw = raw_bandwidth(800)
        limit = aal5_limit_bandwidth(800, 140e6)
        assert bw.bytes_per_second / limit > 0.95
        assert bw.losses == 0

    def test_below_saturation_at_200_bytes(self):
        bw = raw_bandwidth(200)
        limit = aal5_limit_bandwidth(200, 140e6)
        assert bw.bytes_per_second / limit < 0.85

    def test_bandwidth_monotone_through_ramp(self):
        sizes = [100, 300, 500, 800]
        rates = [raw_bandwidth(s).bytes_per_second for s in sizes]
        assert rates == sorted(rates)

    def test_4k_packets_near_fiber_limit(self):
        """Table 3: Raw AAL5 at 4 KB ~ 120 Mbit/s."""
        bw = raw_bandwidth(4096)
        mbits = bw.bytes_per_second * 8 / 1e6
        assert mbits > 110.0


class TestSba100:
    def test_table1_breakup(self):
        """Table 1: 21 + 7 + 5 = 33 us one-way."""
        t = sba100_cost_breakup()
        assert t["trap_level_one_way_us"] == pytest.approx(21.0, rel=0.05)
        assert t["send_overhead_aal5_us"] == pytest.approx(7.0, rel=0.05)
        assert t["recv_overhead_aal5_us"] == pytest.approx(5.0, rel=0.10)
        assert t["total_one_way_us"] == pytest.approx(33.0, rel=0.05)

    def test_crc_fractions(self):
        """§4.1: CRC is 33% of send and ~40% of receive AAL5 overhead."""
        t = sba100_cost_breakup()
        assert t["send_crc_fraction"] == pytest.approx(0.33, abs=0.03)
        assert t["recv_crc_fraction"] == pytest.approx(0.40, abs=0.05)

    def test_rtt_near_66us(self):
        """§4.1: 'The end-to-end round trip time of a single-cell
        message is 66 us.'"""
        t = sba100_cost_breakup()
        assert t["measured_rtt_us"] == pytest.approx(66.0, rel=0.10)

    def test_bandwidth_limited_near_6_8MBps(self):
        """§4.1: 'the bandwidth is limited to 6.8 MBytes/s for packets
        of 1 KByte.'"""
        t = sba100_cost_breakup()
        assert t["measured_bw_1k_bytes_per_s"] == pytest.approx(6.8e6, rel=0.10)


class TestForeFirmware:
    def test_rtt_near_160us(self):
        """§4.2.1: 'The measured round-trip time was approximately 160 us'."""
        s = fore_interface_stats()
        assert s["rtt_us"] == pytest.approx(160.0, rel=0.08)

    def test_bandwidth_near_13MBps(self):
        """§4.2.1: 'maximum bandwidth ... using 4 KByte packets was
        13 Mbytes/sec'."""
        s = fore_interface_stats()
        assert s["bw_4k_bytes_per_s"] == pytest.approx(13e6, rel=0.12)

    def test_unet_beats_fore_firmware_3x(self):
        """§4.2.1: Fore's RTT is ~3x the SBA-100's 66 us and ~2.5x
        U-Net's 65 us."""
        fore = fore_interface_stats()["rtt_us"]
        unet = raw_rtt(32, n=4).mean_us
        assert fore / unet > 2.0


class TestCrossImplementationShape:
    def test_latency_ordering(self):
        """U-Net/SBA-200 ~ SBA-100 << Fore firmware."""
        sba200 = raw_rtt(32, n=4).mean_us
        sba100 = raw_rtt(32, n=4, ni_kind="sba100").mean_us
        fore = raw_rtt(32, n=4, ni_kind="fore").mean_us
        assert sba200 < sba100 < fore

    def test_bandwidth_ordering_at_1k(self):
        """SBA-200 saturates; SBA-100 is PIO-bound; both documented."""
        sba200 = raw_bandwidth(1024).bytes_per_second
        sba100 = raw_bandwidth(1024, ni_kind="sba100").bytes_per_second
        assert sba200 > 2 * sba100
