"""Stateful property tests on core data structures (hypothesis)."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.errors import SegmentRangeError
from repro.core.queues import DescriptorRing
from repro.core.segment import CommSegment, align_up
from repro.sim import Simulator


class SegmentAllocatorMachine(RuleBasedStateMachine):
    """Random alloc/free/write sequences must preserve the allocator's
    invariants: no overlap, no loss of capacity, data isolation."""

    def __init__(self):
        super().__init__()
        self.segment = CommSegment(16 * 1024)
        self.live = {}  # offset -> (length, fill byte)
        self.counter = 0

    @rule(size=st.integers(1, 600))
    def alloc(self, size):
        try:
            offset = self.segment.alloc(size)
        except SegmentRangeError:
            return
        self.counter = (self.counter + 1) % 255 or 1
        self.segment.write(offset, bytes([self.counter]) * size)
        self.live[offset] = (size, self.counter)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_one(self, data):
        offset = data.draw(st.sampled_from(sorted(self.live)))
        size, _ = self.live.pop(offset)
        self.segment.free(offset, size)

    @invariant()
    def no_overlaps(self):
        spans = sorted(
            (off, off + align_up(size)) for off, (size, _) in self.live.items()
        )
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0, "allocations overlap"

    @invariant()
    def data_is_isolated(self):
        for offset, (size, fill) in self.live.items():
            assert self.segment.read(offset, size) == bytes([fill]) * size

    @invariant()
    def accounting_consistent(self):
        used = sum(align_up(size) for size, _ in self.live.values())
        assert self.segment.free_bytes == self.segment.size - used


TestSegmentAllocator = SegmentAllocatorMachine.TestCase
TestSegmentAllocator.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)


class RingMachine(RuleBasedStateMachine):
    """The descriptor ring is an exact bounded FIFO."""

    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.ring = DescriptorRing(self.sim, capacity=8)
        self.model = []
        self.next_item = 0

    @rule()
    def push(self):
        ok = self.ring.push(self.next_item)
        if len(self.model) < 8:
            assert ok
            self.model.append(self.next_item)
        else:
            assert not ok  # back-pressure, never silent overwrite
        self.next_item += 1

    @rule()
    def pop(self):
        got = self.ring.pop()
        if self.model:
            assert got == self.model.pop(0)
        else:
            assert got is None

    @rule()
    def drain(self):
        assert self.ring.drain() == self.model
        self.model.clear()

    @invariant()
    def length_matches(self):
        assert len(self.ring) == len(self.model)
        assert self.ring.is_empty == (not self.model)
        assert self.ring.is_full == (len(self.model) == 8)

    @invariant()
    def peek_matches(self):
        expected = self.model[0] if self.model else None
        assert self.ring.peek() == expected


TestRing = RingMachine.TestCase
TestRing.settings = settings(max_examples=40, stateful_step_count=50, deadline=None)
