"""Mux registration and demultiplexing."""

import pytest

from repro.core import ChannelError, Mux
from repro.core.endpoint import Channel, Endpoint
from repro.sim import Simulator


def make_channel(rx_vci=40, ident=1):
    ep = Endpoint(Simulator(), name="ep", owner="me", segment_size=1024)
    return Channel(ident=ident, endpoint=ep, tx_vci=39, rx_vci=rx_vci, peer_host="p")


class TestMux:
    def test_register_and_demux(self):
        mux = Mux()
        ch = make_channel(rx_vci=50)
        mux.register(ch)
        assert mux.demux(50) is ch
        assert 50 in mux
        assert len(mux) == 1

    def test_unknown_tag_counts_unmatched(self):
        mux = Mux()
        assert mux.demux(99) is None
        assert mux.unmatched == 1

    def test_duplicate_tag_rejected(self):
        mux = Mux()
        mux.register(make_channel(rx_vci=50))
        with pytest.raises(ChannelError):
            mux.register(make_channel(rx_vci=50, ident=2))

    def test_unregister(self):
        mux = Mux()
        ch = make_channel(rx_vci=50)
        mux.register(ch)
        mux.unregister(ch)
        assert mux.demux(50) is None

    def test_unregister_wrong_channel(self):
        mux = Mux()
        ch = make_channel(rx_vci=50)
        mux.register(ch)
        impostor = make_channel(rx_vci=50, ident=7)
        with pytest.raises(ChannelError):
            mux.unregister(impostor)

    def test_multiple_channels(self):
        mux = Mux()
        channels = [make_channel(rx_vci=40 + i, ident=i) for i in range(5)]
        for ch in channels:
            mux.register(ch)
        for i, ch in enumerate(channels):
            assert mux.demux(40 + i) is ch
