"""Descriptor ring semantics: back-pressure, events, drain."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queues import DescriptorRing
from repro.sim import Simulator


def ring(capacity=4, **kwargs):
    return DescriptorRing(Simulator(), capacity, **kwargs)


class TestBasics:
    def test_fifo_order(self):
        r = ring(8)
        for i in range(5):
            assert r.push(i)
        assert [r.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_empty_returns_none(self):
        assert ring().pop() is None

    def test_peek_does_not_consume(self):
        r = ring()
        r.push("x")
        assert r.peek() == "x"
        assert len(r) == 1

    def test_back_pressure_on_full(self):
        """§3.1: a full ring rejects the push instead of blocking."""
        r = ring(2)
        assert r.push(1) and r.push(2)
        assert not r.push(3)
        assert r.rejected == 1
        assert len(r) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ring(0)
        with pytest.raises(ValueError):
            DescriptorRing(Simulator(), 4, almost_full_fraction=0.0)

    def test_counters(self):
        r = ring(4)
        r.push(1)
        r.push(2)
        r.pop()
        assert (r.pushed, r.popped) == (2, 1)


class TestEvents:
    def test_wait_nonempty_immediate(self):
        sim = Simulator()
        r = DescriptorRing(sim, 4)
        r.push(1)
        assert r.wait_nonempty().triggered

    def test_wait_nonempty_deferred(self):
        sim = Simulator()
        r = DescriptorRing(sim, 4)
        ev = r.wait_nonempty()
        assert not ev.triggered
        r.push(1)
        assert ev.triggered

    def test_wait_almost_full(self):
        sim = Simulator()
        r = DescriptorRing(sim, 4, almost_full_fraction=0.75)
        ev = r.wait_almost_full()
        r.push(1)
        r.push(2)
        assert not ev.triggered
        r.push(3)  # 3 >= ceil(4*0.75)
        assert ev.triggered

    def test_wait_space(self):
        sim = Simulator()
        r = DescriptorRing(sim, 2)
        r.push(1)
        r.push(2)
        ev = r.wait_space()
        assert not ev.triggered
        r.pop()
        assert ev.triggered

    def test_waiters_fire_once(self):
        sim = Simulator()
        r = DescriptorRing(sim, 4)
        ev = r.wait_nonempty()
        r.push(1)
        r.push(2)  # must not re-trigger the one-shot event
        assert ev.triggered


class TestDrain:
    def test_drain_returns_all(self):
        r = ring(8)
        for i in range(5):
            r.push(i)
        assert r.drain() == [0, 1, 2, 3, 4]
        assert r.is_empty

    def test_drain_empty(self):
        assert ring().drain() == []

    def test_drain_wakes_space_waiters(self):
        sim = Simulator()
        r = DescriptorRing(sim, 2)
        r.push(1)
        r.push(2)
        ev = r.wait_space()
        r.drain()
        assert ev.triggered


class TestAlmostFullLevel:
    @given(st.integers(1, 64), st.floats(0.1, 1.0))
    @settings(max_examples=40)
    def test_level_always_valid(self, capacity, fraction):
        r = DescriptorRing(Simulator(), capacity, almost_full_fraction=fraction)
        assert 1 <= r.almost_full_level <= capacity

    def test_is_almost_full_tracks_level(self):
        r = ring(10, almost_full_fraction=0.5)
        for _ in range(4):
            r.push("x")
        assert not r.is_almost_full
        r.push("x")
        assert r.is_almost_full
