"""Shared fixtures for core-layer tests."""

import pytest

from repro.core import UNetCluster
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def pair(sim):
    """Two-host SBA-200 cluster with connected sessions."""
    cluster = UNetCluster.pair(sim)
    sa = cluster.open_session("alice", "procA")
    sb = cluster.open_session("bob", "procB")
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    return cluster, sa, sb, ch_a, ch_b


def run(sim, *gens):
    """Run generator processes to completion and return them."""
    procs = [sim.process(g) for g in gens]
    sim.run(until=sim.now + 1e9)  # relative: the sim may have run before
    for p in procs:
        assert not p.is_alive, "process did not complete"
    return procs
