"""Protection-model tests (§3.2): processes cannot interfere with each
other's endpoints, segments, queues, or channels."""

import pytest

from repro.core import ProtectionError, SendDescriptor, UNetCluster, UNetSession
from repro.sim import Simulator

from tests.core.conftest import run


@pytest.fixture
def multi_proc_cluster():
    """Two processes on one host, each with its own endpoint, plus a
    third process on a second host."""
    sim = Simulator()
    cluster = UNetCluster(sim, [("hostA", 60.0), ("hostB", 60.0)])
    s1 = cluster.open_session("hostA", "proc1")
    s2 = cluster.open_session("hostA", "proc2")
    s3 = cluster.open_session("hostB", "proc3")
    return sim, cluster, s1, s2, s3


class TestSameHostIsolation:
    def test_cannot_touch_other_process_endpoint(self, multi_proc_cluster):
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        with pytest.raises(ProtectionError):
            s2.endpoint.recv_poll("proc1")

    def test_cannot_send_on_other_process_channel(self, multi_proc_cluster):
        """proc2 cannot inject traffic into proc1's channel even though
        both endpoints live on the same host and NI."""
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        ch1, ch3 = cluster.connect_sessions(s1, s3)
        # proc2's endpoint has no channel with that id
        with pytest.raises(ProtectionError):
            s2.endpoint.post_send(
                SendDescriptor(channel=ch1.ident, inline=b"spoof"), "proc2"
            )

    def test_session_requires_ownership(self, multi_proc_cluster):
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        with pytest.raises(ProtectionError):
            UNetSession(cluster.hosts["hostA"], s1.endpoint, "proc2")


class TestTrafficIsolation:
    def test_two_channel_pairs_do_not_cross(self, multi_proc_cluster):
        """proc1<->proc3 and proc2<->proc3 traffic stays separated even
        though it crosses the same NIs and switch."""
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        s3b = cluster.open_session("hostB", "proc3")  # second endpoint
        ch1, ch3_from1 = cluster.connect_sessions(s1, s3)
        ch2, ch3b_from2 = cluster.connect_sessions(s2, s3b)
        got = {"ep3": [], "ep3b": []}

        def sender(session, channel, tag):
            yield from session.send(
                SendDescriptor(channel=channel.ident, inline=tag)
            )

        def receiver(session, key):
            desc = yield from session.recv()
            got[key].append(desc.inline)

        run(
            sim,
            sender(s1, ch1, b"one"),
            sender(s2, ch2, b"two"),
            receiver(s3, "ep3"),
            receiver(s3b, "ep3b"),
        )
        assert got["ep3"] == [b"one"]
        assert got["ep3b"] == [b"two"]

    def test_unregistered_tag_is_not_delivered(self, multi_proc_cluster):
        """Cells arriving with a tag the kernel never registered are
        counted as unmatched and never reach any endpoint."""
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        ch1, ch3 = cluster.connect_sessions(s1, s3)
        # Tear down the receive side registration behind the scenes,
        # simulating a stale/forged tag.
        cluster.hosts["hostB"].ni.mux.unregister(ch3)

        def sender():
            yield from s1.send(SendDescriptor(channel=ch1.ident, inline=b"x"))

        run(sim, sender())
        sim.run(until=1e9)
        assert cluster.hosts["hostB"].ni.mux.unmatched == 1
        assert s3.endpoint.recv_poll("proc3") is None

    def test_channel_identifies_origin(self, multi_proc_cluster):
        """Received descriptors carry the channel id, so the application
        can trust the origin without parsing the payload (§3.2)."""
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        s1b = cluster.open_session("hostA", "proc1b")
        ch1, ch3_a = cluster.connect_sessions(s1, s3)
        ch1b, ch3_b = cluster.connect_sessions(s1b, s3)
        got = []

        def sender(session, channel):
            yield from session.send(
                SendDescriptor(channel=channel.ident, inline=b"hi")
            )

        def receiver():
            for _ in range(2):
                desc = yield from s3.recv()
                got.append(desc.channel)

        run(sim, sender(s1, ch1), sender(s1b, ch1b), receiver())
        assert sorted(got) == sorted([ch3_a.ident, ch3_b.ident])


class TestSegmentIsolation:
    def test_segments_are_disjoint_objects(self, multi_proc_cluster):
        sim, cluster, s1, s2, s3 = multi_proc_cluster
        s1.endpoint.segment.write(0, b"secret")
        assert s2.endpoint.segment.read(0, 6) == bytes(6)
