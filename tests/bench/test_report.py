"""Table/Series formatting helpers."""

import pytest

from repro.bench.report import Series, Table, format_bandwidth, format_us, print_figure


class TestTable:
    def test_renders_rows_and_notes(self):
        table = Table("My Table", ["A", "B"])
        table.add_row("x", 1)
        table.add_row("yy", 22)
        table.add_note("a note")
        text = str(table)
        assert "My Table" in text
        assert "x" in text and "22" in text
        assert "note: a note" in text

    def test_column_count_enforced(self):
        table = Table("T", ["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_empty_table_renders(self):
        assert "T" in str(Table("T", ["A"]))

    def test_alignment_pads_columns(self):
        table = Table("T", ["col", "x"])
        table.add_row("short", 1)
        table.add_row("a much longer cell", 2)
        lines = str(table).splitlines()
        data_lines = [l for l in lines if "|" in l]
        assert len({len(l) for l in data_lines}) == 1


class TestSeries:
    def test_add_and_lookup(self):
        s = Series("curve")
        s.add(1.0, 10.0)
        s.add(2.0, 20.0)
        assert s.y_at(2.0) == 20.0

    def test_missing_x_raises(self):
        s = Series("curve")
        s.add(1.0, 10.0)
        with pytest.raises(ValueError):
            s.y_at(9.0)

    def test_print_figure(self):
        s = Series("c1")
        s.add(1, 2)
        out = print_figure("Fig", [s], "x", "y")
        assert "Fig" in out and "c1" in out


class TestFormatters:
    def test_format_us(self):
        assert "us" in format_us(12.345)

    def test_format_bandwidth(self):
        text = format_bandwidth(15_000_000)
        assert "15.00 MB/s" in text
        assert "120.0 Mbit/s" in text


class TestAsciiChart:
    def _series(self):
        from repro.bench.report import Series

        s = Series("curve")
        for x, y in [(1, 10), (10, 50), (100, 90)]:
            s.add(x, y)
        return s

    def test_renders_grid_and_legend(self):
        from repro.bench.report import ascii_chart

        out = ascii_chart([self._series()])
        assert "curve" in out
        assert "*" in out
        assert "+-" in out  # axis

    def test_empty_series(self):
        from repro.bench.report import Series, ascii_chart

        assert ascii_chart([Series("e")]) == "(no data)"

    def test_log_x(self):
        from repro.bench.report import ascii_chart

        out = ascii_chart([self._series()], log_x=True)
        assert "(log x)" in out

    def test_flat_series_does_not_crash(self):
        from repro.bench.report import Series, ascii_chart

        s = Series("flat")
        s.add(1, 5.0)
        s.add(2, 5.0)
        assert "flat" in ascii_chart([s])

    def test_multiple_markers(self):
        from repro.bench.report import Series, ascii_chart

        a, b = self._series(), Series("other")
        b.add(1, 20)
        out = ascii_chart([a, b])
        assert "o other" in out
