"""Phase-boundary checkpointing: fork/serial identity, keying, and the
persistent warm-snapshot store."""

import pickle

import pytest

from repro.bench import cache, checkpoint, parallel
from repro.sim import Simulator, batch

POINTS = [2.0, 5.0, 11.0]


def _build_warm():
    """Cheap deterministic warm world: a self-rescheduling counter run
    to its phase boundary."""
    sim = Simulator()
    state = {"n": 0}

    def tick():
        state["n"] += 1
        if sim.now < 200.0:
            sim.schedule_callback(1.0, tick)

    sim.schedule_callback(0.0, tick)
    sim.run(until=50.0)
    return sim, state


def _run_point(world, extra):
    sim, state = world
    sim.run(until=sim.now + extra)
    return (state["n"], sim.now.hex(), sim.events_processed)


def test_fork_and_serial_sweeps_are_identical():
    serial = checkpoint.sweep(_build_warm, _run_point, POINTS, use_fork=False)
    assert len(serial) == len(POINTS)
    # monotone: a longer suffix sees at least as many ticks
    assert serial[0][0] < serial[-1][0]
    if not parallel.fork_available():
        pytest.skip("os.fork not usable here")
    forked = checkpoint.sweep(_build_warm, _run_point, POINTS, use_fork=True)
    assert forked == serial


def test_fork_leaves_parent_world_pristine():
    if not parallel.fork_available():
        pytest.skip("os.fork not usable here")
    world = _build_warm()
    warm_n, warm_now = world[1]["n"], world[0].now
    results = [
        checkpoint._run_forked(world, _run_point, p) for p in POINTS
    ]
    # every child saw the same warm state; the parent never advanced
    assert world[1]["n"] == warm_n
    assert world[0].now == warm_now
    assert results == checkpoint.sweep(
        _build_warm, _run_point, POINTS, use_fork=False
    )


def test_sweep_counters_and_empty_points():
    checkpoint.reset_counters()
    assert checkpoint.sweep(_build_warm, _run_point, []) == []
    assert (checkpoint.forked_points, checkpoint.rebuilt_points) == (0, 0)
    checkpoint.sweep(_build_warm, _run_point, POINTS, use_fork=False)
    assert checkpoint.rebuilt_points == len(POINTS)
    checkpoint.reset_counters()


def test_kill_switch_disables_fork(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_CHECKPOINT", "0")
    assert not checkpoint.enabled()
    checkpoint.reset_counters()
    checkpoint.sweep(_build_warm, _run_point, POINTS)  # use_fork=None
    assert checkpoint.forked_points == 0
    assert checkpoint.rebuilt_points == len(POINTS)
    checkpoint.reset_counters()


# --------------------------------------------------------------------------
# Snapshot keying: anything that could change the warm world changes the key
# --------------------------------------------------------------------------

def test_snapshot_key_varies_with_tag_and_params():
    base = checkpoint.snapshot_key("fig3", {"warmup": 400})
    assert checkpoint.snapshot_key("fig3", {"warmup": 401}) != base
    assert checkpoint.snapshot_key("fig4", {"warmup": 400}) != base
    assert checkpoint.snapshot_key("fig3", {"warmup": 400}) == base


def test_snapshot_key_invalidated_by_source_digest(monkeypatch):
    base = checkpoint.snapshot_key("fig3", {"warmup": 400})
    monkeypatch.setattr(cache, "source_digest", lambda: "0" * 64)
    assert checkpoint.snapshot_key("fig3", {"warmup": 400}) != base


def test_snapshot_key_invalidated_by_batch_config():
    with batch.use_batching(True):
        on = checkpoint.snapshot_key("fig3", {"warmup": 400})
    with batch.use_batching(False):
        off = checkpoint.snapshot_key("fig3", {"warmup": 400})
    assert on != off


def test_snapshot_key_invalidated_by_schema(monkeypatch):
    base = checkpoint.snapshot_key("fig3", {"warmup": 400})
    monkeypatch.setattr(checkpoint, "CHECKPOINT_SCHEMA", 999)
    assert checkpoint.snapshot_key("fig3", {"warmup": 400}) != base


# --------------------------------------------------------------------------
# Persistent snapshot store
# --------------------------------------------------------------------------

TICKS = []


def _count(tag):
    TICKS.append(tag)


def _build_store_world():
    sim = Simulator()
    for i, delay in enumerate([60.0, 70.0, 80.0]):
        sim.schedule_callback(delay, _count, i)
    sim.run(until=55.0)
    return sim


@pytest.fixture
def tmp_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_SIM_CHECKPOINT", raising=False)
    TICKS.clear()
    yield


def test_warm_world_stores_then_loads(tmp_store):
    key = checkpoint.snapshot_key("store-test", {"v": 1})
    assert checkpoint.load_snapshot(key) is None

    built = checkpoint.warm_world("store-test", {"v": 1}, _build_store_world)
    assert built.now == 55.0
    assert (checkpoint.snapshot_dir() / f"{key}.pkl").exists()

    loaded = checkpoint.warm_world(
        "store-test", {"v": 1}, lambda: pytest.fail("should hit the store")
    )
    assert loaded.now == 55.0
    loaded.run()
    assert TICKS == [0, 1, 2]
    assert loaded.now == 80.0


def test_load_snapshot_unlinks_corrupt_entries(tmp_store):
    key = "0" * 64
    directory = checkpoint.snapshot_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.pkl"
    path.write_bytes(b"not a pickle")
    assert checkpoint.load_snapshot(key) is None
    assert not path.exists()


def test_store_snapshot_refuses_event_worlds(tmp_store):
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)

    sim.process(proc(), name="p")
    # pending Event entries cannot snapshot: the engine's typed error
    # propagates and no blob (not even a temp file) is left behind
    from repro.sim.engine import SimulationError

    with pytest.raises(SimulationError, match="pending Event"):
        checkpoint.store_snapshot("e" * 64, sim)
    assert not (checkpoint.snapshot_dir() / ("e" * 64 + ".pkl")).exists()
    leftovers = list(checkpoint.snapshot_dir().glob("*.tmp"))
    assert leftovers == []