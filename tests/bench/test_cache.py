"""Content-addressed sweep cache: keying, hit/miss, invalidation."""

import pickle

import pytest

from repro.bench import cache, parallel_map
from repro.sim import engine

#: call log for the module-level sweep function (serial workers only)
CALLS = []


def _square(x):
    CALLS.append(x)
    return x * x


def _cube(x):
    return x * x * x


@pytest.fixture
def tmp_cache(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    monkeypatch.setenv("REPRO_BENCH_PROCS", "1")  # keep CALLS in-process
    cache.reset_counters()
    CALLS.clear()
    yield cache_dir
    cache.reset_counters()
    cache.invalidate_source_digest()


def test_miss_compute_store_then_hit(tmp_cache):
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert CALLS == [1, 2, 3]
    assert (cache.misses, cache.stores, cache.hits) == (3, 3, 0)
    CALLS.clear()
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert CALLS == []  # pure hits: nothing recomputed
    assert cache.hits == 3


def test_partial_hits_preserve_order(tmp_cache):
    parallel_map(_square, [2])
    CALLS.clear()
    assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]
    assert CALLS == [1, 3]  # only the misses ran, results still in order


def test_key_varies_by_fn_params_and_core(tmp_cache):
    base = cache.cache_key(_square, 3)
    assert cache.cache_key(_square, 3) == base
    assert cache.cache_key(_square, 4) != base
    assert cache.cache_key(_cube, 3) != base
    with engine.use_core("heap"):
        assert cache.cache_key(_square, 3) != base


def test_key_varies_by_batch_config(tmp_cache):
    # Batched and scalar runs are bit-identical by contract, but their
    # results must never alias in the cache (PR 6 shard-count bug class)
    from repro.sim import batch

    with batch.use_batching(True):
        on = cache.cache_key(_square, 3)
    with batch.use_batching(False):
        off = cache.cache_key(_square, 3)
    assert on != off


def test_key_varies_by_checkpoint_schema(tmp_cache, monkeypatch):
    from repro.bench import checkpoint

    base = cache.cache_key(_square, 3)
    monkeypatch.setattr(checkpoint, "CHECKPOINT_SCHEMA", 999)
    assert cache.cache_key(_square, 3) != base


def test_canonical_params_are_stable():
    assert cache._canonical(0.1) == (0.1).hex()
    assert cache._canonical({"b": 1, "a": 2.5}) == cache._canonical(
        dict([("a", 2.5), ("b", 1)])
    )
    assert cache._canonical([1, "x"]) != cache._canonical((1, "x"))
    assert cache._canonical(1) != cache._canonical(1.0)


def test_source_edit_invalidates_key(tmp_cache, tmp_path, monkeypatch):
    pkg = tmp_path / "fake_pkg"
    pkg.mkdir()
    source = pkg / "model.py"
    source.write_text("RATE = 1\n")
    monkeypatch.setattr(cache, "_PKG_ROOT", pkg)
    cache.invalidate_source_digest()
    before = cache.cache_key(_square, 3)
    source.write_text("RATE = 2\n")
    cache.invalidate_source_digest()
    after = cache.cache_key(_square, 3)
    assert before != after


def test_disabled_by_env(tmp_cache, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
    assert not cache.enabled()
    parallel_map(_square, [5])
    parallel_map(_square, [5])
    assert CALLS == [5, 5]  # recomputed both times
    assert not list(tmp_cache.glob("*.pkl"))


def test_disabled_under_instrumentation(tmp_cache):
    assert cache.enabled()
    engine.set_instrumentation(lambda: object(), None)
    try:
        assert not cache.enabled()
    finally:
        engine.set_instrumentation(None, None)
    assert cache.enabled()


def test_corrupt_entry_is_a_miss(tmp_cache):
    key = cache.cache_key(_square, 7)
    cache.store(key, 49)
    (tmp_cache / f"{key}.pkl").write_bytes(b"not a pickle")
    hit, value = cache.lookup(key)
    assert (hit, value) == (False, None)
    parallel_map(_square, [7])  # recomputes and heals the entry
    assert CALLS == [7]
    assert pickle.loads((tmp_cache / f"{key}.pkl").read_bytes()) == 49


def test_store_is_atomic_and_clear_removes(tmp_cache):
    for i in range(4):
        cache.store(cache.cache_key(_square, i), i * i)
    entries = list(tmp_cache.glob("*.pkl"))
    assert len(entries) == 4
    assert not list(tmp_cache.glob("*.tmp"))  # no torn temp files left
    assert cache.clear() == 4
    assert not list(tmp_cache.glob("*.pkl"))
    assert cache.clear() == 0  # idempotent, also fine on empty/missing dir


def test_truncated_entry_is_unlinked_not_served(tmp_cache):
    key = cache.cache_key(_square, 9)
    cache.store(key, 81)
    path = tmp_cache / f"{key}.pkl"
    path.write_bytes(path.read_bytes()[:2])  # writer died mid-file
    hit, value = cache.lookup(key)
    assert (hit, value) == (False, None)
    assert not path.exists()  # the torn file is gone, not retried forever


def test_unwritable_dir_declines_service_but_still_computes(
    tmp_path, monkeypatch
):
    # A regular file where the cache dir's parent should be makes
    # mkdir() fail even for root (chmod is a no-op under
    # CAP_DAC_OVERRIDE, so permission bits cannot model this).
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(blocker / "cache"))
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    monkeypatch.setenv("REPRO_BENCH_PROCS", "1")
    cache.reset_counters()
    CALLS.clear()
    cache._writable_probe.clear()
    try:
        assert not cache.enabled()  # declined, no exception raised
        assert parallel_map(_square, [1, 2]) == [1, 4]
        assert CALLS == [1, 2]  # computed straight through, uncached
        assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)
        # the verdict is memoized: repeated sweeps do not re-probe
        assert cache._writable_probe[str(blocker / "cache")] is False
    finally:
        cache._writable_probe.clear()
        cache.reset_counters()


def test_writable_probe_leaves_no_droppings(tmp_cache):
    assert cache.enabled()
    assert not list(tmp_cache.glob("*.tmp"))
    assert not list(tmp_cache.glob(".probe*"))


def test_key_varies_by_shard_count(tmp_cache):
    base = cache.cache_key(_square, 3)
    with engine.use_shards(2):
        sharded = cache.cache_key(_square, 3)
    assert sharded != base
    with engine.use_shards(1):
        assert cache.cache_key(_square, 3) == base


def test_sweep_workers_budgets_around_shards(monkeypatch):
    from repro.bench import parallel

    monkeypatch.delenv("REPRO_BENCH_PROCS", raising=False)
    monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
    assert parallel.sweep_workers() == 8
    with engine.use_shards(4):
        assert parallel.sweep_workers() == 2  # 8-CPU budget / 4 shards
    with engine.use_shards(3):
        assert parallel.sweep_workers() == 2  # floor division
    with engine.use_shards(16):
        assert parallel.sweep_workers() == 1  # never below one
    # an explicit override is taken literally, shards or not
    monkeypatch.setenv("REPRO_BENCH_PROCS", "6")
    with engine.use_shards(4):
        assert parallel.sweep_workers() == 6
    monkeypatch.setenv("REPRO_BENCH_PROCS", "garbage")
    assert parallel.sweep_workers() == 1
