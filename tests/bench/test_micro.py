"""Smoke and shape tests for the micro-benchmark helpers themselves."""

import pytest

from repro.bench import raw_bandwidth, raw_rtt
from repro.bench.uam import uam_single_cell_rtt, uam_store_bandwidth


class TestRawRtt:
    def test_deterministic(self):
        a = raw_rtt(32, n=4)
        b = raw_rtt(32, n=4)
        assert a.samples == b.samples

    def test_steady_state(self):
        """Deterministic simulation: every iteration identical."""
        r = raw_rtt(32, n=5)
        assert max(r.samples) - min(r.samples) < 0.01
        assert r.min_us == pytest.approx(r.mean_us)

    def test_size_recorded(self):
        assert raw_rtt(100, n=3).size == 100

    def test_all_ni_kinds(self):
        for kind in ("sba200", "sba100", "fore", "direct"):
            r = raw_rtt(16, n=3, ni_kind=kind)
            assert r.mean_us > 0

    def test_slower_hosts_slower_rtt(self):
        """Clock scaling reaches end-to-end numbers (SS-10 vs SS-20)."""
        fast = raw_rtt(32, n=3, mhz=60.0).mean_us
        slow = raw_rtt(32, n=3, mhz=50.0).mean_us
        assert slow > fast


class TestRawBandwidth:
    def test_lossless(self):
        assert raw_bandwidth(1024).losses == 0

    def test_message_count_scales_down_for_large(self):
        big = raw_bandwidth(8000)
        small = raw_bandwidth(100)
        assert big.messages < small.messages

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            raw_bandwidth(0)


class TestUamBenchHelpers:
    def test_rtt_size_cap(self):
        with pytest.raises(ValueError):
            uam_single_cell_rtt(33)

    def test_store_bandwidth_no_retransmissions(self):
        r = uam_store_bandwidth(2048)
        assert r.retransmissions == 0
        assert r.bytes_per_second > 10e6
