"""Link serialization, propagation, loss, and queueing tests."""

import pytest

from repro.atm.cell import Cell
from repro.atm.link import TAXI_140_BPS, Link
from repro.sim import Simulator


def make_cell(vci=1, last=False):
    return Cell(vci=vci, payload=bytes(48), last=last)


CELL_US = 53 * 8 / TAXI_140_BPS * 1e6  # ~3.03 us


class TestLink:
    def test_single_cell_timing(self):
        sim = Simulator()
        link = Link(sim, propagation_us=0.5)
        arrivals = []
        link.connect(lambda c: arrivals.append(sim.now))
        link.send(make_cell())
        sim.run()
        assert arrivals == [pytest.approx(CELL_US + 0.5)]

    def test_back_to_back_serialization(self):
        """N cells take N serialization times: the link is a pipe, not a
        teleporter."""
        sim = Simulator()
        link = Link(sim, propagation_us=0.0)
        arrivals = []
        link.connect(lambda c: arrivals.append(sim.now))
        for _ in range(5):
            link.send(make_cell())
        sim.run()
        assert arrivals == [pytest.approx(CELL_US * (i + 1)) for i in range(5)]

    def test_bandwidth_scales(self):
        sim = Simulator()
        slow = Link(sim, bandwidth_bps=TAXI_140_BPS / 2, propagation_us=0.0)
        arrivals = []
        slow.connect(lambda c: arrivals.append(sim.now))
        slow.send(make_cell())
        sim.run()
        assert arrivals == [pytest.approx(CELL_US * 2)]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, queue_cells=2)
        link.connect(lambda c: None)
        sent = [link.send(make_cell()) for _ in range(5)]
        # first goes to the pump quickly, but at t=0 all 5 are enqueued
        assert sent.count(False) >= 1
        assert link.cells_dropped >= 1

    def test_blocking_put(self):
        sim = Simulator()
        link = Link(sim, queue_cells=1, propagation_us=0.0)
        delivered = []
        link.connect(lambda c: delivered.append(sim.now))

        def producer():
            for _ in range(3):
                yield link.put(make_cell())
            return sim.now

        p = sim.process(producer())
        sim.run()
        assert len(delivered) == 3
        assert p.value > 0.0  # producer was paced by the wire

    def test_loss_function(self):
        sim = Simulator()
        dropped = {"n": 0}

        def drop_every_other(cell):
            dropped["n"] += 1
            return dropped["n"] % 2 == 0

        link = Link(sim, loss_fn=drop_every_other)
        arrivals = []
        link.connect(lambda c: arrivals.append(c))
        for _ in range(6):
            link.send(make_cell())
        sim.run()
        assert len(arrivals) == 3
        assert link.cells_dropped == 3

    def test_no_sink_raises(self):
        sim = Simulator()
        link = Link(sim)
        link.send(make_cell())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_counters(self):
        sim = Simulator()
        link = Link(sim)
        link.connect(lambda c: None)
        for _ in range(4):
            link.send(make_cell())
        sim.run()
        assert link.cells_sent == 4
        assert link.bytes_sent == 4 * 53

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, propagation_us=-1)
        with pytest.raises(ValueError):
            Link(sim).set_queue_capacity(0)

    def test_order_preserved(self):
        sim = Simulator()
        link = Link(sim)
        got = []
        link.connect(lambda c: got.append(c.seq))
        for i in range(10):
            link.send(Cell(vci=1, payload=bytes(48), seq=i))
        sim.run()
        assert got == list(range(10))
