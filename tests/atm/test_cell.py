"""ATM cell invariants."""

import pytest

from repro.atm.cell import ATM_CELL_SIZE, ATM_PAYLOAD_SIZE, Cell


class TestCell:
    def test_valid_cell(self):
        cell = Cell(vci=100, payload=bytes(48))
        assert cell.wire_bytes == ATM_CELL_SIZE == 53
        assert not cell.last

    def test_payload_must_be_48(self):
        with pytest.raises(ValueError):
            Cell(vci=1, payload=bytes(47))
        with pytest.raises(ValueError):
            Cell(vci=1, payload=bytes(49))

    def test_vci_range(self):
        with pytest.raises(ValueError):
            Cell(vci=-1, payload=bytes(48))
        with pytest.raises(ValueError):
            Cell(vci=0x10000, payload=bytes(48))
        Cell(vci=0xFFFF, payload=bytes(48))  # boundary OK

    def test_with_vci_translation(self):
        """Switch-side VCI relabelling keeps payload, last-bit, seq."""
        original = Cell(vci=5, payload=bytes(range(48)), last=True, seq=3)
        relabelled = original.with_vci(77)
        assert relabelled.vci == 77
        assert relabelled.payload == original.payload
        assert relabelled.last and relabelled.seq == 3
        assert original.vci == 5  # untouched

    def test_payload_size_constant(self):
        assert ATM_PAYLOAD_SIZE == 48
