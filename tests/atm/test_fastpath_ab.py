"""A/B equivalence: cell-train fast path vs. per-cell simulation.

The analytic fast path in :mod:`repro.atm.link` must be *bit-identical*
to the per-cell path it replaces — same delivery timestamps, same cell
ordering, same sender completion times — or every figure in the paper
reproduction silently shifts.  These tests pin that equivalence at the
link level, through the switch, and end-to-end through the benchmark
harness.
"""

import pytest

import repro.atm.link as linkmod
from repro.atm.aal5 import segment_pdu
from repro.atm.network import AtmNetwork
from repro.sim import Simulator


def _run_frame(fast_path, payload=bytes(4000)):
    """Push one AAL5 frame a->b; return (deliveries, done_time, link)."""
    sim = Simulator()
    net = AtmNetwork(sim, n_ports=2)
    pa = net.attach("a")
    pb = net.attach("b")
    pair = net.open_virtual_circuit("a", "b")
    pa.tx_link.fast_path = fast_path

    got = []
    pb.set_rx_sink(lambda cell: got.append((sim.now, cell.vci, cell.seq)))

    def producer():
        yield pa.tx_link.put_train(segment_pdu(payload, pair.tx))
        return sim.now

    p = sim.process(producer())
    sim.run()
    return got, p.value, pa.tx_link


class TestLinkLevelEquivalence:
    def test_delivery_timestamps_bit_identical(self):
        fast, fast_done, fast_link = _run_frame(True)
        slow, slow_done, slow_link = _run_frame(False)
        assert len(fast) == len(slow) > 1
        # Exact float equality, not approx: the fast path computes the
        # same absolute finish times the per-cell path would.
        assert fast == slow
        assert fast_done == slow_done
        # The fast path really was exercised: whole trains, not cells.
        assert fast_link.trains_sent == 1
        assert slow_link.trains_sent == 0
        assert fast_link.cells_sent == slow_link.cells_sent

    def test_every_cell_delivered_both_paths(self):
        payload = bytes(range(256)) * 8
        expected = len(segment_pdu(payload, 42))
        for fast_path in (True, False):
            got, _, _ = _run_frame(fast_path, payload)
            assert len(got) == expected

    def test_single_cell_frame_never_trains(self):
        # A one-cell PDU takes the per-cell path even with fast_path on.
        got, _, link = _run_frame(True, payload=b"x")
        assert len(got) == 1
        assert link.trains_sent == 0


class TestContendingTrains:
    def _contend(self, fast_path):
        """Two hosts blast frames at the same destination port."""
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=3)
        pa = net.attach("a")
        pb = net.attach("b")
        pc = net.attach("c")
        pair_ac = net.open_virtual_circuit("a", "c")
        pair_bc = net.open_virtual_circuit("b", "c")
        pa.tx_link.fast_path = fast_path
        pb.tx_link.fast_path = fast_path

        got = []
        pc.set_rx_sink(lambda cell: got.append((sim.now, cell.vci, cell.seq)))

        def blast(port, vci):
            yield port.tx_link.put_train(segment_pdu(bytes(2000), vci))

        sim.process(blast(pa, pair_ac.tx))
        sim.process(blast(pb, pair_bc.tx))
        sim.run()
        return got

    def test_interleaving_at_contended_port_identical(self):
        assert self._contend(True) == self._contend(False)


class TestEndToEndEquivalence:
    @pytest.fixture
    def _flip_default(self, monkeypatch):
        def flip(value):
            monkeypatch.setattr(linkmod, "FAST_PATH_DEFAULT", value)

        return flip

    def test_raw_rtt_identical(self, _flip_default):
        from repro.bench import raw_rtt

        _flip_default(True)
        fast = raw_rtt(1024, n=4).mean_us
        _flip_default(False)
        slow = raw_rtt(1024, n=4).mean_us
        assert fast == slow

    def test_raw_bandwidth_identical(self, _flip_default):
        from repro.bench import raw_bandwidth

        _flip_default(True)
        fast = raw_bandwidth(2048).bytes_per_second
        _flip_default(False)
        slow = raw_bandwidth(2048).bytes_per_second
        assert fast == slow
