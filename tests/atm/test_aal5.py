"""AAL5 segmentation/reassembly tests, including loss behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atm.aal5 import (
    AAL5Error,
    Reassembler,
    aal5_limit_bandwidth,
    cells_for_pdu,
    reassemble_pdu,
    segment_pdu,
)
from repro.atm.cell import ATM_PAYLOAD_SIZE, Cell


class TestCellCount:
    @pytest.mark.parametrize(
        "length,cells",
        [
            (0, 1),
            (1, 1),
            (40, 1),  # 40 + 8 trailer = 48: the single-cell boundary
            (41, 2),
            (48, 2),
            (88, 2),
            (89, 3),
            (4096, 86),
        ],
    )
    def test_cells_for_pdu(self, length, cells):
        assert cells_for_pdu(length) == cells

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            cells_for_pdu(-1)

    @given(st.integers(0, 20000))
    def test_segment_matches_cells_for_pdu(self, length):
        cells = segment_pdu(bytes(length), vci=42)
        assert len(cells) == cells_for_pdu(length)


class TestRoundTrip:
    @given(st.binary(max_size=2000))
    @settings(max_examples=60)
    def test_segment_reassemble_identity(self, payload):
        cells = segment_pdu(payload, vci=7)
        assert reassemble_pdu(cells) == payload

    def test_last_flag_only_on_final_cell(self):
        cells = segment_pdu(bytes(500), vci=1)
        assert [c.last for c in cells] == [False] * (len(cells) - 1) + [True]

    def test_all_cells_carry_vci(self):
        cells = segment_pdu(bytes(100), vci=99)
        assert all(c.vci == 99 for c in cells)

    def test_payload_sizes_are_48(self):
        for cell in segment_pdu(bytes(333), vci=1):
            assert len(cell.payload) == ATM_PAYLOAD_SIZE

    def test_oversized_pdu_rejected(self):
        with pytest.raises(AAL5Error):
            segment_pdu(bytes(65536), vci=1)

    def test_empty_pdu(self):
        cells = segment_pdu(b"", vci=1)
        assert len(cells) == 1
        assert reassemble_pdu(cells) == b""


class TestLossDetection:
    def _cells(self, n_bytes=300):
        return segment_pdu(bytes(range(256)) + bytes(n_bytes - 256), vci=5)

    def test_dropped_middle_cell_detected(self):
        cells = self._cells()
        del cells[2]
        with pytest.raises(AAL5Error):
            reassemble_pdu(cells)

    def test_dropped_first_cell_detected(self):
        cells = self._cells()
        del cells[0]
        with pytest.raises(AAL5Error):
            reassemble_pdu(cells)

    def test_corrupted_byte_detected(self):
        cells = self._cells()
        bad = bytearray(cells[1].payload)
        bad[10] ^= 0xFF
        cells[1] = Cell(vci=5, payload=bytes(bad), last=False)
        with pytest.raises(AAL5Error):
            reassemble_pdu(cells)

    def test_no_cells_rejected(self):
        with pytest.raises(AAL5Error):
            reassemble_pdu([])

    @given(st.integers(0, 6))
    def test_any_single_drop_detected(self, idx):
        cells = self._cells()
        idx = idx % len(cells)
        del cells[idx]
        if not cells:
            return
        with pytest.raises(AAL5Error):
            reassemble_pdu(cells)


class TestReassembler:
    def test_interleaved_vcis(self):
        """Cells of different VCIs may interleave on the wire; per-VCI
        reassembly must keep them apart."""
        r = Reassembler()
        a = segment_pdu(b"A" * 100, vci=1)
        b = segment_pdu(b"B" * 100, vci=2)
        out = []
        for ca, cb in zip(a, b):
            out.append(r.push(ca))
            out.append(r.push(cb))
        done = [x for x in out if x is not None]
        assert sorted(done) == [b"A" * 100, b"B" * 100]
        assert r.completed_pdus == 2

    def test_crc_error_counted_and_dropped(self):
        r = Reassembler()
        cells = segment_pdu(bytes(200), vci=3)
        del cells[1]
        for cell in cells:
            result = r.push(cell)
        assert result is None
        assert r.crc_errors == 1
        assert r.completed_pdus == 0

    def test_recovers_after_error(self):
        r = Reassembler()
        bad = segment_pdu(bytes(200), vci=3)[1:]  # first cell lost
        for cell in bad:
            r.push(cell)
        good = segment_pdu(b"ok" * 30, vci=3)
        result = None
        for cell in good:
            result = r.push(cell)
        assert result == b"ok" * 30

    def test_runaway_pdu_overflow(self):
        r = Reassembler(max_cells=4)
        # last-cell marker never arrives: 9 cells, overflow fires at the
        # 5th push and the accumulated state is discarded.
        cells = segment_pdu(bytes(400), vci=1)
        for cell in cells[:-1]:
            r.push(cell)
        assert r.overflows == 1
        # Trailing cells of the runaway PDU start a new (doomed) partial;
        # it is cleaned up by the CRC check of the next real PDU.
        assert r.pending_cells(1) == 3
        good = segment_pdu(b"recover", vci=1)
        result = None
        for cell in good:
            result = r.push(cell)
        assert result is None  # merged with garbage -> CRC failure
        assert r.crc_errors == 1
        assert r.pending_cells(1) == 0

    def test_pending_cells(self):
        r = Reassembler()
        cells = segment_pdu(bytes(200), vci=9)
        r.push(cells[0])
        assert r.pending_cells(9) == 1
        assert r.pending_cells(8) == 0


class TestLimitCurve:
    def test_sawtooth_shape(self):
        """Figure 4's AAL-5 limit: efficiency dips right after each
        48-byte boundary."""
        just_fits = aal5_limit_bandwidth(40, 140e6)  # 1 cell
        overflow = aal5_limit_bandwidth(41, 140e6)  # 2 cells
        assert overflow < just_fits

    def test_asymptote(self):
        bw = aal5_limit_bandwidth(65000, 140e6)
        # approaches 48/53 * 17.5 MB/s = 15.85 MB/s
        assert bw == pytest.approx(15.85e6, rel=0.01)

    def test_zero_size(self):
        assert aal5_limit_bandwidth(0, 140e6) == 0.0

    def test_monotone_within_cell(self):
        # within one cell count, bigger payload = better efficiency
        assert aal5_limit_bandwidth(88, 140e6) > aal5_limit_bandwidth(50, 140e6)
