"""Switch routing, VCI translation, and contention tests."""

import pytest

from repro.atm.cell import Cell
from repro.atm.switch import Switch
from repro.sim import Simulator


def make_cell(vci, seq=0):
    return Cell(vci=vci, payload=bytes(48), seq=seq)


class TestRouting:
    def test_route_and_translate(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=4)
        sw.add_route(0, 100, 2, 200)
        got = []
        sw.output_links[2].connect(lambda c: got.append(c))
        for p in (0, 1, 3):
            if p != 2:
                sw.output_links[p].connect(lambda c: got.append(("wrong", c)))
        sw.input_sink(0)(make_cell(100))
        sim.run()
        assert len(got) == 1
        assert got[0].vci == 200

    def test_unrouted_cell_counted(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=2)
        for p in range(2):
            sw.output_links[p].connect(lambda c: None)
        sw.input_sink(0)(make_cell(999))
        sim.run()
        assert sw.cells_unrouted == 1
        assert sw.cells_switched == 0

    def test_same_vci_different_ports_independent(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=3)
        sw.add_route(0, 50, 1, 60)
        sw.add_route(1, 50, 2, 70)
        got = {1: [], 2: []}
        sw.output_links[1].connect(lambda c: got[1].append(c.vci))
        sw.output_links[2].connect(lambda c: got[2].append(c.vci))
        sw.output_links[0].connect(lambda c: None)
        sw.input_sink(0)(make_cell(50))
        sw.input_sink(1)(make_cell(50))
        sim.run()
        assert got[1] == [60]
        assert got[2] == [70]

    def test_duplicate_route_rejected(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=2)
        sw.add_route(0, 1, 1, 2)
        with pytest.raises(ValueError):
            sw.add_route(0, 1, 1, 3)

    def test_remove_route(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=2)
        sw.add_route(0, 1, 1, 2)
        assert sw.has_route(0, 1)
        sw.remove_route(0, 1)
        assert not sw.has_route(0, 1)

    def test_port_validation(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=2)
        with pytest.raises(ValueError):
            sw.add_route(0, 1, 5, 2)
        with pytest.raises(ValueError):
            sw.input_sink(9)
        with pytest.raises(ValueError):
            Switch(sim, n_ports=0)


class TestContention:
    def test_output_contention_serializes(self):
        """Two inputs feeding one output share its serialization."""
        sim = Simulator()
        sw = Switch(sim, n_ports=3, switching_latency_us=0.0, propagation_us=0.0)
        sw.add_route(0, 10, 2, 10)
        sw.add_route(1, 11, 2, 11)
        arrivals = []
        sw.output_links[2].connect(lambda c: arrivals.append(sim.now))
        for p in (0, 1):
            sw.output_links[p].connect(lambda c: None)
        sw.input_sink(0)(make_cell(10))
        sw.input_sink(1)(make_cell(11))
        sim.run()
        cell_us = 53 * 8 / 140e6 * 1e6
        assert arrivals[0] == pytest.approx(cell_us)
        assert arrivals[1] == pytest.approx(2 * cell_us)

    def test_output_queue_overflow_drops(self):
        sim = Simulator()
        sw = Switch(
            sim, n_ports=2, output_queue_cells=4, switching_latency_us=0.0
        )
        sw.output_links[1].connect(lambda c: None)
        sw.output_links[0].connect(lambda c: None)
        sw.add_route(0, 1, 1, 1)
        for _ in range(50):
            sw.input_sink(0)(make_cell(1))
        sim.run()
        assert sw.output_links[1].cells_dropped > 0

    def test_switching_latency_applied(self):
        sim = Simulator()
        sw = Switch(sim, n_ports=2, switching_latency_us=10.0, propagation_us=0.0)
        sw.add_route(0, 1, 1, 1)
        arrivals = []
        sw.output_links[1].connect(lambda c: arrivals.append(sim.now))
        sw.output_links[0].connect(lambda c: None)
        sw.input_sink(0)(make_cell(1))
        sim.run()
        cell_us = 53 * 8 / 140e6 * 1e6
        assert arrivals == [pytest.approx(10.0 + cell_us)]
