"""Topology/signalling tests for the star network."""

import pytest

from repro.atm.aal5 import segment_pdu
from repro.atm.network import FIRST_USER_VCI, AtmNetwork
from repro.sim import Simulator


class TestAttachment:
    def test_attach_and_lookup(self):
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=3)
        port = net.attach("hostA")
        assert net.port("hostA") is port
        assert net.port_names == ["hostA"]

    def test_duplicate_name_rejected(self):
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=3)
        net.attach("hostA")
        with pytest.raises(ValueError):
            net.attach("hostA")

    def test_out_of_ports(self):
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=1)
        net.attach("a")
        with pytest.raises(ValueError):
            net.attach("b")


class TestVirtualCircuits:
    def _pair(self):
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=2)
        net.attach("a")
        net.attach("b")
        return sim, net

    def test_vci_allocation_starts_above_reserved(self):
        sim, net = self._pair()
        pair = net.open_virtual_circuit("a", "b")
        assert pair.tx >= FIRST_USER_VCI
        assert pair.rx >= FIRST_USER_VCI
        assert pair.tx != pair.rx

    def test_full_duplex_delivery(self):
        sim, net = self._pair()
        pair = net.open_virtual_circuit("a", "b")
        got = {"a": [], "b": []}
        net.port("a").set_rx_sink(lambda c: got["a"].append(c.vci))
        net.port("b").set_rx_sink(lambda c: got["b"].append(c.vci))
        for cell in segment_pdu(b"to-b", pair.tx):
            net.port("a").send_cell(cell)
        for cell in segment_pdu(b"to-a", pair.rx):
            net.port("b").send_cell(cell)
        sim.run()
        assert got["b"] == [pair.tx]
        assert got["a"] == [pair.rx]

    def test_self_connection_rejected(self):
        sim, net = self._pair()
        with pytest.raises(ValueError):
            net.open_virtual_circuit("a", "a")

    def test_close_removes_routes(self):
        sim, net = self._pair()
        pair = net.open_virtual_circuit("a", "b")
        net.close_virtual_circuit("a", "b", pair)
        got = []
        net.port("b").set_rx_sink(lambda c: got.append(c))
        for cell in segment_pdu(b"x", pair.tx):
            net.port("a").send_cell(cell)
        sim.run()
        assert got == []
        assert net.switch.cells_unrouted == 1

    def test_reversed_pair(self):
        sim, net = self._pair()
        pair = net.open_virtual_circuit("a", "b")
        rev = pair.reversed()
        assert rev.tx == pair.rx and rev.rx == pair.tx

    def test_distinct_circuits_get_distinct_vcis(self):
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=3)
        for n in "abc":
            net.attach(n)
        p1 = net.open_virtual_circuit("a", "b")
        p2 = net.open_virtual_circuit("a", "c")
        assert len({p1.tx, p1.rx, p2.tx, p2.rx}) == 4

    def test_cell_time(self):
        sim = Simulator()
        net = AtmNetwork(sim, n_ports=2)
        assert net.cell_time_us() == pytest.approx(53 * 8 / 140e6 * 1e6)
