"""CRC-32 and Internet checksum tests (verified against known vectors)."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.atm.crc import crc32_aal5, crc32_finish, crc32_update, internet_checksum


class TestCrc32:
    def test_known_vector(self):
        # The canonical CRC-32 check value for "123456789".
        assert crc32_aal5(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32_aal5(b"") == 0

    def test_matches_zlib(self):
        for data in (b"hello", b"\x00" * 48, bytes(range(256))):
            assert crc32_aal5(data) == zlib.crc32(data)

    @given(st.binary(max_size=500))
    def test_matches_zlib_property(self, data):
        assert crc32_aal5(data) == zlib.crc32(data)

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 199))
    def test_incremental_equals_oneshot(self, data, split):
        split = split % len(data)
        running = crc32_update(data[:split])
        running = crc32_update(data[split:], running)
        assert crc32_finish(running) == crc32_aal5(data)

    @given(st.binary(min_size=1, max_size=100), st.integers(0, 99), st.integers(0, 7))
    def test_detects_single_bit_flip(self, data, pos, bit):
        pos = pos % len(data)
        corrupted = bytearray(data)
        corrupted[pos] ^= 1 << bit
        assert crc32_aal5(bytes(corrupted)) != crc32_aal5(data)


class TestInternetChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\xff") == internet_checksum(b"\xff\x00")

    def test_all_zero(self):
        assert internet_checksum(b"\x00" * 10) == 0xFFFF

    @given(st.binary(max_size=300))
    def test_verification_sums_to_zero(self, data):
        """Appending the checksum makes the total checksum zero -- the
        receiver-side verification rule."""
        csum = internet_checksum(data)
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        with_csum = padded + csum.to_bytes(2, "big")
        assert internet_checksum(with_csum) == 0

    @given(st.binary(min_size=2, max_size=100))
    def test_detects_byte_swap_of_unequal_bytes(self, data):
        if data[0] != data[1]:
            swapped = bytes([data[1], data[0]]) + data[2:]
            # 16-bit one's complement detects reordering within a word.
            assert internet_checksum(swapped) != internet_checksum(data)
