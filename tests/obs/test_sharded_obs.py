"""Cross-shard observability: sharded span collection, merge, parity.

Three layers of evidence:

* **engine routing regression** — ``obs.collecting()`` under
  ``use_shards(n > 1)`` must keep the *sharded* engine (per-shard
  monitored timelines feeding one collector), not silently collapse to
  the single-core monitored class and record a trace whose timeline no
  longer matches the engine under test.  That silent drop was the old
  behaviour; these tests pin the fix.
* **attribution parity** — the sharded engine is bit-identical in
  simulated time, so fig3 per-layer attribution at 2 and 4 shards must
  equal the single-core breakdown to < 1e-6 us (the CI gate).
* **mp span shipping** — worker processes ship their span tails at
  round boundaries; the merged trace carries both shards' spans, and a
  duplicate (shard, sid) raises the typed :class:`PartialTraceError`
  rather than silently merging a torn trace.
"""

import json
import os

import pytest

from repro import obs
from repro.obs.spans import GID_SHIFT, PartialTraceError, SpanCollector, SpanMerger
from repro.sim import Simulator, engine
from repro.sim.shard import ShardContext, run_partitioned
from repro.sim.shard.errors import ShardCrashError
from repro.sim.shard.sharded import ShardedSimulator


# --------------------------------------------------------------------------
# Engine routing under obs (the pinned regression)
# --------------------------------------------------------------------------

def test_collecting_keeps_the_sharded_engine():
    """Regression: obs + shards>1 used to collapse to the single-core
    monitored engine, silently recording a partial/mismatched trace."""
    with obs.collecting() as col:
        with engine.use_shards(2):
            sim = Simulator()
        assert isinstance(sim, ShardedSimulator)
        assert sim.stats()["core"] == "sharded-heap-monitored"
        log = []
        with sim.shard_scope(0):
            sim.schedule_callback(1.0, lambda: log.append("a"))
        with sim.shard_scope(1):
            sim.schedule_callback(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b"]
    assert col.executed_callbacks == 2


def test_sharded_spans_carry_their_shard_tag():
    with obs.collecting() as col:
        with engine.use_shards(2):
            sim = Simulator()

        def emit(shard):
            col2 = obs.active
            col2.add_complete(sim.now, sim.now + 1.0, "work", "test")

        with sim.shard_scope(0):
            sim.schedule_callback(1.0, emit, 0)
        with sim.shard_scope(1):
            sim.schedule_callback(2.0, emit, 1)
        sim.run()
    assert [s.shard for s in col.spans] == [0, 1]


def test_race_detector_stays_shard_blind():
    """The race detector's monitor is not shard-aware; arming it must
    keep the legacy collapse (one monitored timeline) rather than run
    an engine it cannot model."""
    from repro.sim.engine import _MonitoredSimulator

    class _Mon:
        def on_schedule(self, seq, when, target):
            return seq

        def on_execute(self, *a):
            pass

        def on_step_done(self, *a):
            pass

    engine.set_instrumentation(lambda: _Mon())
    try:
        with engine.use_shards(2):
            sim = Simulator()
        assert isinstance(sim, _MonitoredSimulator)
    finally:
        engine.set_instrumentation(None)


# --------------------------------------------------------------------------
# Attribution parity (sharded == single-core, the CI gate)
# --------------------------------------------------------------------------

@pytest.mark.parametrize("n_shards", [2, 4])
def test_fig3_attribution_parity_across_shards(n_shards):
    from repro.obs import report

    base, _ = report.run_fig3(n=4, shards=1)
    sharded, col = report.run_fig3(n=4, shards=n_shards)
    base_layers = base["attribution"]["layers_us"]
    sharded_layers = sharded["attribution"]["layers_us"]
    assert set(base_layers) == set(sharded_layers)
    for layer, us in base_layers.items():
        assert abs(sharded_layers[layer] - us) < 1e-6, layer
    assert (
        abs(
            sharded["attribution"]["mean_window_us"]
            - base["attribution"]["mean_window_us"]
        )
        < 1e-6
    )
    # the trace genuinely spread over the shards (fig3 has fewer
    # span-emitting components than 4 shards, so subset, not equality)
    shards_seen = {s.shard for s in col.spans}
    assert len(shards_seen) >= 2
    assert shards_seen <= set(range(n_shards))


def test_fig3_report_has_percentiles_section():
    from repro.obs import report

    doc, _ = report.run_fig3(n=4)
    pct = doc["percentiles"]
    rtt = pct["rtt_us"]
    assert rtt["p50"] <= rtt["p99"] <= rtt["p999"]
    assert set(pct["layers_us"]) == set(doc["attribution"]["layers_us"])
    assert doc["tracer_records_dropped"] == 0
    # the metrics registry rode along: exact-percentile RTT histogram
    assert "rtt_us" in doc["metrics"]["histograms"]


def test_report_warns_on_tracer_records_dropped():
    from repro.obs import report as report_mod

    doc, _ = report_mod.run_fig3(n=4)
    assert "WARNING" not in report_mod.format_report(doc)
    doc["tracer_records_dropped"] = 7
    out = report_mod.format_report(doc)
    assert "WARNING" in out and "7" in out


# --------------------------------------------------------------------------
# Span merger (mp-mode trace stitching)
# --------------------------------------------------------------------------

def _span_dicts(shard, n=2):
    col = SpanCollector()
    col.shard = shard
    for i in range(n):
        col.add_complete(float(i), float(i) + 0.5, f"s{i}", "test")
    return [s.to_dict() for s in col.spans]


def test_merger_rebases_spans_and_resolves_parents():
    dest = SpanCollector()
    merger = SpanMerger(dest)
    src = SpanCollector()
    src.shard = 1
    parent = src.begin(0.0, "outer", "test")
    child = src.begin(1.0, "inner", "test")
    src.end(child, 2.0)
    src.end(parent, 3.0)
    merger.merge(1, [s.to_dict() for s in src.spans])
    assert merger.link() == 0
    by_name = {s.name: s for s in dest.spans}
    assert by_name["inner"].parent is by_name["outer"]
    assert by_name["inner"].shard == 1


def test_merger_duplicate_span_raises_partial_trace_error():
    dest = SpanCollector()
    merger = SpanMerger(dest)
    spans = _span_dicts(shard=1)
    merger.merge(1, spans)
    with pytest.raises(PartialTraceError):
        merger.merge(1, spans)


# --------------------------------------------------------------------------
# mp-mode span shipping through the coordinator
# --------------------------------------------------------------------------

def _span_emitting_builder(ctx: ShardContext, island: int, spec):
    sim = ctx.sim

    def emit():
        col = obs.active
        if col is not None:
            col.add_complete(sim.now, sim.now + 1.0, f"island{island}", "test")

    sim.schedule_callback(1.0 + island, emit)

    def finalize():
        return {island: sim.events_processed}

    return finalize


def test_mp_run_ships_spans_from_every_shard():
    with obs.collecting() as col:
        results = run_partitioned(
            _span_emitting_builder, 2, 2, mode="mp", timeout_s=60.0
        )
    emitted = [s for s in col.spans if s.name.startswith("island")]
    assert {s.shard for s in emitted} == {0, 1}
    coord = results["__coordinator__"]["obs"]
    assert coord["spans_merged"] >= 2
    assert coord["xshard_unresolved"] == 0
    assert coord["efficiency"]["parallel_efficiency"] >= 0.0
    assert len(coord["exec_wall_s"]) == 2


def _span_then_crash_builder(ctx: ShardContext, island: int, spec):
    sim = ctx.sim

    def work():
        col = obs.active
        if col is not None:
            col.add_complete(sim.now, sim.now + 1.0, "doomed", "test")
        if island == 1:
            raise RuntimeError("mid-run kaboom")

    sim.schedule_callback(5.0, work)

    def finalize():
        return {}

    return finalize


def test_shard_crash_carries_flight_recorder_dump(tmp_path):
    """Satellite: a crashing worker dumps its flight ring and the typed
    error carries the dump path; the dump replays as valid Perfetto."""
    with obs.collecting(flight=64):
        with pytest.raises(ShardCrashError) as info:
            run_partitioned(
                _span_then_crash_builder, 2, 2, mode="mp", timeout_s=60.0
            )
    err = info.value
    assert err.shard == 1
    assert err.dump_path, "crash must carry the flight dump path"
    assert err.dump_path in str(err)
    assert os.path.exists(err.dump_path)
    doc = json.loads(open(err.dump_path).read())
    assert "traceEvents" in doc
    names = {e.get("name") for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert "doomed" in names
    os.unlink(err.dump_path)


def test_crash_without_flight_recorder_has_empty_dump_path():
    with obs.collecting():  # no flight ring armed
        with pytest.raises(ShardCrashError) as info:
            run_partitioned(
                _span_then_crash_builder, 2, 2, mode="mp", timeout_s=60.0
            )
    assert info.value.dump_path == ""


def test_span_gid_packs_shard_and_sid():
    from repro.obs.spans import span_gid

    gid = span_gid(3, 12345)
    assert gid >> GID_SHIFT == 4  # shard + 1: 0 stays the null sentinel
    assert gid & ((1 << GID_SHIFT) - 1) == 12345
    assert span_gid(0, 1) != 0
