"""Span lifecycle, causal propagation across the engine, zero-overhead off."""

import pytest

from repro import obs
from repro.obs.spans import SpanCollector
from repro.sim import Simulator
from repro.sim import engine as _engine


def test_off_by_default():
    assert obs.active is None
    assert not obs.enabled()


def test_begin_end_nesting_and_parents():
    col = SpanCollector()
    outer = col.begin(0.0, "outer", "host", host="alice")
    inner = col.begin(1.0, "inner", "ni_tx", host="alice")
    assert inner.parent is outer
    assert inner.depth == 1
    assert col.current is inner
    col.end(inner, 2.0)
    assert col.current is outer
    col.end(outer, 3.0)
    assert col.current is None
    assert [s.name for s in col.spans] == ["inner", "outer"]
    assert outer.duration == 3.0
    assert inner.duration == 1.0


def test_end_twice_raises():
    col = SpanCollector()
    span = col.begin(0.0, "s", "host")
    col.end(span, 1.0)
    with pytest.raises(ValueError, match="already ended"):
        col.end(span, 2.0)


def test_duration_of_open_span_raises():
    col = SpanCollector()
    span = col.begin(0.0, "s", "host")
    with pytest.raises(ValueError, match="still open"):
        span.duration


def test_explicit_parent_overrides_current():
    col = SpanCollector()
    a = col.begin(0.0, "a", "host")
    b = col.begin(0.0, "b", "host", parent=None)
    assert b.parent is None
    assert b.depth == 0
    col.end(b, 1.0)
    # b was current; ending it pops back to its parent (None), not a
    assert col.current is None
    col.end(a, 1.0)


def test_add_complete_leaves_current_alone():
    col = SpanCollector()
    span = col.begin(0.0, "s", "host")
    wire = col.add_complete(1.0, 4.0, "cell", "wire", host="link")
    assert col.current is span
    assert wire.t1 == 4.0
    assert wire in col.spans  # already closed, already recorded
    col.end(span, 5.0)


def test_charge_accumulates_on_current():
    col = SpanCollector()
    col.charge(1.0)  # no current span: silently ignored
    span = col.begin(0.0, "s", "host")
    col.charge(2.0)
    col.charge(3.0)
    col.charge(1.5, key="copy_us")
    assert span.attrs == {"cpu_us": 5.0, "copy_us": 1.5}
    col.end(span, 1.0)


def test_annotate_and_to_dict():
    col = SpanCollector()
    span = col.begin(2.0, "s", "ni_rx", host="bob")
    col.annotate(span, bytes=32, cells=1)
    col.end(span, 3.5)
    d = span.to_dict()
    assert d["layer"] == "ni_rx"
    assert d["host"] == "bob"
    assert d["attrs"] == {"bytes": 32, "cells": 1}
    assert d["parent"] is None


def test_context_propagates_across_schedule_callback():
    """The span open at schedule time is current when the callback runs."""
    with obs.collecting() as col:
        sim = Simulator()
        seen = []

        def fire():
            seen.append(col.current)

        span = col.begin(0.0, "root", "bench")
        sim.schedule_callback(5.0, fire)
        col.end(span, 0.0)
        assert col.current is None
        sim.run()
    assert seen == [span]


def test_context_propagates_across_generator_yield():
    """A span opened before a timeout is current again after the resume."""
    with obs.collecting() as col:
        sim = Simulator()
        observed = []

        def proc():
            span = col.begin(sim.now, "work", "host")
            yield sim.timeout(3.0)
            observed.append(col.current)
            col.end(span, sim.now)

        sim.process(proc())
        sim.run()
        assert observed == [col.spans[0]]
        assert col.spans[0].duration == 3.0


def test_context_is_isolated_between_heap_entries():
    """An entry scheduled with no open span runs with no span, even when
    another chain's span is open at execution time."""
    with obs.collecting() as col:
        sim = Simulator()
        seen = {}

        def bare():
            seen["bare"] = col.current

        sim.schedule_callback(1.0, bare)  # scheduled before any span
        span = col.begin(0.0, "late", "bench")
        sim.run()
        col.end(span, sim.now)
    assert seen["bare"] is None


def test_engine_profile_counts_callbacks_and_events():
    with obs.collecting() as col:
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.schedule_callback(1.0, lambda: None)
        sim.run()
    profile = col.engine_profile()
    assert profile["executed_callbacks"] == 1
    assert profile["executed_events"] >= 2
    assert profile["entries_scheduled"] == (
        profile["executed_callbacks"] + profile["executed_events"]
    )
    assert profile["max_heap_depth"] >= 1


def test_same_time_tiebreak_order_matches_uninstrumented():
    """Arming obs must not perturb the engine's FIFO tie-break."""

    def run_once():
        sim = Simulator()
        order = []
        for tag in range(6):
            sim.schedule_callback(1.0, order.append, tag)
        sim.run()
        return order

    baseline = run_once()
    with obs.collecting():
        instrumented = run_once()
    assert instrumented == baseline


def test_collecting_restores_previous_state():
    assert obs.active is None
    factory_before = _engine._monitor_factory
    with obs.collecting() as col:
        assert obs.active is col
        assert _engine._monitor_factory is not None
    assert obs.active is None
    assert _engine._monitor_factory is factory_before


def test_enable_refuses_when_monitor_slot_taken():
    _engine.set_instrumentation(lambda: object(), None)
    try:
        with pytest.raises(RuntimeError, match="mutually exclusive"):
            obs.enable()
    finally:
        _engine.set_instrumentation(None, None)
    assert obs.active is None


def test_enable_disable_roundtrip():
    col = obs.enable()
    try:
        assert obs.active is col
        assert obs.enable() is col  # idempotent
    finally:
        obs.disable()
    assert obs.active is None
    assert _engine._monitor_factory is None


def test_wall_profile_populates_wall_by_kind():
    with obs.collecting(profile_wall=True) as col:
        sim = Simulator()

        def proc():
            for _ in range(50):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
    wall = col.engine_profile()["wall_s_by_kind"]
    assert set(wall) == {"callback", "event", "timer"}
    assert wall["event"] >= 0.0


def test_timer_entries_counted_separately():
    with obs.collecting() as col:
        sim = Simulator()
        fired = []
        sim.schedule_timer(5.0, fired.append, "t")
        cancelled = sim.schedule_timer(7.0, fired.append, "dead")
        cancelled.cancel()
        sim.run()
    assert fired == ["t"]
    # both timer entries reach the heap and are executed (the cancelled
    # one as a no-op pop); neither is misclassified as an event
    assert col.executed_timers == 2
    assert col.executed_events == 0


def test_env_precedence_race_wins_either_import_order():
    """With REPRO_OBS and REPRO_RACE both set, the race detector keeps
    the engine slot and obs stays off -- regardless of which package the
    interpreter happens to import first."""
    import os
    import subprocess
    import sys
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    check = (
        "import repro.analysis.race as race\n"
        "from repro import obs\n"
        "from repro.sim import engine\n"
        "m = engine._monitor_factory() if engine._monitor_factory else None\n"
        "assert race.current() is not None, 'race should be armed'\n"
        "assert not obs.enabled(), 'obs must defer to REPRO_RACE'\n"
        "assert type(m).__name__ == 'RaceTracker', type(m).__name__\n"
    )
    for order in (check, check.replace(
        "import repro.analysis.race as race\nfrom repro import obs",
        "from repro import obs\nimport repro.analysis.race as race",
    )):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_OBS"] = "1"
        env["REPRO_RACE"] = "1"
        result = subprocess.run(
            [sys.executable, "-c", order],
            capture_output=True, text=True, env=env, check=False,
        )
        assert result.returncode == 0, result.stderr
