"""The flight recorder: bounded span ring + crash-path dumps."""

import json
import os

import pytest

from repro import obs
from repro.obs.flight import DEFAULT_LIMIT, FlightRecorder, ring_limit_from_env
from repro.obs.spans import SpanCollector


# -- ring bounds ----------------------------------------------------------

def test_ring_evicts_oldest_beyond_limit():
    rec = FlightRecorder(limit=3)
    col = SpanCollector()
    for i in range(5):
        sid = col.begin(float(i), f"s{i}", "test")
        col.end(sid, float(i) + 0.5)
        rec.record(col.spans[-1])
    assert len(rec) == 3
    assert rec.recorded == 5
    assert [s.name for s in rec.snapshot()] == ["s2", "s3", "s4"]


def test_nonpositive_limit_rejected():
    with pytest.raises(ValueError):
        FlightRecorder(limit=0)


# -- env knob -------------------------------------------------------------

def test_ring_limit_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_FLIGHT", raising=False)
    assert ring_limit_from_env() is None
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "0")
    assert ring_limit_from_env() is None
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "-5")
    assert ring_limit_from_env() is None
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "256")
    assert ring_limit_from_env() == 256
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "1")
    assert ring_limit_from_env() == DEFAULT_LIMIT  # boolean arm switch
    # "1" means "armed at the default size" in docs/CI, and any
    # unparseable value degrades to the default rather than crashing.
    monkeypatch.setenv("REPRO_OBS_FLIGHT", "yes")
    assert ring_limit_from_env() == DEFAULT_LIMIT


# -- dumps ----------------------------------------------------------------

def _recorder_with_spans(n=4, limit=16):
    rec = FlightRecorder(limit=limit)
    col = SpanCollector()
    for i in range(n):
        sid = col.begin(float(i), f"span{i}", "test")
        col.end(sid, float(i) + 0.25)
        rec.record(col.spans[-1])
    return rec


def test_dump_writes_valid_perfetto(tmp_path):
    rec = _recorder_with_spans(n=4)
    path = str(tmp_path / "flight.json")
    assert rec.dump(path=path, reason="unit test") == path
    assert rec.last_dump_path == path
    doc = json.loads(open(path).read())
    names = {e.get("name") for e in doc["traceEvents"] if e.get("ph") == "X"}
    assert {"span0", "span1", "span2", "span3"} <= names
    counters = doc["otherData"]["counters"]["counters"]
    assert counters["flight.recorded"] == 4
    assert counters["flight.ring_len"] == 4
    assert counters["flight.trip"] == 1


def test_dump_default_path_embeds_shard_and_pid():
    rec = FlightRecorder()
    path = rec.default_dump_path(shard=3)
    assert "shard3" in path
    assert f"pid{os.getpid()}" in path


def test_dump_on_trip_never_raises(monkeypatch):
    rec = _recorder_with_spans(n=1)

    def boom(*a, **kw):
        raise OSError("disk full")

    monkeypatch.setattr(FlightRecorder, "dump", boom)
    assert rec.dump_on_trip("kaboom") == ""


# -- collector integration ------------------------------------------------

def test_collecting_arms_the_flight_ring():
    with obs.collecting(flight=8) as col:
        assert col.flight is not None
        assert col.flight.limit == 8
        sid = col.begin(0.0, "armed", "test")
        col.end(sid, 1.0)
    assert col.flight.recorded == 1
    assert [s.name for s in col.flight.snapshot()] == ["armed"]


def test_collecting_without_flight_keeps_it_off():
    with obs.collecting() as col:
        assert col.flight is None
