"""The metrics substrate: histograms, registry, off-guard, merge."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import Histogram, MetricsRegistry


# -- histogram ------------------------------------------------------------

def test_histogram_exact_count_sum_min_max():
    h = Histogram()
    for v in (1.0, 2.0, 3.0, 4.0, 100.0):
        h.observe(v)
    assert h.count == 5
    assert h.total == 110.0
    assert h.min == 1.0
    assert h.max == 100.0
    assert h.mean == 22.0


def test_histogram_percentile_relative_error_is_bounded():
    h = Histogram()
    values = [0.001 * (i + 1) * 7.3 for i in range(10_000)]
    for v in values:
        h.observe(v)
    values.sort()
    for q in (50.0, 99.0, 99.9):
        exact = values[min(len(values) - 1, int(len(values) * q / 100.0))]
        approx = h.percentile(q)
        assert abs(approx - exact) / exact < 0.01, q


def test_histogram_percentile_clamps_to_observed_range():
    h = Histogram()
    h.observe(5.0)
    assert h.percentile(0.0) == 5.0
    assert h.percentile(100.0) == 5.0


def test_histogram_empty_percentile_raises():
    with pytest.raises(ValueError):
        Histogram().percentile(50.0)


def test_histogram_nonpositive_values_bucket_zero():
    h = Histogram()
    h.observe(0.0)
    h.observe(-3.0)
    assert h.count == 2
    assert h.min == -3.0
    assert h.percentile(50.0) <= 0.0


def test_histogram_summary_keys():
    h = Histogram()
    h.observe(2.0)
    s = h.summary()
    assert set(s) == {"count", "sum", "min", "max", "mean", "p50", "p99", "p999"}


def test_histogram_state_roundtrip_and_merge():
    a, b = Histogram(), Histogram()
    for v in (1.0, 2.0, 3.0):
        a.observe(v)
    for v in (10.0, 20.0):
        b.observe(v)
    a.merge_state(b.to_state())
    assert a.count == 5
    assert a.total == 36.0
    assert a.max == 20.0
    assert a.min == 1.0


# -- registry -------------------------------------------------------------

def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.count("drops")
    reg.count("drops", 2)
    reg.count("busy_us", 1.5)
    reg.gauge_max("depth", 3)
    reg.gauge_max("depth", 1)
    reg.observe("lat", 2.0)
    snap = reg.snapshot()
    assert snap["counters"]["drops"] == 3
    assert snap["counters"]["busy_us"] == 1.5
    assert snap["gauges"]["depth"] == 3
    assert snap["histograms"]["lat"]["count"] == 1


def test_registry_histogram_lookup_unknown_key_raises():
    reg = MetricsRegistry()
    reg.observe("known", 1.0)
    reg.histogram("known")
    with pytest.raises(KeyError, match="known"):
        reg.histogram("missing")


def test_registry_merge_state():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.count("c", 1)
    b.count("c", 2)
    b.count("only_b")
    a.gauge_max("g", 5)
    b.gauge_max("g", 9)
    a.observe("h", 1.0)
    b.observe("h", 3.0)
    a.merge_state(b.to_state())
    assert a.counters["c"] == 3
    assert a.counters["only_b"] == 1
    assert a.gauges["g"] == 9
    assert a.histogram("h").count == 2


# -- module arming --------------------------------------------------------

def test_metrics_off_by_default():
    assert metrics.active is None
    assert not metrics.enabled()


def test_collecting_scopes_the_registry():
    assert metrics.active is None
    with metrics.collecting() as reg:
        assert metrics.active is reg
        reg.count("x")
    assert metrics.active is None
    assert reg.counters["x"] == 1


def test_enable_disable_roundtrip():
    assert metrics.active is None
    reg = metrics.enable()
    try:
        assert metrics.active is reg
        assert metrics.enable() is reg  # idempotent
    finally:
        metrics.disable()
    assert metrics.active is None


def test_obs_collecting_arms_metrics():
    from repro import obs

    with obs.collecting() as col:
        assert metrics.active is not None
        assert col.metrics is metrics.active
        metrics.active.count("seen")
    assert metrics.active is None
    assert col.metrics.counters["seen"] == 1
