"""Acceptance tests for ``python -m repro.obs``."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_OBS", None)
    env.pop("REPRO_RACE", None)
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(cwd or REPO_ROOT),
        check=False,
    )


def test_report_fig3(tmp_path):
    out = tmp_path / "att.json"
    result = run_cli("report", "fig3", "--n", "2", "--json", str(out))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "budget check: within" in result.stdout
    doc = json.loads(out.read_text())
    layers = doc["attribution"]["layers_us"]
    assert set(layers) == {"host", "ni_tx", "ni_rx", "wire", "switch"}
    # the printed table and the JSON agree on the dominant layer
    assert max(layers, key=layers.get) == "ni_rx"
    assert doc["budget"]["ok"] is True
    assert doc["roundtrips"] == 2
    assert doc["engine_profile"]["entries_scheduled"] > 0


def test_export_writes_trace(tmp_path):
    out = tmp_path / "trace.json"
    result = run_cli("export", "fig3", "--n", "2", "-o", str(out))
    assert result.returncode == 0, result.stdout + result.stderr
    doc = json.loads(out.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_diff_self_is_zero(tmp_path):
    out = tmp_path / "att.json"
    run_cli("report", "fig3", "--n", "2", "--json", str(out))
    result = run_cli(
        "diff", str(out), str(out), "--fail-over", "0.001"
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "+0.000" in result.stdout


def test_unknown_scenario_is_usage_error():
    result = run_cli("report", "fig99")
    assert result.returncode == 2  # argparse choices rejection
