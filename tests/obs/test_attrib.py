"""Attribution folds: synthetic geometry plus the fig3 end-to-end invariant."""

import math

import pytest

from repro import obs
from repro.obs import attrib, budgets
from repro.obs.attrib import UNATTRIBUTED, Attribution, fold_spans, merge_mean
from repro.obs.spans import SpanCollector


def _spans(*triples):
    """Build closed spans from (t0, t1, layer[, parent_idx]) tuples."""
    col = SpanCollector()
    made = []
    for triple in triples:
        t0, t1, layer = triple[:3]
        parent = made[triple[3]] if len(triple) > 3 else None
        made.append(col.add_complete(t0, t1, layer, layer, parent=parent))
    return made


def test_fold_simple_partition():
    spans = _spans((0.0, 3.0, "host"), (3.0, 7.0, "wire"))
    att = fold_spans(spans, 0.0, 10.0)
    assert att.layers == {"host": 3.0, "wire": 4.0, UNATTRIBUTED: 3.0}
    att.check_sum()


def test_fold_deepest_span_wins():
    spans = _spans((0.0, 10.0, "host"), (2.0, 5.0, "ni_tx", 0))
    att = fold_spans(spans, 0.0, 10.0)
    assert att.layers == {"host": 7.0, "ni_tx": 3.0}
    att.check_sum()


def test_fold_equal_depth_later_start_wins():
    # overlapping siblings: [0,6) host vs [4,8) wire -- wire opened later
    spans = _spans((0.0, 6.0, "host"), (4.0, 8.0, "wire"))
    att = fold_spans(spans, 0.0, 8.0)
    assert att.layers == {"host": 4.0, "wire": 4.0}
    att.check_sum()


def test_fold_clips_to_window():
    spans = _spans((-5.0, 3.0, "host"), (9.0, 20.0, "wire"))
    att = fold_spans(spans, 0.0, 10.0)
    assert att.layers == {"host": 3.0, UNATTRIBUTED: 6.0, "wire": 1.0}
    att.check_sum()


def test_fold_excludes_layers():
    spans = _spans((0.0, 10.0, "bench"), (1.0, 4.0, "host"))
    att = fold_spans(spans, 0.0, 10.0, exclude_layers=("bench",))
    assert att.layers == {"host": 3.0, UNATTRIBUTED: 7.0}


def test_fold_ignores_open_spans():
    col = SpanCollector()
    col.begin(0.0, "open", "host")  # never ended
    att = fold_spans(col.spans, 0.0, 5.0)
    assert att.layers == {UNATTRIBUTED: 5.0}


def test_fold_rejects_inverted_window():
    with pytest.raises(ValueError, match="precedes"):
        fold_spans([], 5.0, 1.0)


def test_check_sum_rejects_drift():
    att = Attribution(t0=0.0, t1=10.0, layers={"host": 9.0})
    with pytest.raises(ValueError, match="sum to"):
        att.check_sum()


def test_merge_mean():
    a = Attribution(0.0, 10.0, {"host": 4.0, "wire": 6.0})
    b = Attribution(0.0, 20.0, {"host": 8.0, "switch": 12.0})
    mean = merge_mean([a, b])
    assert mean.layers == {"host": 6.0, "wire": 3.0, "switch": 6.0}
    assert mean.window_us == 15.0
    with pytest.raises(ValueError):
        merge_mean([])


def test_fig3_attribution_sums_to_measured_rtt():
    """The CI-gated invariant: per-layer components == end-to-end RTT."""
    from repro.bench import micro

    with obs.collecting() as col:
        result = micro.raw_rtt(32, n=3)

    per_trip = attrib.attribute_roundtrips(col.spans)
    assert len(per_trip) == 3
    for att, sample in zip(per_trip, result.samples):
        att.check_sum()  # components partition the window exactly
        assert math.isclose(att.window_us, sample, rel_tol=1e-12)
        assert UNATTRIBUTED not in att.layers  # fully attributed path


def test_fig3_attribution_matches_analytic_budget():
    from repro.bench import micro
    from repro.core import UNetCluster
    from repro.sim import Simulator

    with obs.collecting() as col:
        micro.raw_rtt(32, n=3)
    mean = attrib.merge_mean(attrib.attribute_roundtrips(col.spans))

    probe = UNetCluster.pair(Simulator(), ni_kind="sba200")
    budget = budgets.sba200_single_cell_budget(
        micro._one_way_wire_us(probe),
        probe.network.switch.switching_latency_us,
    )
    comparison = budgets.compare(mean.layers, budget)
    assert comparison["ok"], comparison
    # the model charges exactly the budgeted costs: agreement is tight
    for layer, delta in comparison["deltas_us"].items():
        assert abs(delta) < 1e-6, (layer, delta)


def test_budget_compare_flags_blowout():
    budget = {"host": 5.0, "wire": 10.0}
    measured = {"host": 5.0, "wire": 10.0, "kernel": 40.0}
    comparison = budgets.compare(measured, budget)
    assert not comparison["ok"]
    assert comparison["deltas_us"]["kernel"] == 40.0
