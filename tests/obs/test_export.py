"""Golden schema checks for the Chrome trace_event / Perfetto export."""

import json

from repro import obs
from repro.obs import export
from repro.obs.spans import SpanCollector

#: Fields every complete ("X") event must carry, per the trace_event spec.
X_REQUIRED = {"ph", "name", "cat", "pid", "tid", "ts", "dur", "args"}
C_REQUIRED = {"ph", "name", "pid", "tid", "ts", "args"}
M_REQUIRED = {"ph", "name", "pid", "tid", "args"}


def _sample_collector():
    col = SpanCollector()
    root = col.begin(0.0, "roundtrip", "bench", host="alice")
    tx = col.begin(1.0, "tx_single", "ni_tx", host="alice")
    col.annotate(tx, bytes=32, cells=1)
    col.end(tx, 9.0)
    col.add_complete(9.0, 12.0, "cell", "wire", host="link.alice")
    col.end(root, 20.0)
    col.begin(0.0, "never_ended", "host", host="bob")  # must be skipped
    col.sample(3.0, "ring.send.depth", 2, host="alice")
    col.sample(5.0, "ring.send.depth", 1, host="alice")
    col.bump("aal5.pdus_reassembled", 4)
    return col


def test_trace_events_schema():
    doc = export.to_trace_events(_sample_collector())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    by_ph = {}
    for event in events:
        by_ph.setdefault(event["ph"], []).append(event)
        required = {"X": X_REQUIRED, "C": C_REQUIRED, "M": M_REQUIRED}[event["ph"]]
        assert required <= set(event), event
    # 3 closed spans; the open one is skipped
    assert len(by_ph["X"]) == 3
    assert len(by_ph["C"]) == 2
    # metadata names every process and every layer thread
    process_names = {
        e["args"]["name"] for e in by_ph["M"] if e["name"] == "process_name"
    }
    assert process_names == {"alice", "link.alice"}
    thread_names = {
        e["args"]["name"] for e in by_ph["M"] if e["name"] == "thread_name"
    }
    assert thread_names == {"bench", "ni_tx", "wire"}


def test_trace_events_times_are_microseconds_verbatim():
    doc = export.to_trace_events(_sample_collector())
    tx = next(e for e in doc["traceEvents"] if e.get("name") == "tx_single")
    assert tx["ts"] == 1.0 and tx["dur"] == 8.0
    assert tx["cat"] == "ni_tx"
    assert tx["args"]["bytes"] == 32
    assert tx["args"]["parent_sid"] == 1  # the bench root


def test_layer_threads_share_lane_ids_across_hosts():
    col = SpanCollector()
    a = col.begin(0.0, "x", "ni_tx", host="alice")
    col.end(a, 1.0)
    b = col.begin(0.0, "y", "ni_tx", host="bob")
    col.end(b, 1.0)
    doc = export.to_trace_events(col)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs[0]["tid"] == xs[1]["tid"]
    assert xs[0]["pid"] != xs[1]["pid"]


def test_write_trace_is_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    n = export.write_trace(_sample_collector(), str(path))
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n
    assert doc["otherData"]["generator"] == "repro.obs"
    assert doc["otherData"]["counters"]["counters"] == {
        "aal5.pdus_reassembled": 4
    }


def test_export_of_real_run_round_trips_through_json(tmp_path):
    from repro.bench import micro

    with obs.collecting() as col:
        micro.raw_rtt(32, n=2)
    path = tmp_path / "fig3.json"
    export.write_trace(col, str(path))
    doc = json.loads(path.read_text())
    cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"bench", "host", "ni_tx", "ni_rx", "wire", "switch"} <= cats
