"""CPU model: clock scaling and serialization."""

import pytest

from repro.host import CpuModel, REFERENCE_MHZ
from repro.sim import Simulator


class TestScaling:
    def test_reference_clock_identity(self):
        cpu = CpuModel(Simulator(), mhz=REFERENCE_MHZ)
        assert cpu.scale(10.0) == 10.0

    def test_slower_clock_costs_more(self):
        cpu = CpuModel(Simulator(), mhz=30.0)
        assert cpu.scale(10.0) == pytest.approx(20.0)

    def test_faster_clock_costs_less(self):
        cpu = CpuModel(Simulator(), mhz=120.0)
        assert cpu.scale(10.0) == pytest.approx(5.0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            CpuModel(Simulator(), mhz=0)


class TestCompute:
    def test_compute_advances_scaled_time(self):
        sim = Simulator()
        cpu = CpuModel(sim, mhz=30.0)

        def proc():
            yield from cpu.compute(10.0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(20.0)

    def test_compute_raw_ignores_clock(self):
        sim = Simulator()
        cpu = CpuModel(sim, mhz=30.0)

        def proc():
            yield from cpu.compute_raw(10.0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(10.0)

    def test_serialization_between_activities(self):
        """Two activities on one CPU cannot overlap (uniprocessor)."""
        sim = Simulator()
        cpu = CpuModel(sim)
        finish = []

        def proc():
            yield from cpu.compute(10.0)
            finish.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert finish == [10.0, 20.0]

    def test_busy_accounting(self):
        sim = Simulator()
        cpu = CpuModel(sim, mhz=REFERENCE_MHZ)

        def proc():
            yield from cpu.compute(7.0)
            yield from cpu.compute(3.0)

        sim.process(proc())
        sim.run()
        assert cpu.busy_us == pytest.approx(10.0)
