"""Workstation cost-table tests, pinned to the paper's figures."""

import pytest

from repro.host import HostCosts, Workstation
from repro.sim import Simulator


class TestHostCosts:
    def test_checksum_rate_matches_paper(self):
        """§7.6: 'a processing overhead of 1 us per 100 bytes'."""
        costs = HostCosts()
        assert costs.checksum_us(100) == pytest.approx(1.0)

    def test_signal_cost_matches_paper(self):
        """§4.2.3: a UNIX signal adds ~30 us on each end."""
        assert HostCosts().signal_us == pytest.approx(30.0)

    def test_crc_fraction_of_aal5_overhead(self):
        """Table 1 discussion: CRC is ~33% of the 7 us AAL5 send cost
        for a 48-byte cell."""
        costs = HostCosts()
        assert costs.crc_us(48) / 7.0 == pytest.approx(0.33, abs=0.02)

    def test_copy_includes_setup(self):
        costs = HostCosts()
        assert costs.copy_us(0) == 0.0
        assert costs.copy_us(100) == pytest.approx(
            costs.copy_setup_us + 100 * costs.copy_us_per_byte
        )

    def test_copy_slope_matches_uam_transfer(self):
        """§5.2: UAM block transfers cost ~0.2 us/byte per round trip --
        ~0.125 us/byte of wire time plus four copies."""
        costs = HostCosts()
        wire_per_byte_rtt = 2 * (53 * 8 / 140e6 * 1e6) / 48
        slope = wire_per_byte_rtt + 4 * costs.copy_us_per_byte
        assert slope == pytest.approx(0.2, abs=0.01)


class TestWorkstation:
    def test_cost_helpers_run_on_cpu(self):
        sim = Simulator()
        host = Workstation(sim, "w", mhz=60.0)

        def proc():
            yield from host.copy(1000)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(host.costs.copy_us(1000))

    def test_clock_scales_helpers(self):
        sim = Simulator()
        slow = Workstation(sim, "slow", mhz=30.0)

        def proc():
            yield from slow.checksum(100)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == pytest.approx(2.0)  # 1 us at 60 MHz, x2 at 30 MHz

    def test_syscall_vs_fast_trap(self):
        """Fast traps must be far cheaper than full system calls: that
        asymmetry is the entire premise of kernel bypass."""
        costs = HostCosts()
        assert costs.fast_trap_us * 5 < costs.syscall_us

    def test_repr(self):
        host = Workstation(Simulator(), "node0", mhz=50.0)
        assert "node0" in repr(host)
        assert host.mhz == 50.0
