"""Deliberately broken *data-path* module: one unguarded-obs-call.

The ``unguarded-obs-call`` rule only applies inside the hot
``repro.core``/``repro.atm``/... module prefixes, so this fixture lives
under a ``repro/core/`` path (the path, not the import system, decides:
it is never imported).  The acceptance tests lint it alongside
``bad_example.py`` so every registered rule still reports exactly once.
"""

from repro import obs


def bad_unguarded_bump(ring):
    # one unguarded-obs-call violation: crashes when obs is off
    obs.active.bump("ring.rejected")
