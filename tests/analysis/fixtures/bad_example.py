"""Deliberately broken module: exactly one violation of every simlint rule.

Never imported -- this file exists to be *linted* by the acceptance
tests (``tests/analysis/test_cli.py``), which expect simlint to exit
non-zero here with one ``file:line:rule`` report per rule.
"""

import heapq  # one direct-heapq violation
import random
import time

from repro.sim import Event, Simulator, batch


class FastEvent(Event):  # one slots-hot-path violation
    pass


class Widget:
    __slots__ = ()


def bad_wall_clock():
    return time.time()  # one wall-clock violation


def bad_unseeded():
    return random.random()  # one unseeded-random violation


def bad_or_default(config):
    return config or Widget()  # one or-default violation


def bad_yield():
    yield (1, 2)  # one yield-event violation


def bad_arity(sim: Simulator):
    sim.schedule_callback(1.0, bad_wall_clock, 1, 2)  # one callback-arity violation


def bad_set_iter():
    live = {"alice", "bob", "carol"}
    names = []
    for name in live:  # one unordered-iter violation
        names.append(name)
    return names


def bad_swallow(ring):
    try:
        return ring.pop()
    except Exception:  # one silent-except violation
        pass


def bad_mutable_default(sample, buf=[]):  # one mutable-default violation
    buf.append(sample)
    return buf


def bad_tracer_append(tracer, record):
    tracer.records.append(record)  # one direct-tracer-append violation


SHARED_TABLE = {}


def mutate_shared(key):
    SHARED_TABLE[key] = 1


def bad_zero_delay(sim: Simulator):
    # one schedule-shared-state violation
    sim.schedule_callback(0.0, mutate_shared, "k")


def bad_cross_shard(link):
    return link.remote_peer.cells_sent  # one cross-shard-state violation


class LeakyCollector:
    __slots__ = ("cells",)

    def _drain(self, train):
        for cell in train.cells:  # one unbatched-candidate violation
            self.cells.append(cell)


batch.register(LeakyCollector._drain, None)
