"""Run-to-run determinism: the fig3 RTT trace must not depend on
PYTHONHASHSEED."""

from repro.analysis.determinism import run_ab, trace_run


def test_trace_run_is_reproducible_in_process():
    first = trace_run(sizes=(0,), rounds=1)
    second = trace_run(sizes=(0,), rounds=1)
    assert first == second
    assert "timeline=" in first and "rtts=" in first


def test_fig3_rtt_identical_across_hash_seeds():
    report = run_ab(seeds=("1", "4242"), sizes=(0, 48), rounds=2)
    assert report.identical, report.diff
    assert report.trace_lines > 0
    assert "identical" in report.summary()


def test_divergence_would_be_reported(monkeypatch):
    # The harness must actually catch a hash-order-dependent trace, not
    # just pass vacuously: feed it per-seed traces that differ.
    from repro.analysis import determinism

    def fake_spawn(seed, sizes, rounds):
        return f"timeline=0x1.0p+0,seed-dependent-{seed}\n"

    monkeypatch.setattr(determinism, "_spawn", fake_spawn)
    report = determinism.run_ab(seeds=("1", "2"), sizes=(0,), rounds=1)
    assert not report.identical
    assert "seed-dependent-1" in report.diff
    assert "seed-dependent-2" in report.diff
    assert "DIVERGED" in report.summary()
