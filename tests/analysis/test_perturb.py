"""Perturbation harness tests: canonicalization, verdicts, scenarios.

Includes the before/after regression for the ModelTransport arrival
race: a miniature rebuild of the *old* delivery pattern (per-message
processes racing for the destination CPU) is CONFIRMED by the harness,
while the shipped arrival-arbiter code is not.
"""

import pytest

from repro.analysis import perturb
from repro.analysis.race import detected
from repro.sim import Resource, Simulator
from repro.splitc import CM5, ModelTransport


def _scenario(monkeypatch, fn, name="tmp"):
    monkeypatch.setitem(perturb._SCENARIOS, name, fn)
    return name


# -- canonicalization ------------------------------------------------------

def test_canonical_trace_groups_by_timestamp():
    trace = [(1.0, "a"), (1.0, "b"), (1.0, "a"), (2.5, "c")]
    groups = perturb._canonical_trace(trace)
    assert groups == [
        ((1.0).hex(), (("a", 2), ("b", 1))),
        ((2.5).hex(), (("c", 1),)),
    ]


def test_canonical_trace_is_order_insensitive_within_groups():
    fifo = perturb._canonical_trace([(1.0, "a"), (1.0, "b")])
    lifo = perturb._canonical_trace([(1.0, "b"), (1.0, "a")])
    assert fifo == lifo


def test_canonical_metrics_hex_floats():
    out = perturb._canonical_metrics({"x": 0.1, "n": 3})
    assert out == {"x": (0.1).hex(), "n": "3"}


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        perturb.run_scenario("no-such-figure")


def test_registry_covers_all_figures():
    assert {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "sample_sort"} \
        <= set(perturb.scenario_names())


# -- verdict classification ------------------------------------------------

def _racy_metric():
    """A metric that genuinely depends on the same-timestamp tie order."""
    sim = Simulator()
    order = []
    sim.schedule_callback(1.0, order.append, 10.0)
    sim.schedule_callback(1.0, order.append, 20.0)
    sim.run()
    return {"first": order[0]}


def _stable_metric():
    sim = Simulator()
    seen = []
    sim.schedule_callback(1.0, seen.append, 10.0)
    sim.schedule_callback(2.0, seen.append, 20.0)
    sim.run()
    return {"first": seen[0]}


def test_order_dependent_scenario_is_confirmed(monkeypatch):
    name = _scenario(monkeypatch, _racy_metric)
    verdict = perturb.race_check(name, random_orders=1)
    assert verdict.diverged
    assert verdict.status in ("CONFIRMED", "DIVERGED")
    assert any(diff.metric_diffs for diff in verdict.diffs)
    assert "lifo" in verdict.format()


def test_stable_scenario_is_clean(monkeypatch):
    name = _scenario(monkeypatch, _stable_metric)
    verdict = perturb.race_check(name, random_orders=1)
    assert not verdict.diverged
    assert verdict.status == "CLEAN"
    assert verdict.confirmed == []


def test_trace_reorder_without_metric_divergence_is_benign(monkeypatch):
    """Same-timestamp commuting work: traces may reorder group-internally
    only (which canonicalization absorbs); metrics are the verdict."""

    def commuting():
        sim = Simulator()
        acc = []
        sim.schedule_callback(1.0, acc.append, 1.0)
        sim.schedule_callback(1.0, acc.append, 2.0)
        sim.run()
        return {"total": sum(acc)}  # addition commutes

    name = _scenario(monkeypatch, commuting)
    verdict = perturb.race_check(name, random_orders=1)
    assert not verdict.diverged
    assert verdict.status == "CLEAN"


# -- the ModelTransport arrival race: before / after -----------------------

def _old_style_delivery_metrics():
    """The pre-fix delivery pattern: one process per message, each
    sleeping the wire latency then contending for the destination CPU.
    Which message wins the same-instant contention is a heap-insertion
    accident, and the handler log shows it."""
    sim = Simulator()
    cpu = Resource(sim, 1, name="rx.cpu")
    log = []

    def deliver(src):
        yield sim.timeout(5.0)  # both arrive at t=5
        yield from cpu.use(3.0)
        log.append(src)

    sim.process(deliver(0))
    sim.process(deliver(1))
    sim.run()
    return {"first_handled": float(log[0])}


def test_old_delivery_pattern_is_confirmed_by_harness(monkeypatch):
    name = _scenario(monkeypatch, _old_style_delivery_metrics, "old-deliver")
    verdict = perturb.race_check(name, random_orders=2)
    assert verdict.diverged, "per-message CPU contention must diverge"


def _model_transport_metrics():
    """The shipped code: rank 1 and rank 2 both message rank 0 at the
    same instant; the arrival arbiter must pin the delivery order."""
    sim = Simulator()
    tp = ModelTransport(sim, CM5, 3)
    log = []

    def handler(src, data):
        log.append(src)
        return
        yield

    tp.attach(0, handler)

    def sender(rank):
        yield from tp.send(rank, 0, b"x")

    sim.process(sender(1))
    sim.process(sender(2))
    sim.run()
    return {"first": float(log[0]), "second": float(log[1])}


def test_model_transport_arrivals_are_order_stable(monkeypatch):
    name = _scenario(monkeypatch, _model_transport_metrics, "mt-arrivals")
    verdict = perturb.race_check(name, random_orders=2)
    assert not verdict.diverged, verdict.format()
    # fixed-priority arbitration: lowest source rank delivered first
    baseline = verdict.baseline.metrics
    assert baseline["first"] == (1.0).hex()
    assert baseline["second"] == (2.0).hex()


def test_fig5_scenario_has_no_confirmed_races():
    """The figure-5 Split-C run must not depend on the tie-break."""
    verdict = perturb.race_check("fig5", random_orders=1)
    assert not verdict.diverged, verdict.format()
    assert verdict.confirmed == []


# -- run_scenario plumbing -------------------------------------------------

def test_run_scenario_returns_canonical_run(monkeypatch):
    name = _scenario(monkeypatch, _stable_metric)
    run = perturb.run_scenario(name, tie="lifo")
    assert run.tie == "lifo"
    assert run.order == "lifo"
    assert run.metrics == {"first": (10.0).hex()}
    assert run.entries > 0
    assert run.trace_groups


def test_run_scenario_restores_instrumentation(monkeypatch):
    from repro.sim import engine

    name = _scenario(monkeypatch, _stable_metric)
    previous = (engine._monitor_factory, engine.access_hook)
    perturb.run_scenario(name)
    assert (engine._monitor_factory, engine.access_hook) == previous
