"""ShadowScheduler unit tests: detection, happens-before, tie orders."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import race
from repro.sim import Simulator, Store
from repro.sim import engine


@pytest.fixture
def race_off():
    """Force the detector off around a test (suite may run REPRO_RACE=1)."""
    previous = (engine._monitor_factory, engine.access_hook)
    engine.set_instrumentation(None, None)
    yield
    engine.set_instrumentation(*previous)


def _two_writer_sim():
    """Two same-instant callbacks each writing one shared Store, with no
    schedule edge between them -- the canonical simulation race."""
    sim = Simulator()
    store = Store(sim, name="shared")

    def writer(value):
        store.try_put(value)

    sim.schedule_callback(5.0, writer, "a")
    sim.schedule_callback(5.0, writer, "b")
    sim.run()
    return store


class TestDetection:
    def test_unordered_same_time_writers_flagged(self, race_off):
        with race.detected() as tracker:
            _two_writer_sim()
        report = tracker.report()
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.when == 5.0
        assert finding.state == "store:shared"
        assert finding.a_mode == "w" and finding.b_mode == "w"
        # both schedule sites point into this test file
        assert any("test_race.py" in path for path, _, _ in finding.a_site)
        assert any("test_race.py" in path for path, _, _ in finding.b_site)
        assert "insertion-sequence accident" in finding.format()

    def test_schedule_edge_orders_same_time_chain(self, race_off):
        """A scheduling B at zero delay creates a happens-before edge:
        not a race even though both write at the same instant."""
        with race.detected() as tracker:
            sim = Simulator()
            store = Store(sim, name="chained")

            def second():
                store.try_put("b")

            def first():
                store.try_put("a")
                sim.schedule_callback(0.0, second)

            sim.schedule_callback(5.0, first)
            sim.run()
        assert tracker.report().findings == []

    def test_distinct_timestamps_never_race(self, race_off):
        with race.detected() as tracker:
            sim = Simulator()
            store = Store(sim, name="timed")
            sim.schedule_callback(1.0, store.try_put, "a")
            sim.schedule_callback(2.0, store.try_put, "b")
            sim.run()
        assert tracker.report().findings == []

    def test_concurrent_reads_not_flagged(self, race_off):
        with race.detected() as tracker:
            sim = Simulator()
            store = Store(sim, name="readers")

            def reader():
                store.try_get()  # empty store: a read

            sim.schedule_callback(3.0, reader)
            sim.schedule_callback(3.0, reader)
            sim.run()
        assert tracker.report().findings == []

    def test_duplicate_pairs_deduplicate_with_count(self, race_off):
        with race.detected() as tracker:
            sim = Simulator()
            store = Store(sim, name="hot")
            for t in (1.0, 2.0, 3.0):
                sim.schedule_callback(t, store.try_put, "x")
                sim.schedule_callback(t, store.try_put, "y")
            sim.run()
        findings = tracker.report().findings
        assert len(findings) == 1
        assert findings[0].count == 3

    def test_construction_accesses_ignored(self, race_off):
        """Accesses outside the event loop (setup/teardown) cannot race."""
        with race.detected() as tracker:
            sim = Simulator()
            store = Store(sim, name="setup")
            store.try_put("built")  # no executing entry
            sim.run()
        report = tracker.report()
        assert report.findings == []
        assert report.accesses == 0


class TestTieOrders:
    def test_fifo_matches_unmonitored_order(self, race_off):
        def run(tie, seed=None):
            order = []
            with race.detected(tie=tie, seed=seed):
                sim = Simulator()
                for name in ("a", "b", "c"):
                    sim.schedule_callback(1.0, order.append, name)
                sim.run()
            return order

        assert run("fifo") == ["a", "b", "c"]
        assert run("lifo") == ["c", "b", "a"]
        shuffled = run("random", seed=7)
        assert sorted(shuffled) == ["a", "b", "c"]
        assert run("random", seed=7) == shuffled  # seeded = reproducible

    def test_unknown_tie_rejected(self):
        with pytest.raises(ValueError):
            race.RaceTracker(tie="sorted")

    def test_trace_records_when_and_label(self, race_off):
        with race.detected() as tracker:
            sim = Simulator()
            sim.schedule_callback(2.0, lambda: None)
            sim.run()
        assert len(tracker.trace) == 1
        when, label = tracker.trace[0]
        assert when == 2.0
        assert label.startswith("cb:")


class TestInstallation:
    def test_off_by_default_zero_state(self, race_off):
        sim = Simulator()
        assert sim._mon is None
        assert engine._monitor_factory is None
        assert engine.access_hook is None

    def test_context_manager_restores_previous_hooks(self, race_off):
        with race.detected():
            assert race.current() is not None
            assert engine._monitor_factory is not None
        assert race.current() is None
        assert engine._monitor_factory is None

    def test_enable_disable(self, race_off):
        tracker = race.enable()
        try:
            assert race.current() is tracker
            assert Simulator()._mon is tracker
        finally:
            race.disable()
        assert race.current() is None

    def test_repro_race_env_arms_on_import(self):
        repo_src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_src) + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_RACE"] = "1"
        code = (
            "import repro.analysis, repro.analysis.race as r;"
            "assert r.current() is not None"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr

    def test_report_summary_mentions_totals(self, race_off):
        with race.detected() as tracker:
            _two_writer_sim()
        report = tracker.report()
        assert "1 potential race(s)" in report.summary()
        assert report.entries == 2
        text = report.format()
        assert "store:shared" in text and "scheduled at" in text
