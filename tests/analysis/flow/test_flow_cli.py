"""Acceptance tests for ``python -m repro.analysis --flow`` and the
baseline workflow (both simflow and simlint sides)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD = FIXTURES / "typestate_bad.py"


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=False,
    )


class TestFlowCli:
    def test_src_tree_is_clean(self):
        result = run_cli("--flow", "src", "benchmarks", "examples")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_fixture_fails_with_findings(self):
        result = run_cli("--flow", str(BAD))
        assert result.returncode == 1
        assert "flow-segment-leak" in result.stdout
        assert "witness path:" in result.stdout
        assert "finding(s)" in result.stderr

    def test_json_format(self):
        result = run_cli("--flow", "--format", "json", str(BAD))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["count"] == len(payload["findings"]) > 0
        assert payload["suppressed"] == 0
        finding = payload["findings"][0]
        assert {"path", "line", "col", "rule", "message", "function", "witness"} \
            <= set(finding)

    def test_check_selection(self):
        result = run_cli(
            "--flow", "--flow-checks", "determinism", str(BAD)
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_unknown_check_is_usage_error(self):
        result = run_cli("--flow", "--flow-checks", "bogus", "src")
        assert result.returncode == 2
        assert "unknown flow check" in result.stderr
        assert "typestate" in result.stderr

    def test_write_baseline_requires_baseline(self):
        result = run_cli("--flow", "--write-baseline", str(BAD))
        assert result.returncode == 2
        assert "--write-baseline requires --baseline" in result.stderr


class TestBaselineRoundtrip:
    def test_flow_baseline_suppresses_everything(self, tmp_path):
        baseline = tmp_path / "flow_baseline.json"
        wrote = run_cli("--flow", "--baseline", str(baseline), "--write-baseline", str(BAD))
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr
        assert baseline.exists()
        replay = run_cli("--flow", "--baseline", str(baseline), str(BAD))
        assert replay.returncode == 0, replay.stdout + replay.stderr
        assert "suppressed" in replay.stderr

    def test_baseline_is_count_aware(self, tmp_path):
        """A baseline of the clean fixture does not forgive the bad one."""
        baseline = tmp_path / "empty_baseline.json"
        wrote = run_cli(
            "--flow",
            "--baseline",
            str(baseline),
            "--write-baseline",
            str(FIXTURES / "typestate_clean.py"),
        )
        assert wrote.returncode == 0
        replay = run_cli("--flow", "--baseline", str(baseline), str(BAD))
        assert replay.returncode == 1

    def test_malformed_baseline_is_infra_error(self, tmp_path):
        baseline = tmp_path / "broken.json"
        baseline.write_text("{not json")
        result = run_cli("--flow", "--baseline", str(baseline), str(BAD))
        assert result.returncode == 2

    def test_simlint_baseline_roundtrip(self, tmp_path):
        fixture = REPO_ROOT / "tests" / "analysis" / "fixtures" / "bad_example.py"
        baseline = tmp_path / "lint_baseline.json"
        wrote = run_cli("--baseline", str(baseline), "--write-baseline", str(fixture))
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr
        replay = run_cli("--baseline", str(baseline), str(fixture))
        assert replay.returncode == 0, replay.stdout + replay.stderr
        payload = run_cli(
            "--format", "json", "--baseline", str(baseline), str(fixture)
        )
        data = json.loads(payload.stdout)
        assert data["count"] == 0
        assert data["suppressed"] > 0
