"""Typestate checking: one finding per fixture violation, with the
right rule and a usable witness path; no findings on clean idioms or
on the real tree."""

import pytest

from repro.analysis.flow import analyze_paths, analyze_program
from repro.analysis.flow.typestate import check_program

from tests.analysis.flow.conftest import FIXTURES, fixture_program, make_program


@pytest.fixture(scope="module")
def bad_findings():
    return check_program(fixture_program("typestate_bad.py"))


def findings_in(findings, function):
    return [f for f in findings if f.function.endswith(function)]


class TestFixtureViolations:
    def test_one_finding_per_function(self, bad_findings):
        by_function = {}
        for finding in bad_findings:
            by_function.setdefault(finding.function.rsplit(".", 1)[-1], []).append(
                finding
            )
        assert {
            name: len(found) for name, found in by_function.items()
        } == {
            "leaks_on_exit": 1,
            "leaks_on_error": 1,
            "drops_result": 1,
            "frees_twice": 1,
            "writes_after_free": 1,
            "reads_after_repost": 1,
            "uses_after_destroy": 1,
            "cancels_twice": 1,
        }

    def test_exit_leak(self, bad_findings):
        (finding,) = findings_in(bad_findings, "leaks_on_exit")
        assert finding.rule == "flow-segment-leak"
        assert "reaches the function exit without free()" in finding.message
        # reported at the creation site, with the creation as witness
        assert "offset = session.alloc(n)" in open(
            FIXTURES / "typestate_bad.py"
        ).read().splitlines()[finding.line - 1]
        assert any("created by alloc()" in step for step in finding.witness)

    def test_error_path_leak_names_the_raiser(self, bad_findings):
        (finding,) = findings_in(bad_findings, "leaks_on_error")
        assert finding.rule == "flow-segment-leak"
        assert "an exception can unwind leaks_on_error()" in finding.message
        assert any(
            "session.write_segment(offset, data)" in step and "may raise" in step
            for step in finding.witness
        )

    def test_dropped_result(self, bad_findings):
        (finding,) = findings_in(bad_findings, "drops_result")
        assert finding.rule == "flow-segment-leak"
        assert "result of alloc() discarded" in finding.message

    def test_double_free(self, bad_findings):
        (finding,) = findings_in(bad_findings, "frees_twice")
        assert finding.rule == "flow-use-after-free"
        assert "double free" in finding.message
        # witness walks the first free before flagging the second
        assert any("allocated -> freed" in step for step in finding.witness)

    def test_write_after_free(self, bad_findings):
        (finding,) = findings_in(bad_findings, "writes_after_free")
        assert finding.rule == "flow-use-after-free"
        assert "write to a freed segment buffer" in finding.message

    def test_descriptor_reuse(self, bad_findings):
        (finding,) = findings_in(bad_findings, "reads_after_repost")
        assert finding.rule == "flow-descriptor-reuse"
        assert "repost_free" in finding.message

    def test_endpoint_use_after_destroy(self, bad_findings):
        (finding,) = findings_in(bad_findings, "uses_after_destroy")
        assert finding.rule == "flow-endpoint-use"
        assert "destroyed endpoint" in finding.message

    def test_stale_timer(self, bad_findings):
        (finding,) = findings_in(bad_findings, "cancels_twice")
        assert finding.rule == "flow-stale-timer"
        assert "already-cancelled" in finding.message


class TestCleanIdioms:
    def test_clean_fixture_has_no_findings(self):
        findings = check_program(fixture_program("typestate_clean.py"))
        assert findings == []


class TestInterprocedural:
    def test_helper_free_summary_catches_double_free(self):
        program = make_program(
            mod="""
            def release(session, offset, n):
                session.free(offset, n)

            def caller(session, n):
                offset = session.alloc(n)
                release(session, offset, n)
                session.free(offset, n)
            """
        )
        findings = check_program(program)
        assert [f.rule for f in findings] == ["flow-use-after-free"]
        (finding,) = findings
        assert any("release->free" in step for step in finding.witness)

    def test_helper_free_summary_clears_the_leak(self):
        program = make_program(
            mod="""
            def release(session, offset, n):
                session.free(offset, n)

            def caller(session, n):
                offset = session.alloc(n)
                release(session, offset, n)
            """
        )
        assert check_program(program) == []


class TestDisables:
    def test_simflow_disable_comment_suppresses(self):
        program = make_program(
            mod="""
            def leaky(session, n):
                offset = session.alloc(n)  # simflow: disable=flow-segment-leak
                return None
            """
        )
        assert analyze_program(program, ["typestate"]) == []


def test_real_tree_is_clean():
    """Satellite 1 regression: the leaks simflow found in the send
    paths are fixed; the whole tree analyses clean."""
    findings = analyze_paths(["src", "benchmarks", "examples"])
    assert findings == [], [f.format() for f in findings]
