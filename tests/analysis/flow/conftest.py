"""Shared helpers for the simflow test suite."""

import textwrap
from pathlib import Path

from repro.analysis.flow.callgraph import ModuleIndex, Program
from repro.analysis.linter import FileContext

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def make_program(**modules) -> Program:
    """Build a :class:`Program` from in-memory sources.

    Each keyword is a module: ``make_program(net="def f(): ...")``
    indexes the source under the synthetic path ``src/repro/net.py``,
    so cross-module import resolution (``from repro.net import f``)
    works exactly as it does on the real tree.
    """
    indexes = [
        ModuleIndex(FileContext(f"src/repro/{name}.py", textwrap.dedent(src)))
        for name, src in modules.items()
    ]
    return Program(indexes)


def fixture_program(*names) -> Program:
    return Program.from_paths([str(FIXTURES / name) for name in names])
