"""Call-graph construction on the tricky shapes from the real tree."""

import ast
import textwrap

from repro.analysis.flow.callgraph import own_nodes

from tests.analysis.flow.conftest import make_program


def edge_pairs(program):
    return {(site.caller, site.callee, site.kind) for site in program.edges}


class TestResolution:
    def test_module_function_call(self):
        program = make_program(
            mod="""
            def helper():
                return 1

            def caller():
                return helper()
            """
        )
        assert ("repro.mod.caller", "repro.mod.helper", "call") in edge_pairs(
            program
        )

    def test_self_method_through_imported_base(self):
        program = make_program(
            base="""
            class Device:
                def start(self):
                    pass
            """,
            derived="""
            from repro.base import Device

            class AtmDevice(Device):
                def boot(self):
                    self.start()
            """,
        )
        assert (
            "repro.derived.AtmDevice.boot",
            "repro.base.Device.start",
            "call",
        ) in edge_pairs(program)

    def test_imported_function_cross_module(self):
        program = make_program(
            util="""
            def checksum(data):
                return sum(data)
            """,
            net="""
            from repro.util import checksum

            def deliver(data):
                return checksum(data)
            """,
        )
        assert (
            "repro.net.deliver",
            "repro.util.checksum",
            "call",
        ) in edge_pairs(program)

    def test_decorated_function_still_resolves(self):
        program = make_program(
            mod="""
            def wrap(fn):
                return fn

            @wrap
            def handler():
                pass

            def boot(sim):
                sim.schedule_callback(0.0, handler)
            """
        )
        assert (
            "repro.mod.boot",
            "repro.mod.handler",
            "scheduled",
        ) in edge_pairs(program)
        assert "repro.mod.handler" in program.callback_roots

    def test_attribute_receiver_with_inferred_type(self):
        program = make_program(
            mod="""
            class Pool:
                def drain(self):
                    pass

            class Owner:
                def __init__(self):
                    self.pool = Pool()

                def stop(self):
                    self.pool.drain()
            """
        )
        assert (
            "repro.mod.Owner.stop",
            "repro.mod.Pool.drain",
            "call",
        ) in edge_pairs(program)


class TestScheduledTargets:
    def test_schedule_callback_nested_function(self):
        program = make_program(
            mod="""
            def boot(sim):
                def on_fire():
                    pass
                sim.schedule_callback(1.0, on_fire)
            """
        )
        assert "repro.mod.boot.on_fire" in program.callback_roots

    def test_schedule_callback_lambda(self):
        program = make_program(
            mod="""
            def boot(sim):
                sim.schedule_callback(1.0, lambda: None)
            """
        )
        assert any("<lambda>" in q for q in program.callback_roots)

    def test_schedule_callback_single_assignment_alias(self):
        program = make_program(
            mod="""
            def handler():
                pass

            def boot(sim):
                cb = handler
                sim.schedule_callback(0.0, cb)
            """
        )
        assert "repro.mod.handler" in program.callback_roots

    def test_generator_process_target(self):
        program = make_program(
            mod="""
            class Device:
                def start(self, sim):
                    sim.process(self._rx_proc())

                def _rx_proc(self):
                    yield 1
            """
        )
        assert "repro.mod.Device._rx_proc" in program.callback_roots
        rx = program.functions["repro.mod.Device._rx_proc"]
        assert rx.is_generator

    def test_schedule_timer_target_is_a_root(self):
        program = make_program(
            mod="""
            def on_timeout():
                pass

            def arm(sim):
                return sim.schedule_timer(5.0, on_timeout)
            """
        )
        assert "repro.mod.on_timeout" in program.callback_roots


class TestReachability:
    def test_reachable_from_callbacks_is_transitive(self):
        program = make_program(
            mod="""
            def leaf():
                pass

            def middle():
                leaf()

            def tick():
                middle()

            def unrelated():
                pass

            def boot(sim):
                sim.schedule_callback(0.0, tick)
            """
        )
        reachable = program.reachable_from_callbacks()
        assert {"repro.mod.tick", "repro.mod.middle", "repro.mod.leaf"} <= reachable
        assert "repro.mod.unrelated" not in reachable
        assert "repro.mod.boot" not in reachable


class TestOwnNodes:
    def test_does_not_descend_into_nested_defs(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def outer():
                    x = 1
                    def inner():
                        y = 2
                    lamb = lambda: 3
                """
            )
        )
        nodes = list(own_nodes(tree.body[0]))
        assert any(isinstance(n, ast.FunctionDef) for n in nodes)
        names = {
            n.targets[0].id for n in nodes if isinstance(n, ast.Assign)
        }
        assert names == {"x", "lamb"}
        constants = {
            n.value for n in nodes if isinstance(n, ast.Constant)
        }
        assert 2 not in constants
        assert 3 not in constants

    def test_module_scope_stops_at_top_level_functions(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                TABLE = {}

                def fn(sim):
                    sim.schedule_callback(0, fn)
                """
            )
        )
        calls = [n for n in own_nodes(tree) if isinstance(n, ast.Call)]
        assert calls == []
