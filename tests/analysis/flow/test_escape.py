"""Cross-shard escape analysis: reach-through beyond the per-file rule."""

import pytest

from repro.analysis.flow.escape import check_program, scan_module
from repro.analysis.linter import lint_file
from repro.analysis.rules import get_rules

from tests.analysis.flow.conftest import FIXTURES, fixture_program


@pytest.fixture(scope="module")
def findings():
    return check_program(fixture_program("cross_shard_bad.py"))


def in_function(findings, bare):
    return [f for f in findings if f.function.rsplit(".", 1)[-1] == bare]


class TestReachThrough:
    def test_direct_reach(self, findings):
        (finding,) = in_function(findings, "direct_reach")
        assert finding.rule == "flow-cross-shard"
        assert "link.remote_peer.clock" in finding.message
        assert "interact through the shard channel instead" in finding.message

    def test_through_helper_return(self, findings):
        (finding,) = in_function(findings, "helper_reach")
        assert any(
            "get_peer() returns a cut-edge proxy" in step
            for step in finding.witness
        )

    def test_through_stored_self_attribute(self, findings):
        (finding,) = in_function(findings, "peek")
        assert any(
            "self.peer_handle bound to channel.stub" in step
            for step in finding.witness
        )

    def test_handle_itself_is_fine(self, findings):
        assert in_function(findings, "handle_is_fine") == []
        assert in_function(findings, "get_peer") == []


class TestPerFileRuleParity:
    def test_rule_sees_only_the_direct_case(self):
        violations = lint_file(
            str(FIXTURES / "cross_shard_bad.py"),
            get_rules(["cross-shard-state"]),
        )
        assert len(violations) == 1
        assert "link.remote_peer.clock" in violations[0].message
        # the flow pass finds strictly more (helper + stored alias)
        flow = check_program(fixture_program("cross_shard_bad.py"))
        assert len(flow) == 3

    def test_scan_module_is_the_shared_detector(self):
        import ast
        import textwrap

        tree = ast.parse(
            textwrap.dedent(
                """
                def f(link):
                    peer = link.remote_peer
                    return peer.clock
                """
            )
        )
        hits = list(scan_module(tree))
        assert len(hits) == 1
        node, through = hits[0]
        assert node.attr == "clock"
        assert through == "peer"
