"""CFG construction: branch structure and exception edges."""

import ast
import textwrap

from repro.analysis.flow.cfg import EXCEPTION, NORMAL, build_cfg


def cfg_of(src):
    tree = ast.parse(textwrap.dedent(src))
    return build_cfg(tree.body[0])


def node_by_label(cfg, label):
    hits = [n for n in cfg.nodes if n.label == label]
    assert len(hits) == 1, f"{label}: {[n.label for n in cfg.nodes]}"
    return hits[0]


def node_by_line(cfg, src_line_contains, src):
    lines = textwrap.dedent(src).splitlines()
    lineno = next(
        i for i, text in enumerate(lines, start=1) if src_line_contains in text
    )
    hits = [n for n in cfg.nodes if n.line == lineno]
    assert hits, f"no node on line {lineno}"
    return hits[0]


def successors(cfg, node, kind):
    return {dst for dst, k in cfg.succ[node.index] if k == kind}


class TestExceptionEdges:
    def test_bare_call_raises_to_exc_exit(self):
        src = """
            def f(s):
                s.send()
            """
        cfg = cfg_of(src)
        node = node_by_line(cfg, "s.send()", src)
        assert node.may_raise
        assert cfg.exc_exit in successors(cfg, node, EXCEPTION)

    def test_non_raising_whitelist(self):
        cfg = cfg_of(
            """
            def f(host, data):
                yield from host.compute(len(data))
            """
        )
        node = node_by_label(cfg, "expr")
        assert not node.may_raise
        assert not successors(cfg, node, EXCEPTION)

    def test_narrow_handler_also_escapes_outward(self):
        src = """
            def f(s):
                try:
                    s.send()
                except ValueError:
                    s.log()
            """
        cfg = cfg_of(src)
        send = node_by_line(cfg, "s.send()", src)
        handler = node_by_label(cfg, "except")
        exc = successors(cfg, send, EXCEPTION)
        # ValueError handler may not match: both the handler head and
        # the exceptional exit are successors.
        assert handler.index in exc
        assert cfg.exc_exit in exc

    def test_catch_all_handler_swallows(self):
        src = """
            def f(s):
                try:
                    s.send()
                except Exception:
                    s.log()
            """
        cfg = cfg_of(src)
        send = node_by_line(cfg, "s.send()", src)
        exc = successors(cfg, send, EXCEPTION)
        assert node_by_label(cfg, "except").index in exc
        assert cfg.exc_exit not in exc

    def test_finally_routes_exception_onward(self):
        src = """
            def f(s):
                try:
                    s.send()
                finally:
                    s.cleanup()
            """
        cfg = cfg_of(src)
        send = node_by_line(cfg, "s.send()", src)
        join = node_by_label(cfg, "finally")
        assert successors(cfg, send, EXCEPTION) == {join.index}
        cleanup = node_by_line(cfg, "s.cleanup()", src)
        # after the finally body the original exception continues out
        assert cfg.exc_exit in successors(cfg, cleanup, EXCEPTION)


class TestStructure:
    def test_loop_back_edge_and_exit(self):
        src = """
            def f(items):
                for item in items:
                    use(item)
            """
        cfg = cfg_of(src)
        head = node_by_label(cfg, "loop")
        body = node_by_line(cfg, "use(item)", src)
        assert head.index in successors(cfg, body, NORMAL)
        assert cfg.exit in successors(cfg, head, NORMAL)

    def test_if_joins_both_arms(self):
        src = """
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        cfg = cfg_of(src)
        ret = node_by_label(cfg, "return")
        preds = cfg.preds()[ret.index]
        assert len([p for p, k in preds if k == NORMAL]) == 2

    def test_return_through_finally_reaches_exit(self):
        src = """
            def f(s):
                try:
                    return s.value
                finally:
                    s.cleanup()
            """
        cfg = cfg_of(src)
        ret = node_by_label(cfg, "return")
        join = node_by_label(cfg, "finally")
        assert join.index in successors(cfg, ret, NORMAL)
        cleanup = node_by_line(cfg, "s.cleanup()", src)
        assert cfg.exit in successors(cfg, cleanup, NORMAL)

    def test_while_with_break(self):
        src = """
            def f(q):
                while True:
                    item = q.pop()
                    if item is None:
                        break
            """
        cfg = cfg_of(src)
        brk = node_by_label(cfg, "break")
        # break exits the loop: its frontier feeds the function exit
        assert cfg.exit in successors(cfg, brk, NORMAL)
