"""Patterns the typestate checker must NOT flag — test fixture.

Handoff idioms from the real tree: ownership transferred into a
descriptor, reclaimed by a completion process, protected by
try/except, or captured by a closure.
"""


def frees_on_every_path(session, data):
    offset = session.alloc(len(data))
    try:
        session.write_segment(offset, data)
        session.send(offset)
    except Exception:
        session.free(offset, len(data))
        raise
    session.free(offset, len(data))


def hands_ownership_to_descriptor(session, make_desc, data):
    offset = session.alloc(len(data))
    desc = make_desc(offset, len(data))
    return desc


def closure_keeps_the_offset(session, n):
    offset = session.alloc(n)
    return lambda: (offset, n)


def finally_always_frees(session, data):
    offset = session.alloc(len(data))
    try:
        session.write_segment(offset, data)
    finally:
        session.free(offset, len(data))


def stores_into_table(session, table, key, n):
    table[key] = session.alloc(n)
