"""One violation per typestate protocol spec — simflow test fixture.

Analyzed by path, never imported: each function is a minimal witness
for exactly one finding of the typestate checker.
"""


def leaks_on_exit(session, n):
    # flow-segment-leak: reaches the function exit still allocated.
    offset = session.alloc(n)
    return None


def leaks_on_error(session, data):
    # flow-segment-leak: write_segment may raise, skipping the free.
    offset = session.alloc(len(data))
    session.write_segment(offset, data)
    session.free(offset, len(data))


def drops_result(session):
    # flow-segment-leak: alloc result discarded, offset unrecoverable.
    session.alloc(32)


def frees_twice(session, n):
    # flow-use-after-free: double free.
    offset = session.alloc(n)
    session.free(offset, n)
    session.free(offset, n)


def writes_after_free(session, data):
    # flow-use-after-free: write to a freed buffer.
    offset = session.alloc(len(data))
    session.free(offset, len(data))
    session.write(offset, data)


def reads_after_repost(session):
    # flow-descriptor-reuse: payload read after repost_free.
    desc = session.recv_poll()
    session.repost_free(desc)
    return session.peek_payload(desc)


def uses_after_destroy(mux, owner):
    # flow-endpoint-use: operation on a destroyed endpoint.
    ep = mux.create_endpoint()
    mux.destroy_endpoint(ep)
    ep.recv_poll(owner)


def cancels_twice(sim, cb):
    # flow-stale-timer: second cancel may disarm a pooled, reused handle.
    handle = sim.schedule_timer(5.0, cb)
    handle.cancel()
    handle.cancel()
