"""Cross-shard reach-through, three escalating shapes — test fixture.

``direct_reach`` is what the per-file simlint rule already sees;
``helper_reach`` (proxy returned by a helper) and ``Router.peek``
(proxy stored on ``self`` in another method) need the whole-program
escape pass.
"""


def direct_reach(link):
    # one level beyond the stub handle: flagged by rule and flow pass.
    return link.remote_peer.clock


def get_peer(link):
    return link.remote_peer


def helper_reach(link):
    # the proxy arrives through a helper return: flow pass only.
    peer = get_peer(link)
    return peer.clock


class Router:
    def __init__(self, channel):
        self.peer_handle = channel.stub

    def peek(self):
        # the proxy was stored by __init__: flow pass only.
        return self.peer_handle.queue_depth


def handle_is_fine(link):
    # reading/storing/passing the handle itself is not a reach-through.
    if link.remote_peer is None:
        return None
    return link.remote_peer
