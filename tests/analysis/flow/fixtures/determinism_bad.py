"""One site per determinism class — simflow test fixture.

``helper_wall_clock`` / ``helper_unseeded`` / ``iterates_set`` carry
the direct evidence the syntactic rules already see; ``tick`` is the
interprocedural case only the flow pass catches: it is scheduled as an
event callback and calls into the nondeterministic helpers without any
banned call of its own.
"""

import random
import time


def helper_wall_clock():
    # wall-clock: host time, not simulated time.
    return time.time()


def helper_unseeded():
    # unseeded-random: PYTHONHASHSEED-style run-to-run drift.
    return random.random()


def iterates_set(endpoints):
    # unordered-iter: set order depends on the hash seed.
    total = 0
    for ep in {"a", "b", "c"}:
        total += len(ep)
    return total


def seeded_draw(seed):
    # seeded-stochastic, NOT nondeterministic: no finding expected.
    rng = random.Random(seed)
    return rng.random()


def tick():
    # flow-nondet-call: nondeterminism reached only through the call
    # graph — no banned call appears on this line or in this function.
    stamp = helper_wall_clock()
    jitter = helper_unseeded()
    return stamp + jitter


def boot(sim):
    sim.schedule_callback(0.0, tick)
