"""Determinism inference: the purity lattice and its two findings."""

from pathlib import Path

import pytest

from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.purity import (
    NONDET,
    SEEDED,
    SIM_PURE,
    check_program,
    classify,
)
from repro.analysis.linter import iter_python_files, lint_file
from repro.analysis.rules import get_rules

from tests.analysis.flow.conftest import fixture_program, make_program

REPO_ROOT = Path(__file__).resolve().parents[3]


@pytest.fixture(scope="module")
def fixture_prog():
    return fixture_program("determinism_bad.py")


class TestClassification:
    def test_direct_evidence_is_nondet(self, fixture_prog):
        result = classify(fixture_prog)
        assert result.level(qual(fixture_prog, "helper_wall_clock")) == NONDET
        assert result.level(qual(fixture_prog, "helper_unseeded")) == NONDET
        assert result.level(qual(fixture_prog, "iterates_set")) == NONDET

    def test_seeded_is_not_nondet(self, fixture_prog):
        result = classify(fixture_prog)
        assert result.level(qual(fixture_prog, "seeded_draw")) == SEEDED

    def test_nondet_propagates_to_callers(self, fixture_prog):
        result = classify(fixture_prog)
        assert result.level(qual(fixture_prog, "tick")) == NONDET
        assert result.level(qual(fixture_prog, "boot")) == NONDET

    def test_pure_function_stays_pure(self):
        program = make_program(
            mod="""
            def pure(x):
                return x + 1
            """
        )
        assert classify(program).level("repro.mod.pure") == SIM_PURE


class TestFindings:
    def test_direct_sites_become_flow_nondet(self, fixture_prog):
        findings = check_program(fixture_prog)
        nondet = [f for f in findings if f.rule == "flow-nondet"]
        functions = {f.function.rsplit(".", 1)[-1] for f in nondet}
        assert functions == {
            "helper_wall_clock",
            "helper_unseeded",
            "iterates_set",
        }
        assert all("nondeterministic" in f.message for f in nondet)

    def test_seeded_draws_are_not_findings(self, fixture_prog):
        findings = check_program(fixture_prog)
        assert not [
            f for f in findings if f.function.endswith("seeded_draw")
        ]

    def test_interprocedural_case_the_syntactic_rules_miss(self, fixture_prog):
        findings = check_program(fixture_prog)
        calls = [f for f in findings if f.rule == "flow-nondet-call"]
        assert {f.function.rsplit(".", 1)[-1] for f in calls} == {"tick"}
        callees = {f.message for f in calls}
        assert any("helper_wall_clock()" in m for m in callees)
        assert any("helper_unseeded()" in m for m in callees)
        # the witness chain bottoms out at concrete evidence
        for finding in calls:
            assert any("[wall-clock]" in s or "[unseeded-random]" in s
                       for s in finding.witness)
        # ... and the syntactic rules see nothing on those lines
        syntactic = lint_file(
            str(Path(__file__).parent / "fixtures" / "determinism_bad.py"),
            get_rules(["wall-clock", "unseeded-random", "unordered-iter"]),
        )
        flagged_lines = {v.line for v in syntactic}
        assert not flagged_lines & {f.line for f in calls}

    def test_disable_comment_keeps_lattice_clean(self):
        program = make_program(
            mod="""
            import time

            def stamp():
                return time.time()  # simlint: disable=wall-clock
            """
        )
        assert classify(program).level("repro.mod.stamp") == SIM_PURE
        assert check_program(program) == []


def test_parity_with_syntactic_rules_on_real_tree():
    """Acceptance: every wall-clock / unseeded-random / unordered-iter
    site the syntactic rules flag in src/ is rediscovered by the
    determinism pass as a flow-nondet finding at the same line."""
    src = str(REPO_ROOT / "src")
    program = Program.from_paths([src])
    flow_sites = {
        (f.path, f.line) for f in check_program(program) if f.rule == "flow-nondet"
    }
    rules = get_rules(["wall-clock", "unseeded-random", "unordered-iter"])
    for path in iter_python_files([src]):
        for violation in lint_file(path, rules):
            assert (violation.path, violation.line) in flow_sites


def qual(program, bare):
    hits = [q for q in program.functions if q.rsplit(".", 1)[-1] == bare]
    assert len(hits) == 1, hits
    return hits[0]
