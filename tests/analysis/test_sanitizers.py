"""Runtime sanitizer tests: segment ownership and ring invariants."""

import pytest

from repro.analysis import sanitize
from repro.core import (
    CommSegment,
    DescriptorRing,
    FreeDescriptor,
    QueueInvariantError,
    SegmentOwnershipError,
)
from repro.core.descriptors import SendDescriptor
from repro.sim import Simulator


# -- segment ownership: always-on hardening (no sanitizer needed) ---------

def test_double_free_raises_without_sanitizer():
    seg = CommSegment(256, owner="app")
    off = seg.alloc(32)
    seg.free(off, 32)
    with pytest.raises(SegmentOwnershipError):
        seg.free(off, 32)


def test_free_of_never_allocated_offset():
    seg = CommSegment(256)
    with pytest.raises(SegmentOwnershipError, match="never-allocated"):
        seg.free(64, 32)


def test_free_length_mismatch():
    seg = CommSegment(256)
    off = seg.alloc(64)
    with pytest.raises(SegmentOwnershipError, match="length mismatch"):
        seg.free(off, 8)


def test_overlapping_free_cuts_into_live_allocation():
    seg = CommSegment(256)
    off = seg.alloc(64)
    with pytest.raises(SegmentOwnershipError, match="overlapping free"):
        seg.free(off + 8, 16)


def test_matching_free_still_works():
    seg = CommSegment(256)
    off = seg.alloc(40)
    seg.free(off, 40)
    assert seg.live_allocations == 0
    assert seg.free_bytes == 256


# -- segment sanitizer (REPRO_SANITIZE) -----------------------------------

def test_sanitizer_classifies_double_free(sanitizers_on):
    seg = CommSegment(256, owner="app")
    off = seg.alloc(32)
    seg.free(off, 32)
    with pytest.raises(SegmentOwnershipError, match="double free"):
        seg.free(off, 32)


def test_use_after_free_write_detected(sanitizers_on):
    seg = CommSegment(256, owner="app")
    off = seg.alloc(32)
    seg.free(off, 32)
    with pytest.raises(SegmentOwnershipError, match="use-after-free"):
        seg.write(off, b"x" * 8)


def test_realloc_unpoisons_region(sanitizers_on):
    seg = CommSegment(64)
    off = seg.alloc(32)
    seg.free(off, 32)
    off2 = seg.alloc(32)
    assert off2 == off
    seg.write(off2, b"y" * 32)  # no longer poisoned
    seg.free(off2, 32)


def test_leak_at_teardown_detected(sanitizers_on):
    seg = CommSegment(256, owner="leaky")
    seg.alloc(16)
    with pytest.raises(SegmentOwnershipError, match="leak"):
        seg.check_teardown()


def test_sanitized_context_reports_leaks():
    with pytest.raises(SegmentOwnershipError, match="leak"):
        with sanitize.sanitized():
            seg = CommSegment(256, owner="leaky")
            seg.alloc(16)


def test_sanitized_context_clean_exit():
    before = sanitize.enabled()
    with sanitize.sanitized():
        seg = CommSegment(256)
        off = seg.alloc(16)
        seg.free(off, 16)
    assert sanitize.enabled() == before


def test_write_after_free_is_unchecked_when_off(sanitizers_off):
    assert not sanitize.enabled()
    seg = CommSegment(256)
    off = seg.alloc(32)
    seg.free(off, 32)
    seg.write(off, b"raw access stays legal")  # raw offsets are the primitive
    assert seg._san is None  # zero per-write overhead beyond a None check


def test_fixture_armed_runtime(sanitized_runtime):
    seg = CommSegment(128)
    off = seg.alloc(24)
    assert seg._san is not None
    seg.free(off, 24)


# -- descriptor ring invariants -------------------------------------------

def test_ring_recycle_before_consume(sanitizers_on):
    sim = Simulator()
    ring = DescriptorRing(sim, capacity=4, name="recv")
    desc = FreeDescriptor(offset=0, length=64)
    assert ring.push(desc)
    with pytest.raises(QueueInvariantError, match="recycled"):
        ring.push(desc)


def test_ring_repush_after_pop_is_legal(sanitizers_on):
    sim = Simulator()
    ring = DescriptorRing(sim, capacity=4)
    desc = FreeDescriptor(offset=0, length=64)
    assert ring.push(desc)
    assert ring.pop() is desc
    assert ring.push(desc)


def test_ring_overlapping_free_buffers(sanitizers_on):
    sim = Simulator()
    ring = DescriptorRing(sim, capacity=4, name="free")
    assert ring.push(FreeDescriptor(offset=0, length=64))
    with pytest.raises(QueueInvariantError, match="overlaps"):
        ring.push(FreeDescriptor(offset=32, length=64))


def test_ring_send_descriptors_may_repeat_buffers(sanitizers_on):
    # Send paths legitimately reuse the same staging buffer; only the
    # *free queue* (NI-owned scatter targets) checks overlap.
    sim = Simulator()
    ring = DescriptorRing(sim, capacity=4)
    a = SendDescriptor(channel=0, bufs=((0, 64),))
    b = SendDescriptor(channel=0, bufs=((0, 64),))
    assert ring.push(a)
    assert ring.push(b)


def test_ring_drain_clears_tracking(sanitizers_on):
    sim = Simulator()
    ring = DescriptorRing(sim, capacity=4)
    desc = FreeDescriptor(offset=0, length=64)
    assert ring.push(desc)
    assert ring.drain() == [desc]
    assert ring.push(desc)


def test_ring_overflow_invariant_direct():
    # Normal pushes back-pressure before the invariant can trip; the
    # overflow check guards against code bypassing push().
    san = sanitize.RingSanitizer("bypass")
    with pytest.raises(QueueInvariantError, match="overflow"):
        san.on_push(object(), occupancy=4, capacity=4)


def test_rings_have_no_sanitizer_when_off(sanitizers_off):
    assert not sanitize.enabled()
    sim = Simulator()
    ring = DescriptorRing(sim, capacity=2)
    assert ring._san is None
    desc = FreeDescriptor(offset=0, length=64)
    assert ring.push(desc)
    assert ring.pop() is desc


# -- end-to-end: a full cluster run under the sanitizer -------------------

def test_cluster_rtt_run_is_sanitizer_clean(sanitized_runtime):
    from repro.core import UNetCluster

    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    sa = cluster.open_session("alice", "san-a")
    sb = cluster.open_session("bob", "san-b")
    ch_a, ch_b = cluster.connect_sessions(sa, sb, service="san-svc")
    payload = bytes(48)
    got = []
    posted = {"a": [], "b": []}

    def pinger():
        posted["a"] = yield from sa.provide_receive_buffers(4)
        yield from sa.send_copy(ch_a.ident, payload)
        desc = yield from sa.recv()
        got.append(sa.peek_payload(desc))
        if not desc.is_inline:
            yield from sa.repost_free(desc)

    def ponger():
        posted["b"] = yield from sb.provide_receive_buffers(4)
        desc = yield from sb.recv()
        yield from sb.send_copy(ch_b.ident, sb.peek_payload(desc))
        if not desc.is_inline:
            yield from sb.repost_free(desc)

    sim.process(pinger(), name="san.pinger")
    sim.process(ponger(), name="san.ponger")
    sim.run()
    assert got == [payload]
    # Tear down: return every posted receive buffer so the fixture's
    # leak check sees a clean slate.
    for session, offsets in ((sa, posted["a"]), (sb, posted["b"])):
        for offset in offsets:
            session.free(offset, 4160)
