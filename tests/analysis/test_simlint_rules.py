"""Rule-by-rule simlint unit tests on small source snippets."""

import textwrap

from repro.analysis import linter
from repro.analysis.rules import all_rules, get_rules


def run_rule(rule_name, source):
    source = textwrap.dedent(source)
    return linter.lint_file("snippet.py", get_rules([rule_name]), source=source)


def run_all(source):
    source = textwrap.dedent(source)
    return linter.lint_file("snippet.py", all_rules(), source=source)


def test_registry_has_all_rules():
    names = {rule.name for rule in all_rules()}
    assert names == {
        "wall-clock",
        "unseeded-random",
        "or-default",
        "yield-event",
        "callback-arity",
        "cross-shard-state",
        "unordered-iter",
        "slots-hot-path",
        "silent-except",
        "mutable-default",
        "schedule-shared-state",
        "direct-tracer-append",
        "direct-heapq",
        "unguarded-obs-call",
        "unbatched-candidate",
    }


# -- wall-clock -----------------------------------------------------------

def test_wall_clock_flags_time_time():
    violations = run_rule("wall-clock", """
        import time

        def cost():
            return time.time()
    """)
    assert len(violations) == 1
    assert violations[0].rule == "wall-clock"
    assert violations[0].line == 5


def test_wall_clock_flags_from_import_and_datetime():
    violations = run_rule("wall-clock", """
        from time import perf_counter
        import datetime

        def f():
            return perf_counter(), datetime.datetime.now()
    """)
    assert len(violations) == 2


def test_wall_clock_allows_sim_now():
    assert run_rule("wall-clock", """
        def f(sim):
            return sim.now + 1.5
    """) == []


# -- unseeded-random ------------------------------------------------------

def test_unseeded_random_flags_global_rng():
    violations = run_rule("unseeded-random", """
        import random

        def jitter():
            return random.random()
    """)
    assert len(violations) == 1
    assert violations[0].rule == "unseeded-random"


def test_unseeded_random_flags_unseeded_constructor():
    violations = run_rule("unseeded-random", """
        import random

        rng = random.Random()
    """)
    assert len(violations) == 1


def test_unseeded_random_allows_seeded_instance():
    assert run_rule("unseeded-random", """
        import random

        rng = random.Random(42)

        def jitter():
            return rng.random()
    """) == []


# -- or-default -----------------------------------------------------------

def test_or_default_flags_constructor_fallback():
    violations = run_rule("or-default", """
        def __init__(self, tracer=None):
            self.tracer = tracer or Tracer()
    """)
    assert len(violations) == 1
    assert "tracer if tracer is not None else Tracer(...)" in violations[0].message


def test_or_default_allows_explicit_none_check():
    assert run_rule("or-default", """
        def __init__(self, tracer=None):
            self.tracer = tracer if tracer is not None else Tracer()
    """) == []


def test_or_default_ignores_lowercase_calls():
    # `x or make()` may be a deliberate truthiness fallback; only
    # Class-looking constructors are the injected-collaborator pattern.
    assert run_rule("or-default", """
        def f(x):
            return x or make()
    """) == []


# -- yield-event ----------------------------------------------------------

def test_yield_event_flags_tuple_yield():
    violations = run_rule("yield-event", """
        def proc(sim):
            yield (sim, 1)
    """)
    assert len(violations) == 1
    assert "Tuple" in violations[0].message


def test_yield_event_flags_bare_yield_mid_body():
    violations = run_rule("yield-event", """
        def proc(sim):
            x = 1
            yield
    """)
    assert len(violations) == 1


def test_yield_event_allows_bare_yield_after_return():
    assert run_rule("yield-event", """
        def callback(uam, ch, msg):
            uam.count += 1
            return
            yield
    """) == []


def test_yield_event_after_return_in_nested_function():
    # Regression: yields inside a nested def must be judged against the
    # nested function's own statement list, not the enclosing one.
    assert run_rule("yield-event", """
        def outer():
            def callback(uam, ch, msg):
                uam.count += 1
                return
                yield
            return callback
    """) == []


def test_yield_event_no_duplicate_reports_in_try_block():
    violations = run_rule("yield-event", """
        def proc(sim):
            try:
                yield 1
            finally:
                pass
    """)
    assert len(violations) == 1


def test_yield_event_exempts_contextmanager():
    assert run_rule("yield-event", """
        from contextlib import contextmanager

        @contextmanager
        def scope():
            yield
    """) == []


def test_yield_event_allows_event_yields():
    assert run_rule("yield-event", """
        def proc(sim, ring):
            yield sim.timeout(1.0)
            desc = yield ring.wait_nonempty()
            yield from other(sim)
    """) == []


# -- callback-arity -------------------------------------------------------

def test_callback_arity_flags_module_function_mismatch():
    violations = run_rule("callback-arity", """
        def fire(a, b):
            return a + b

        def f(sim):
            sim.schedule_callback(1.0, fire, 1, 2, 3)
    """)
    assert len(violations) == 1
    assert "takes 2..2" in violations[0].message


def test_callback_arity_flags_self_method_mismatch():
    violations = run_rule("callback-arity", """
        class NI:
            def deliver(self, cell):
                pass

            def f(self, sim):
                sim.schedule_callback_at(9.0, self.deliver)
    """)
    assert len(violations) == 1


def test_callback_arity_allows_matching_calls():
    assert run_rule("callback-arity", """
        def fire(a, b=0):
            return a + b

        class NI:
            def deliver(self, cell):
                pass

            def f(self, sim):
                sim.schedule_callback(1.0, fire, 1)
                sim.schedule_callback(1.0, fire, 1, 2)
                sim.schedule_callback(2.0, self.deliver, "cell")
                sim.schedule_callback(3.0, lambda: None)
    """) == []


def test_callback_arity_skips_unresolvable_callees():
    assert run_rule("callback-arity", """
        def f(sim, handler):
            sim.schedule_callback(1.0, handler, 1, 2, 3)
    """) == []


# -- unordered-iter -------------------------------------------------------

def test_unordered_iter_flags_set_literal_loop():
    violations = run_rule("unordered-iter", """
        def f(schedule):
            for name in {"a", "b"}:
                schedule(name)
    """)
    assert len(violations) == 1


def test_unordered_iter_flags_set_bound_name():
    violations = run_rule("unordered-iter", """
        def f(schedule):
            pending = set()
            pending.add("x")
            for item in pending:
                schedule(item)
    """)
    assert len(violations) == 1


def test_unordered_iter_allows_sorted_iteration():
    assert run_rule("unordered-iter", """
        def f(schedule):
            pending = set()
            for item in sorted(pending):
                schedule(item)
            total = sum(x for x in pending)
    """) == []


def test_unordered_iter_allows_lists_and_dicts():
    assert run_rule("unordered-iter", """
        def f(schedule, table):
            for item in [1, 2, 3]:
                schedule(item)
            for key in table:
                schedule(key)
    """) == []


# -- slots-hot-path -------------------------------------------------------

def test_slots_hot_path_flags_unslotted_subclass():
    violations = run_rule("slots-hot-path", """
        from repro.sim import Event

        class UpcallEvent(Event):
            pass
    """)
    assert len(violations) == 1
    assert "__slots__" in violations[0].message


def test_slots_hot_path_allows_slotted_subclass():
    assert run_rule("slots-hot-path", """
        from repro.sim.engine import Event

        class UpcallEvent(Event):
            __slots__ = ("channel",)
    """) == []


def test_slots_hot_path_ignores_unregistered_bases():
    assert run_rule("slots-hot-path", """
        class Plain:
            pass

        class Child(Plain):
            pass
    """) == []


# -- silent-except --------------------------------------------------------

def test_silent_except_flags_bare_except():
    violations = run_rule("silent-except", """
        def f(ring):
            try:
                return ring.pop()
            except:
                pass
    """)
    assert len(violations) == 1


def test_silent_except_flags_broad_silent_handler():
    violations = run_rule("silent-except", """
        def f(ring):
            try:
                return ring.pop()
            except Exception:
                pass
    """)
    assert len(violations) == 1


def test_silent_except_allows_narrow_or_counted_handlers():
    assert run_rule("silent-except", """
        def f(ring, stats):
            try:
                return ring.pop()
            except IndexError:
                pass
            except Exception:
                stats.dropped += 1
                raise
    """) == []


# -- mutable-default ------------------------------------------------------

def test_mutable_default_flags_literal_containers():
    violations = run_rule("mutable-default", """
        def record(sample, buf=[]):
            buf.append(sample)
            return buf

        def index(key, table={}):
            return table.setdefault(key, 0)
    """)
    assert len(violations) == 2
    assert all(v.rule == "mutable-default" for v in violations)
    assert "shared by every call" in violations[0].message


def test_mutable_default_flags_constructor_and_kwonly():
    violations = run_rule("mutable-default", """
        from collections import deque

        def pump(sim, *, backlog=deque(), seen=set()):
            return backlog, seen
    """)
    assert len(violations) == 2


def test_mutable_default_flags_lambda():
    violations = run_rule("mutable-default", """
        f = lambda x, acc=[]: acc + [x]
    """)
    assert len(violations) == 1
    assert "<lambda>" in violations[0].message


def test_mutable_default_allows_none_and_immutables():
    assert run_rule("mutable-default", """
        def f(a, b=None, c=0, d=1.5, e="x", g=(), h=frozenset()):
            buf = [] if b is None else b
            return buf
    """) == []


# -- schedule-shared-state ------------------------------------------------

def test_schedule_shared_state_flags_module_global_mutation():
    violations = run_rule("schedule-shared-state", """
        PENDING = []

        def fire(item):
            PENDING.append(item)

        def kick(sim, item):
            sim.schedule_callback(0.0, fire, item)
    """)
    assert len(violations) == 1
    assert "module-level 'PENDING'" in violations[0].message


def test_schedule_shared_state_flags_closure_mutation():
    violations = run_rule("schedule-shared-state", """
        def build(sim):
            inbox = []

            def deliver(msg):
                inbox.append(msg)

            sim.schedule_callback(0, deliver, "hello")
            return inbox
    """)
    assert len(violations) == 1
    assert "closure-shared 'inbox'" in violations[0].message


def test_schedule_shared_state_flags_schedule_at_now():
    violations = run_rule("schedule-shared-state", """
        TABLE = {}

        class NI:
            def poke(self, key):
                TABLE[key] = 1

            def kick(self, key):
                self.sim.schedule_callback_at(self.sim.now, self.poke, key)
    """)
    assert len(violations) == 1


def test_schedule_shared_state_flags_lambda_mutation():
    violations = run_rule("schedule-shared-state", """
        def build(sim):
            seen = set()
            sim.schedule_callback(0, lambda: seen.add(1))
    """)
    assert len(violations) == 1


def test_schedule_shared_state_allows_time_separated_callbacks():
    assert run_rule("schedule-shared-state", """
        PENDING = []

        def fire(item):
            PENDING.append(item)

        def kick(sim, item):
            sim.schedule_callback(1.0, fire, item)
            sim.schedule_callback(sim.cell_time, fire, item)
    """) == []


def test_schedule_shared_state_allows_self_state_mutation():
    # instance state belongs to the scheduling object; the rule targets
    # module/closure sharing, the sanitizer hooks cover object state
    assert run_rule("schedule-shared-state", """
        class NI:
            def poke(self, key):
                self.table[key] = 1
                self.count += 1

            def kick(self, key):
                self.sim.schedule_callback(0.0, self.poke, key)
    """) == []


def test_schedule_shared_state_allows_pure_callbacks():
    assert run_rule("schedule-shared-state", """
        def build(sim):
            inbox = []

            def report(msg):
                return len(inbox) + len(msg)

            sim.schedule_callback(0, report, "hello")
    """) == []


# -- disable comments -----------------------------------------------------

def test_line_disable_comment_suppresses_one_rule():
    assert run_rule("wall-clock", """
        import time

        def f():
            return time.time()  # simlint: disable=wall-clock
    """) == []


def test_line_disable_all_rules():
    assert run_all("""
        import time

        def f():
            return time.time()  # simlint: disable
    """) == []


def test_file_disable_comment():
    assert run_rule("wall-clock", """
        # simlint: disable-file=wall-clock
        import time

        def f():
            return time.time()
    """) == []


def test_disable_comment_tolerates_trailing_prose():
    assert run_rule("wall-clock", """
        # simlint: disable-file=wall-clock -- harness measures real time
        import time

        def f():
            return time.time()
    """) == []


def test_disable_comment_is_rule_specific():
    violations = run_rule("wall-clock", """
        import time

        def f():
            return time.time()  # simlint: disable=unordered-iter
    """)
    assert len(violations) == 1


# -- report format --------------------------------------------------------

def test_violation_format_and_dict():
    violations = run_rule("wall-clock", """
        import time

        def f():
            return time.time()
    """)
    (violation,) = violations
    assert violation.format() == (
        f"snippet.py:{violation.line}:{violation.col}: wall-clock: "
        f"{violation.message}"
    )
    as_dict = violation.to_dict()
    assert as_dict["rule"] == "wall-clock"
    assert as_dict["path"] == "snippet.py"


# -- direct-tracer-append -------------------------------------------------

def test_direct_tracer_append_flags_records_append():
    violations = run_rule("direct-tracer-append", """
        def emit(tracer, record):
            tracer.records.append(record)
    """)
    assert len(violations) == 1
    assert violations[0].rule == "direct-tracer-append"
    assert "Tracer.log" in violations[0].message


def test_direct_tracer_append_flags_nested_attribute_chain():
    violations = run_rule("direct-tracer-append", """
        def emit(host, record):
            host.tracer.records.append(record)
    """)
    assert len(violations) == 1


def test_direct_tracer_append_allows_tracer_log_and_other_appends():
    assert run_rule("direct-tracer-append", """
        def emit(tracer, items, record):
            tracer.log("send", when=1.0)
            items.append(record)
    """) == []


def test_direct_tracer_append_flags_print_in_data_path_module():
    source = textwrap.dedent("""
        def firmware_step(cell):
            print("got cell", cell)
    """)
    violations = linter.lint_file(
        "repro/core/ni/snippet.py",
        get_rules(["direct-tracer-append"]),
        source=source,
    )
    assert len(violations) == 1
    assert "print" in violations[0].message


def test_direct_tracer_append_allows_print_outside_data_path():
    for path in ("snippet.py", "repro/bench/snippet.py",
                 "repro/analysis/snippet.py", "repro/obs/snippet.py"):
        source = textwrap.dedent("""
            def report(stats):
                print(stats)
        """)
        assert linter.lint_file(
            path, get_rules(["direct-tracer-append"]), source=source
        ) == []


def test_direct_tracer_append_disable_comment():
    assert run_rule("direct-tracer-append", """
        def emit(tracer, record):
            tracer.records.append(record)  # simlint: disable=direct-tracer-append
    """) == []


# -- unguarded-obs-call ---------------------------------------------------

def _lint_hot(rule_name, source):
    """Lint a snippet as if it lived in a data-path module."""
    return linter.lint_file(
        "repro/core/snippet.py",
        get_rules([rule_name]),
        source=textwrap.dedent(source),
    )


def test_unguarded_obs_call_flags_span_and_metric_calls():
    violations = _lint_hot("unguarded-obs-call", """
        from repro import obs
        from repro.obs import metrics

        def push(ring):
            obs.active.bump("ring.rejected")
            metrics.active.observe("ring.depth", len(ring))
    """)
    assert len(violations) == 2
    assert all(v.rule == "unguarded-obs-call" for v in violations)
    assert "off-guard" in violations[0].message


def test_unguarded_obs_call_resolves_import_aliases():
    violations = _lint_hot("unguarded-obs-call", """
        from repro.obs import metrics as _metrics

        def pop(ring):
            _metrics.active.count("ring.pops")
    """)
    assert len(violations) == 1


def test_unguarded_obs_call_allows_the_guarded_discipline():
    assert _lint_hot("unguarded-obs-call", """
        from repro import obs
        from repro.obs import metrics as _metrics

        def push(ring):
            _o = obs.active
            if _o is not None:
                _o.bump("ring.rejected")
            _m = _metrics.active
            if _m is not None:
                _m.observe("ring.depth", len(ring))
    """) == []


def test_unguarded_obs_call_ignores_cold_modules():
    source = """
        from repro import obs

        def report():
            obs.active.bump("report.runs")
    """
    for path in ("snippet.py", "repro/obs/snippet.py",
                 "repro/bench/snippet.py", "repro/analysis/snippet.py"):
        assert linter.lint_file(
            path, get_rules(["unguarded-obs-call"]),
            source=textwrap.dedent(source),
        ) == []


def test_unguarded_obs_call_disable_comment():
    assert _lint_hot("unguarded-obs-call", """
        from repro import obs

        def push():
            obs.active.bump("x")  # simlint: disable=unguarded-obs-call
    """) == []


# -- direct-heapq ---------------------------------------------------------

def test_direct_heapq_flags_import_outside_sim():
    violations = run_rule("direct-heapq", """
        import heapq

        def order(queue, item):
            heapq.heappush(queue, item)
    """)
    assert len(violations) == 1
    assert violations[0].rule == "direct-heapq"
    assert violations[0].line == 2


def test_direct_heapq_flags_from_import():
    violations = run_rule("direct-heapq", """
        from heapq import heappush, heappop
    """)
    assert len(violations) == 1


def test_direct_heapq_allows_sim_package():
    for path in ("repro/sim/engine.py", "repro/sim/resources.py",
                 "src/repro/sim/engine.py"):
        source = textwrap.dedent("""
            import heapq
        """)
        assert linter.lint_file(
            path, get_rules(["direct-heapq"]), source=source
        ) == []


def test_direct_heapq_flags_model_code():
    source = textwrap.dedent("""
        from heapq import heapify
    """)
    violations = linter.lint_file(
        "repro/ip/tcp.py", get_rules(["direct-heapq"]), source=source
    )
    assert len(violations) == 1
    assert "scheduler owns the heap" in violations[0].message


def test_direct_heapq_disable_comment():
    assert run_rule("direct-heapq", """
        import heapq  # simlint: disable=direct-heapq
    """) == []


# -- cross-shard-state ----------------------------------------------------

def test_cross_shard_flags_access_through_remote_peer():
    violations = run_rule("cross-shard-state", """
        def probe(link):
            return link.remote_peer.cells_sent
    """)
    assert len(violations) == 1
    assert violations[0].rule == "cross-shard-state"
    assert "cut-edge proxy" in violations[0].message


def test_cross_shard_flags_trunk_map_and_method_call():
    violations = run_rule("cross-shard-state", """
        def poke(switch, port):
            switch.remote_peers[port].reset()
    """)
    assert len(violations) == 1


def test_cross_shard_flags_aliased_stub():
    violations = run_rule("cross-shard-state", """
        def peek(channel):
            peer = channel.stub
            return peer.queue_depth
    """)
    assert len(violations) == 1


def test_cross_shard_allows_handle_reads_and_stores():
    assert run_rule("cross-shard-state", """
        def wire(self, channel, port):
            if self.remote_peer is None:
                self.remote_peer = channel.stub
            self.remote_peers[port] = channel.stub
            return repr(self.remote_peer)
    """) == []


def test_cross_shard_alias_cleared_by_reassignment():
    assert run_rule("cross-shard-state", """
        def swap(link, local):
            peer = link.remote_peer
            peer = local
            return peer.cells_sent
    """) == []


# -- unbatched-candidate --------------------------------------------------

def test_unbatched_candidate_flags_loop_in_registered_callback():
    violations = run_rule("unbatched-candidate", """
        from repro.sim import batch

        class Sink:
            __slots__ = ("cells",)

            def _deliver(self, train):
                for cell in train.cells:
                    self.cells.append(cell)

        batch.register(Sink._deliver, None)
    """)
    assert len(violations) == 1
    assert violations[0].rule == "unbatched-candidate"
    assert "Sink._deliver" in violations[0].message
    assert "for loop" in violations[0].message


def test_unbatched_candidate_flags_rx_extend_registration():
    violations = run_rule("unbatched-candidate", """
        from repro.sim import batch as _batch

        class Collector:
            def _rx_sink(self, cell):
                try:
                    self.fifo.try_put(cell)
                except Exception:
                    raise
        _batch.register_rx_extend(Collector._rx_sink)
    """)
    assert len(violations) == 1
    assert "try block" in violations[0].message


def test_unbatched_candidate_allows_straight_line_body():
    assert run_rule("unbatched-candidate", """
        from repro.sim import batch

        class Sink:
            def _deliver(self, cell):
                accepted = self.fifo.try_put(cell)
                if not accepted:
                    self.drops += 1

        batch.register(Sink._deliver, None)
    """) == []


def test_unbatched_candidate_ignores_unregistered_loops():
    assert run_rule("unbatched-candidate", """
        from repro.sim import batch

        class Sink:
            def _deliver(self, cell):
                self.fifo.try_put(cell)

            def _flush(self):
                for cell in self.fifo:
                    self.emit(cell)

        batch.register(Sink._deliver, None)
    """) == []


def test_unbatched_candidate_simcost_disable_justifies():
    assert run_rule("unbatched-candidate", """
        from repro.sim import batch

        class Sink:
            def _deliver(self, train):
                for cell in train.cells:  # simcost: disable=cost-alloc
                    self.cells.append(cell)

        batch.register(Sink._deliver, None)
    """) == []


def test_unbatched_candidate_ignores_other_register_functions():
    assert run_rule("unbatched-candidate", """
        import atexit

        class Sink:
            def _close(self):
                for handle in self.handles:
                    handle.close()

        atexit.register(Sink._close)
    """) == []
