"""Hot-path reachability: roots, kinds, and interprocedural blame."""

from repro.analysis import cost
from repro.analysis.cost import hotpath

from tests.analysis.cost.conftest import fixture_program, make_program


class TestRoots:
    def test_scheduled_callbacks_are_roots(self):
        program = fixture_program("cost_bad.py")
        hot = hotpath.compute(program)
        assert any(q.endswith(".on_alloc_loop") for q in hot.roots)
        kinds = {
            q.rsplit(".", 1)[-1]: sorted(ks) for q, ks in hot.kinds.items()
        }
        assert kinds["on_try_loop"] == ["timer"]
        assert kinds["pump"] == ["process"]
        assert kinds["on_str_format"] == ["callback"]

    def test_helpers_inherit_depth_and_kind(self):
        program = fixture_program("cost_bad.py")
        hot = hotpath.compute(program)
        expand = next(q for q in hot.depth if q.endswith("._expand"))
        assert hot.depth[expand] == 1
        assert hot.kinds[expand] == {"callback"}

    def test_aliased_scheduler_counts_as_root(self):
        # Switch._receive_train hoists schedule_at = sim.schedule_callback_at
        # out of its loop; the target must still become a root.
        program = make_program(
            sw="""
            class Switch:
                def pump(self, items):
                    schedule_at = self.sim.schedule_callback_at
                    for t, item in items:
                        schedule_at(t, self.on_item, item)

                def on_item(self, item):
                    return item
            """
        )
        hot = hotpath.compute(program)
        assert any(q.endswith(".on_item") for q in hot.roots)

    def test_sink_registrar_argument_is_root(self):
        program = make_program(
            net="""
            class Port:
                def wire(self, link):
                    link.connect(self.on_cell)

                def on_cell(self, cell):
                    return cell
            """
        )
        hot = hotpath.compute(program)
        assert any(q.endswith(".on_cell") for q in hot.roots)


class TestBlameChain:
    def test_finding_in_helper_blames_the_root(self):
        report = cost.analyze_program(
            fixture_program("cost_bad.py"),
            checks=["alloc-loop"],
            use_profile=False,
        )
        finding = next(f for f in report.findings if f.function.endswith("._expand"))
        witness = "\n".join(finding.witness)
        assert "on_chain is an event-callback root" in witness
        assert "on_chain calls" in witness and "_expand at " in witness
        assert "cost_bad.py:" in witness
