"""Unit tests for the static cost model: one fixture witness per class."""

from repro.analysis import cost
from repro.analysis.cost.model import LOOP_BASE, WEIGHTS

from tests.analysis.cost.conftest import fixture_program


def _report(checks):
    return cost.analyze_program(
        fixture_program("cost_bad.py"), checks=checks, use_profile=False
    )


def _findings_in(report, function_suffix):
    return [f for f in report.findings if f.function.endswith(function_suffix)]


class TestPerClassWitnesses:
    def test_alloc_in_loop(self):
        report = _report(["alloc-loop"])
        found = _findings_in(report, ".on_alloc_loop")
        assert len(found) == 1
        assert found[0].rule == "cost-alloc"
        assert "loop depth 1" in found[0].message

    def test_flat_alloc_gates_only_under_alloc(self):
        assert not _findings_in(_report(["alloc-loop"]), ".on_flat_alloc")
        found = _findings_in(_report(["alloc"]), ".on_flat_alloc")
        assert len(found) == 1
        assert "loop depth 0" in found[0].message

    def test_str_format(self):
        found = _findings_in(_report(["str-format"]), ".on_str_format")
        assert len(found) == 1
        assert found[0].rule == "cost-str-format"

    def test_attr_dict_on_unslotted_class(self):
        found = _findings_in(_report(["attr-dict"]), ".on_attr_dict")
        assert len(found) == 1
        assert "Packet" in found[0].message

    def test_attr_dict_spares_slotted_receivers(self):
        # Node and Counter are slotted: self.counter.value everywhere
        # else in the fixture must not produce attr-dict findings.  The
        # only dict-backed receivers are Packet instances (the witness
        # callback, plus Packet.__init__ reached through the ctor call).
        report = _report(["attr-dict"])
        for finding in report.findings:
            assert ".Node.on_attr_dict" in finding.function or \
                ".Packet.__init__" in finding.function, finding.function

    def test_global_loop(self):
        found = _findings_in(_report(["global-loop"]), ".on_global_loop")
        assert len(found) == 1
        assert "TUNING" in found[0].message

    def test_kwargs_call(self):
        found = _findings_in(_report(["kwargs-call"]), ".on_kwargs")
        assert len(found) == 1

    def test_try_loop(self):
        found = _findings_in(_report(["try-loop"]), ".on_try_loop")
        assert len(found) == 1

    def test_gen_resume(self):
        found = _findings_in(_report(["gen-resume"]), ".pump")
        assert len(found) == 1

    def test_yield_aware_loop_depth(self):
        # pump's while-body yields once per awaited event, so its items
        # must not carry the x8 loop multiplier.
        report = _report(["gen-resume"])
        item = _findings_in(report, ".pump")[0]
        assert "loop depth 0" in item.message


class TestWeights:
    def test_loop_multiplier(self):
        report = _report(["alloc-loop"])
        (finding,) = _findings_in(report, ".on_alloc_loop")
        # ctor allocation at loop depth 1: 12 * 8^1
        assert f"static weight {12 * LOOP_BASE:g}" in finding.message

    def test_score_sums_weighted_items(self):
        report = _report(None)
        by_name = {c.fn.qualname.rsplit(".", 1)[-1]: c for c in report.functions}
        assert by_name["on_str_format"].score == WEIGHTS["str-format"]
        assert by_name["on_alloc_loop"].score >= 12 * LOOP_BASE

    def test_unknown_check_raises(self):
        try:
            _report(["bogus"])
        except KeyError as exc:
            assert "unknown cost check" in exc.args[0]
        else:
            raise AssertionError("expected KeyError")
