"""Profile-guided weighting and the static-only fallback."""

from repro.analysis import cost
from repro.analysis.cost.profile import EngineProfile, from_section, load

from tests.analysis.cost.conftest import fixture_program

#: synthetic obs.engine_profile: callbacks dominate the wall, timers
#: never fire, processes get a sliver.
SECTION = {
    "executed_callbacks": 900,
    "executed_events": 100,
    "wall_s_by_kind": {"callback": 0.9, "event": 0.1, "timer": 0.0},
}


def synthetic():
    return from_section(SECTION, "synthetic")


class TestEngineProfile:
    def test_shares_are_wall_based(self):
        assert synthetic().shares == {"callback": 0.9, "event": 0.1, "timer": 0.0}

    def test_count_fallback_when_wall_degenerate(self):
        profile = from_section(
            {"executed_callbacks": 3, "executed_events": 1, "wall_s_by_kind": {}},
            "synthetic",
        )
        assert profile.shares["callback"] == 0.75

    def test_factor_sums_kind_buckets(self):
        profile = synthetic()
        assert profile.factor({"callback"}) == 0.9
        assert profile.factor({"process"}) == 0.1  # process bills to "event"
        assert profile.factor({"callback", "process"}) == 1.0
        assert profile.factor({"timer"}) == 0.0

    def test_unknown_or_empty_kinds_never_zero_out(self):
        profile = synthetic()
        assert profile.factor(set()) == 1.0
        assert profile.factor({"martian"}) == 1.0


class TestRankingJoin:
    def test_profile_reorders_timer_vs_callback(self):
        # on_try_loop (timer-only) and on_alloc_loop (callback) both
        # carry a x8 loop item; with timers at zero wall share the
        # callback must outrank the timer root.
        report = cost.analyze_program(
            fixture_program("cost_bad.py"), profile=synthetic()
        )
        order = [c.fn.qualname.rsplit(".", 1)[-1] for c in report.functions]
        assert order.index("on_alloc_loop") < order.index("on_try_loop")
        by_name = {c.fn.qualname.rsplit(".", 1)[-1]: c for c in report.functions}
        assert by_name["on_try_loop"].weighted == 0.0
        assert by_name["on_try_loop"].factor == 0.0
        assert by_name["on_alloc_loop"].factor == 0.9

    def test_static_fallback_uses_factor_one(self):
        report = cost.analyze_program(
            fixture_program("cost_bad.py"), use_profile=False
        )
        assert report.profile is None
        assert report.profile_source is None
        assert all(c.factor == 1.0 for c in report.functions)
        assert all(c.weighted == c.score for c in report.functions)


class TestLoader:
    def test_missing_report_is_none(self, tmp_path):
        assert load(str(tmp_path / "nope.json")) is None

    def test_older_schema_is_none(self, tmp_path):
        report = tmp_path / "BENCH_perf.json"
        report.write_text('{"obs": {"engine_profile": {"executed_callbacks": 5}}}')
        assert load(str(report)) is None

    def test_repo_baseline_parses(self):
        profile = load("BENCH_perf.json")
        assert isinstance(profile, EngineProfile)
        assert sum(profile.shares.values()) > 0.99
