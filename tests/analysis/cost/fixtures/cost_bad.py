"""One violation per simcost cost class -- simcost test fixture.

Analyzed by path, never imported: every ``on_*`` callback is scheduled
from :meth:`Node.start`, so each is an event-callback root and each
body is a minimal witness for exactly one cost class.
"""


class Packet:
    # Deliberately *not* slotted: attribute access on instances goes
    # through the instance dict (the cost-attr-dict witness).
    def __init__(self, seq):
        self.seq = seq
        self.acked = False


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


TUNING = {"window": 8}


class Node:
    __slots__ = ("sim", "name", "counter", "pending", "wired")

    def __init__(self, sim):
        self.sim = sim
        self.name = "node"
        self.counter = Counter()
        self.pending = []
        self.wired = False

    def log(self, *args, **kwargs):
        return 0

    def start(self):
        self.sim.schedule_callback(0.0, self.on_alloc_loop)
        self.sim.schedule_callback(0.0, self.on_str_format)
        self.sim.schedule_callback(0.0, self.on_attr_dict)
        self.sim.schedule_callback(0.0, self.on_global_loop)
        self.sim.schedule_callback(0.0, self.on_kwargs)
        self.sim.schedule_timer(1.0, self.on_try_loop)
        self.sim.schedule_callback(0.0, self.on_flat_alloc)
        self.sim.schedule_callback(0.0, self.on_chain)
        self.sim.process(self.pump())

    def on_alloc_loop(self, cells):
        for cell in cells:
            self.pending.append(Packet(cell))  # cost-alloc, loop depth 1

    def on_str_format(self, cell):
        self.log(f"{self.name}.rx")  # cost-str-format

    def on_attr_dict(self, pkt: Packet):
        return pkt.seq  # cost-attr-dict (Packet has no __slots__)

    def on_global_loop(self, cells):
        total = 0
        for cell in cells:
            total += TUNING["window"]  # cost-global-loop
        return total

    def on_kwargs(self, extras):
        return self.log(**extras)  # cost-kwargs-call

    def on_try_loop(self, cells):
        for cell in cells:
            try:  # cost-try-loop
                self.counter.value += cell
            except ValueError:
                pass

    def on_flat_alloc(self):
        self.pending = list()  # cost-alloc, loop depth 0 (flat tier)

    def on_chain(self, cells):
        # Clean itself; blames the helper it calls (interprocedural).
        return self._expand(cells)

    def _expand(self, cells):
        out = []
        for cell in cells:
            out.append(Packet(cell))  # cost-alloc blamed via on_chain
        return out

    def pump(self):
        while True:
            cell = yield self.sim.timeout(1.0)  # cost-gen-resume
            self.counter.value += 1
