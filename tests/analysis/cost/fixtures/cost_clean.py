"""A clean vectorization candidate -- simcost test fixture.

``Ring.on_deliver`` is a scheduled callback whose body is straight-line
code over slotted attributes with no allocation: exactly the shape the
vectorized event-batch engine could run over a batch of cells.
"""


class Ring:
    __slots__ = ("sim", "head", "count", "_sink")

    def __init__(self, sim, sink):
        self.sim = sim
        self.head = 0
        self.count = 0
        self._sink = sink

    def start(self):
        self.sim.schedule_callback(0.0, self.on_deliver, 0)

    def on_deliver(self, cell):
        self.head = self.head + 1
        self.count += 1
        sink = self._sink
        sink(cell)
