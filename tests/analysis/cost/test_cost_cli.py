"""Acceptance tests for ``python -m repro.analysis --cost``."""

import json
from pathlib import Path

from tests.analysis.flow.test_flow_cli import run_cli

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BAD = FIXTURES / "cost_bad.py"
CLEAN = FIXTURES / "cost_clean.py"


class TestCostCli:
    def test_src_tree_is_clean_post_fixes(self):
        result = run_cli("--cost", "src", "--baseline", "COST_baseline.json")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "vectorization candidate" in result.stdout

    def test_fixture_fails_with_findings_and_ranking(self):
        result = run_cli("--cost", str(BAD))
        assert result.returncode == 1
        assert "cost-alloc" in result.stdout
        assert "cost-str-format" in result.stdout
        assert "hot-path functions by weighted score" in result.stdout
        assert "finding(s)" in result.stderr

    def test_static_only_fallback_flag(self):
        result = run_cli("--cost", "--cost-profile", "none", str(BAD))
        assert result.returncode == 1
        assert "static-only" in result.stdout

    def test_json_format(self):
        result = run_cli("--cost", "--format", "json", str(BAD))
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["count"] == len(payload["findings"]) > 0
        assert "functions" in payload and "modules" in payload
        assert "vectorization_candidates" in payload
        finding = payload["findings"][0]
        assert {"path", "line", "col", "rule", "message", "function", "witness"} \
            <= set(finding)

    def test_json_candidates_on_clean_fixture(self):
        result = run_cli("--cost", "--format", "json", str(CLEAN))
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["count"] == 0
        names = [c["function"] for c in payload["vectorization_candidates"]]
        assert any(n.endswith(".on_deliver") for n in names)

    def test_check_selection(self):
        result = run_cli("--cost", "--cost-checks", "try-loop", str(CLEAN))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_unknown_check_is_usage_error(self):
        result = run_cli("--cost", "--cost-checks", "bogus", str(BAD))
        assert result.returncode == 2
        assert "unknown cost check" in result.stderr

    def test_cost_top_limits_ranking(self):
        result = run_cli("--cost", "--cost-top", "2", str(BAD))
        ranked = [
            line for line in result.stdout.splitlines()
            if "x factor" in line or "score" in line and "depth" in line
        ]
        assert len(ranked) <= 3  # header line + 2 entries


class TestCostBaseline:
    def test_baseline_roundtrip(self, tmp_path):
        baseline = tmp_path / "cost_baseline.json"
        wrote = run_cli(
            "--cost", "--baseline", str(baseline), "--write-baseline", str(BAD)
        )
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr
        assert baseline.exists()
        replay = run_cli("--cost", "--baseline", str(baseline), str(BAD))
        assert replay.returncode == 0, replay.stdout + replay.stderr
        assert "suppressed" in replay.stderr

    def test_baseline_is_count_aware(self, tmp_path):
        baseline = tmp_path / "empty_baseline.json"
        wrote = run_cli(
            "--cost", "--baseline", str(baseline), "--write-baseline", str(CLEAN)
        )
        assert wrote.returncode == 0
        replay = run_cli("--cost", "--baseline", str(baseline), str(BAD))
        assert replay.returncode == 1

    def test_committed_baseline_is_empty(self):
        committed = json.loads(Path("COST_baseline.json").read_text())
        assert committed["entries"] == []


class TestDisableComments:
    def test_line_disable_suppresses(self, tmp_path):
        src = BAD.read_text().replace(
            "self.pending.append(Packet(cell))  # cost-alloc, loop depth 1",
            "self.pending.append(Packet(cell))  # simcost: disable=cost-alloc",
        )
        patched = tmp_path / "cost_bad_disabled.py"
        patched.write_text(src)
        result = run_cli("--cost", str(patched))
        assert "on_alloc_loop" not in result.stdout.split("hot-path functions")[0]

    def test_file_disable_suppresses_everything(self, tmp_path):
        src = "# simcost: disable-file\n" + BAD.read_text()
        patched = tmp_path / "cost_bad_all_disabled.py"
        patched.write_text(src)
        result = run_cli(
            "--cost",
            "--cost-checks",
            "alloc,alloc-loop,str-format,attr-dict,global-loop,kwargs-call,try-loop,gen-resume",
            str(patched),
        )
        assert result.returncode == 0, result.stdout + result.stderr
