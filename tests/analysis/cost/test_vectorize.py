"""The vectorization-candidate detector: accepts, rejections, output."""

from repro.analysis import cost

from tests.analysis.cost.conftest import fixture_program, make_program


def candidates_of(program):
    return [
        c.qualname.rsplit(".", 1)[-1]
        for c in cost.analyze_program(program, use_profile=False).candidates
    ]


class TestCandidates:
    def test_clean_fixture_is_a_candidate(self):
        report = cost.analyze_program(
            fixture_program("cost_clean.py"), use_profile=False
        )
        assert [c.qualname.rsplit(".", 1)[-1] for c in report.candidates] == [
            "on_deliver"
        ]
        candidate = report.candidates[0]
        assert candidate.path.endswith("cost_clean.py")
        assert "no allocation" in candidate.note
        assert "callback" in candidate.kinds

    def test_bad_fixture_produces_none(self):
        # Every root in cost_bad carries a disqualifier (loop, alloc,
        # f-string, kwargs, try, generator, or unslotted attr access).
        assert candidates_of(fixture_program("cost_bad.py")) == []

    def test_loop_disqualifies(self):
        program = make_program(
            mod="""
            class Node:
                __slots__ = ("sim", "n")
                def start(self):
                    self.sim.schedule_callback(0.0, self.on_cells)
                def on_cells(self, cells):
                    for cell in cells:
                        self.n += 1
            """
        )
        assert candidates_of(program) == []

    def test_opaque_call_disqualifies(self):
        program = make_program(
            mod="""
            class Node:
                __slots__ = ("sim", "peer")
                def start(self):
                    self.sim.schedule_callback(0.0, self.on_cell)
                def on_cell(self, cell):
                    self.peer.forward(cell)
            """
        )
        assert candidates_of(program) == []

    def test_stored_sink_dispatch_is_allowed(self):
        program = make_program(
            mod="""
            class Node:
                __slots__ = ("sim", "_sink", "count")
                def start(self):
                    self.sim.schedule_callback(0.0, self.on_cell)
                def on_cell(self, cell):
                    self.count += 1
                    sink = self._sink
                    sink(cell)
            """
        )
        assert candidates_of(program) == ["on_cell"]

    def test_real_tree_has_engine_link_ni_candidates(self):
        # The PR 10 acceptance bar: every batchable delivery callback
        # is wired to a kernel, so the *remaining* work-list is empty
        # and the link/switch/NI callbacks all report as batched.
        report = cost.analyze_paths(["src"], use_profile=False)
        batched = {c.qualname for c in report.batched}
        assert "repro.atm.link.Link._deliver_cell" in batched
        assert "repro.atm.link.Link._deliver_train" in batched
        assert "repro.atm.switch.Switch._receive" in batched
        assert "repro.core.ni.base.NetworkInterface._rx_sink" in batched
        assert report.candidates == []

    def test_registered_candidate_moves_to_batched(self):
        program = make_program(
            mod="""
            from repro.sim import batch

            class Node:
                __slots__ = ("sim", "count")
                def start(self):
                    self.sim.schedule_callback(0.0, self.on_cell)
                def on_cell(self, cell):
                    self.count += 1

            batch.register(Node.on_cell, None)
            """
        )
        report = cost.analyze_program(program, use_profile=False)
        assert report.candidates == []
        assert [c.qualname.rsplit(".", 1)[-1] for c in report.batched] == [
            "on_cell"
        ]
