"""Shared helpers for the simcost test suite."""

from pathlib import Path

from repro.analysis.flow.callgraph import Program

from tests.analysis.flow.conftest import make_program  # noqa: F401  (re-export)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fixture_program(*names) -> Program:
    return Program.from_paths([str(FIXTURES / name) for name in names])
