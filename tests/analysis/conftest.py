"""Shared fixtures for the analysis-layer tests."""

import pytest

from repro.analysis import sanitize


@pytest.fixture
def sanitized_runtime():
    """Arm the runtime sanitizers for one test.

    Segments and rings created inside the test carry live checkers;
    at teardown every sanitized segment is verified leak-free.
    """
    with sanitize.sanitized():
        yield


@pytest.fixture
def sanitizers_off():
    """Force the sanitizers off (tests of the zero-overhead path must
    hold even when the suite runs under REPRO_SANITIZE=1)."""
    previous = sanitize.enable(False)
    yield
    sanitize.enable(previous)


@pytest.fixture
def sanitizers_on():
    """Arm the sanitizers without the leak check at exit (for tests
    that deliberately leave allocations behind)."""
    previous = sanitize.enable(True)
    yield
    sanitize.enable(previous)
