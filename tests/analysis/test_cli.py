"""Acceptance tests for ``python -m repro.analysis`` (the simlint CLI)."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
FIXTURE = Path(__file__).resolve().parent / "fixtures" / "bad_example.py"
#: unguarded-obs-call only fires in data-path module paths, so its
#: violation lives in a fixture under a repro/core/ directory.
FIXTURE_HOT = (
    Path(__file__).resolve().parent
    / "fixtures" / "repro" / "core" / "bad_obs_calls.py"
)

ALL_RULES = {
    "wall-clock",
    "unseeded-random",
    "or-default",
    "yield-event",
    "callback-arity",
    "cross-shard-state",
    "unordered-iter",
    "slots-hot-path",
    "silent-except",
    "mutable-default",
    "schedule-shared-state",
    "direct-tracer-append",
    "direct-heapq",
    "unguarded-obs-call",
    "unbatched-candidate",
}


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=False,
    )


def test_src_tree_is_clean():
    result = run_cli("src")
    assert result.returncode == 0, result.stdout + result.stderr


def test_fixture_reports_every_rule_once():
    result = run_cli(str(FIXTURE), str(FIXTURE_HOT))
    assert result.returncode == 1
    lines = [line for line in result.stdout.splitlines() if line.strip()]
    assert len(lines) == len(ALL_RULES)
    seen = set()
    for line in lines:
        # file:line:col: rule: message
        path, lineno, col, rule, _message = line.split(":", 4)
        assert path.endswith(("bad_example.py", "bad_obs_calls.py"))
        assert int(lineno) > 0 and int(col) > 0
        seen.add(rule.strip())
    assert seen == ALL_RULES


def test_json_output():
    result = run_cli("--format", "json", str(FIXTURE), str(FIXTURE_HOT))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["count"] == len(ALL_RULES)
    assert {v["rule"] for v in payload["violations"]} == ALL_RULES
    assert all(v["line"] > 0 for v in payload["violations"])


def test_select_single_rule():
    result = run_cli("--select", "wall-clock", str(FIXTURE))
    assert result.returncode == 1
    lines = [line for line in result.stdout.splitlines() if line.strip()]
    assert len(lines) == 1
    assert "wall-clock" in lines[0]


def test_select_unknown_rule_is_usage_error():
    result = run_cli("--select", "no-such-rule", str(FIXTURE))
    assert result.returncode == 2


def test_list_rules():
    result = run_cli("--list-rules")
    assert result.returncode == 0
    for rule in ALL_RULES:
        assert rule in result.stdout
