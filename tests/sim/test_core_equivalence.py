"""A/B: the calendar core reproduces the seed heap core bit for bit.

Three layers of evidence, strongest first:

* engine-level **timeline identity** on randomized workloads — every
  executed entry logged as ``(now.hex(), kind, tag)`` must match
  exactly between cores, including FIFO order inside same-timestamp
  tie groups;
* **figure-scenario identity** — every perturbation scenario (the
  shrunk fig3–fig9 + sample_sort code paths) must produce identical
  metrics at full float precision under both cores;
* **seed-loop identity** — the heap core's deduplicated run loop must
  behave exactly like the seed engine's hand-written loop, verified
  against a verbatim copy of the pre-refactor ``run()``/``step()``.
"""

import random

import pytest

from repro.analysis import perturb
from repro.sim import Simulator, engine

CORES = list(engine.CORES)


# --------------------------------------------------------------------------
# Randomized engine-level workloads
# --------------------------------------------------------------------------

def _exercise(sim, seed, log, use_timers=True):
    """Drive one randomized workload; append every execution to ``log``.

    The mix covers every scheduling entry point: relative and absolute
    callbacks (with deliberate same-timestamp ties), far-future entries
    beyond the calendar horizon, generator processes, triggered events,
    and (optionally) timers with mid-run cancellation.  RNG draws happen
    only inside executed entries, so two runs consume the stream
    identically exactly when their execution orders match — any
    divergence shows up as differing logs.
    """
    rng = random.Random(seed)
    counter = [0]
    live_timers = []

    def spawn():
        counter[0] += 1
        tag = counter[0]
        roll = rng.random()
        if roll < 0.30:
            # tie-heavy: a handful of fixed offsets collide constantly
            sim.schedule_callback(rng.choice((0.0, 1.0, 2.5)), cb, tag)
        elif roll < 0.55:
            sim.schedule_callback(round(rng.uniform(0.0, 40.0), 3), cb, tag)
        elif roll < 0.65:
            sim.schedule_callback_at(
                sim.now + round(rng.uniform(0.0, 10.0), 3), cb, tag
            )
        elif roll < 0.75:
            # beyond the calendar near-window: exercises spill/promote
            sim.schedule_callback(round(rng.uniform(5e3, 3e5), 1), cb, tag)
        elif roll < 0.85:
            sim.process(proc(tag))
        elif roll < 0.95 or not use_timers:
            ev = sim.event()
            ev.callbacks.append(lambda e, t=tag: log.append(
                (sim.now.hex(), "ev", t)
            ))
            ev.succeed(delay=round(rng.uniform(0.0, 20.0), 3))
        else:
            h = sim.schedule_timer(
                round(rng.uniform(0.0, 60.0), 3), timer_cb, tag
            )
            live_timers.append(h)

    def cb(tag):
        log.append((sim.now.hex(), "cb", tag))
        if use_timers and live_timers and rng.random() < 0.3:
            live_timers.pop(rng.randrange(len(live_timers))).cancel()
        for _ in range(rng.randrange(3)):
            if counter[0] < 400:
                spawn()

    def timer_cb(tag):
        log.append((sim.now.hex(), "tm", tag))

    def proc(tag):
        yield sim.timeout(round(rng.uniform(0.0, 15.0), 3))
        log.append((sim.now.hex(), "pr", tag))
        if counter[0] < 400:
            spawn()

    for _ in range(25):
        spawn()
    sim.run()


def _timeline(core, seed, use_timers=True):
    with engine.use_core(core):
        sim = Simulator()
        log = []
        _exercise(sim, seed, log, use_timers=use_timers)
        return log, sim.events_processed, sim.now.hex()


@pytest.mark.parametrize("seed", range(8))
def test_randomized_timelines_identical_across_cores(seed):
    results = {core: _timeline(core, seed) for core in CORES}
    assert results["calendar"] == results["heap"]
    log, processed, _ = results["calendar"]
    assert len(log) > 50  # the workload actually exercised the engine
    assert processed >= len(log)


def test_timelines_cover_far_future_entries():
    """The randomized mix must actually reach the overflow tier."""
    with engine.use_core("calendar"):
        sim = Simulator()
        log = []
        _exercise(sim, seed=3, log=log)
        stats = sim.stats()
    assert stats["far_spills"] > 0
    assert stats["promotions"] > 0


# --------------------------------------------------------------------------
# Figure scenarios (fig3–fig9 + sample_sort), full float precision
# --------------------------------------------------------------------------

@pytest.mark.parametrize("name", perturb.scenario_names())
def test_figure_scenario_bit_identical_across_cores(name):
    results = {}
    for core in CORES:
        with engine.use_core(core):
            metrics = perturb._SCENARIOS[name]()
        results[core] = perturb._canonical_metrics(metrics)
    assert results["calendar"] == results["heap"]


# --------------------------------------------------------------------------
# Heap core vs. the seed engine's verbatim loop
# --------------------------------------------------------------------------

class _SeedLoopSimulator(engine._HeapSimulator):
    """The seed engine's hand-written ``run``/``step``, verbatim.

    The deduplicated heap-core loop (rendered from the shared dispatch
    template) must behave byte-for-byte like this original.  Timers
    postdate the seed, so seed-comparison workloads exclude them.
    """

    __slots__ = ()

    def step(self):
        if not self._heap:
            raise engine.SimulationError(
                "step() on an empty schedule: nothing left to run"
            )
        item = engine.heapq.heappop(self._heap)
        self._now = item[0]
        self.events_processed += 1
        event = item[2]
        if event is None:
            item[3](*item[4])
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until=None):
        if until is not None and until < self._now:
            raise ValueError(
                f"until ({until}) lies in the past (now={self._now})"
            )
        heap = self._heap
        pop = engine.heapq.heappop
        processed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return
                item = pop(heap)
                self._now = item[0]
                processed += 1
                event = item[2]
                if event is None:
                    item[3](*item[4])
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
        finally:
            self.events_processed += processed
        if until is not None:
            self._now = until


@pytest.mark.parametrize("seed", range(4))
def test_unmonitored_loops_match_seed_behaviour(seed):
    reference = []
    sim = _SeedLoopSimulator()
    _exercise(sim, seed, reference, use_timers=False)
    expected = (reference, sim.events_processed, sim.now.hex())
    for core in CORES:
        assert _timeline(core, seed, use_timers=False) == expected, core
