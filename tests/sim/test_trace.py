"""Unit tests for tracing and statistics."""

import pytest

from repro.sim import StatSeries, Tracer


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.log(1.0, "cat", "hello")
        assert tracer.records == []

    def test_enabled_records(self):
        tracer = Tracer(enabled=True)
        tracer.log(1.0, "cat", "hello", vci=7)
        assert len(tracer.records) == 1
        assert tracer.records[0].data == {"vci": 7}
        assert "hello" in str(tracer.records[0])

    def test_category_filter(self):
        tracer = Tracer(enabled=True, categories={"keep"})
        tracer.log(1.0, "keep", "yes")
        tracer.log(2.0, "drop", "no")
        assert [r.message for r in tracer.records] == ["yes"]

    def test_counters(self):
        tracer = Tracer()
        tracer.count("drops")
        tracer.count("drops", 4)
        assert tracer["drops"] == 5
        assert tracer["never"] == 0

    def test_dump(self):
        tracer = Tracer(enabled=True)
        tracer.log(1.0, "a", "one")
        tracer.log(2.0, "b", "two")
        dump = tracer.dump()
        assert "one" in dump and "two" in dump


class TestStatSeries:
    def test_mean_min_max(self):
        s = StatSeries()
        for v in (1.0, 2.0, 3.0):
            s.add(v)
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.summary() == (1.0, 2.0, 3.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            _ = StatSeries(name="empty").mean

    def test_stddev(self):
        s = StatSeries()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            s.add(v)
        assert s.stddev == pytest.approx(2.138, abs=0.01)

    def test_stddev_single_sample_is_zero(self):
        s = StatSeries()
        s.add(5.0)
        assert s.stddev == 0.0

    def test_percentile(self):
        s = StatSeries()
        for v in range(1, 101):
            s.add(float(v))
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 100.0
        assert s.percentile(50) == pytest.approx(50.5)

    def test_percentile_bounds(self):
        s = StatSeries()
        s.add(1.0)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_len(self):
        s = StatSeries()
        assert len(s) == 0
        s.add(1.0)
        assert len(s) == 1


class TestTracerRing:
    def test_max_records_bounds_buffer(self):
        tracer = Tracer(enabled=True, max_records=3)
        for i in range(5):
            tracer.log(float(i), "cat", f"m{i}")
        assert len(tracer.records) == 3
        assert [r.message for r in tracer.records] == ["m2", "m3", "m4"]
        assert tracer.records_dropped == 2

    def test_unbounded_by_default(self):
        tracer = Tracer(enabled=True)
        for i in range(100):
            tracer.log(float(i), "cat", "m")
        assert len(tracer.records) == 100
        assert tracer.records_dropped == 0

    def test_max_records_must_be_positive(self):
        with pytest.raises(ValueError, match="max_records"):
            Tracer(max_records=0)
        with pytest.raises(ValueError, match="max_records"):
            Tracer(max_records=-1)

    def test_snapshot_is_plain_dict(self):
        tracer = Tracer()
        tracer.count("drops", 2)
        tracer.count("sends")
        snap = tracer.snapshot()
        assert snap == {"drops": 2, "sends": 1}
        assert type(snap) is dict
        snap["drops"] = 99  # a copy: mutating it leaves the tracer alone
        assert tracer["drops"] == 2


class TestStatSeriesEmpty:
    def test_empty_minimum_raises(self):
        with pytest.raises(ValueError, match="no samples in series 'rtt'"):
            StatSeries(name="rtt").minimum

    def test_empty_maximum_raises(self):
        with pytest.raises(ValueError, match="no samples in series 'rtt'"):
            StatSeries(name="rtt").maximum

    def test_empty_stddev_raises(self):
        with pytest.raises(ValueError, match="no samples in series 'rtt'"):
            StatSeries(name="rtt").stddev
