"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Simulator,
    SimulationError,
    Timeout,
)


def run_to_end(sim):
    sim.run(until=1e9)


class TestTimeAdvance:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_time(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(12.5)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 12.5
        assert sim.now == 12.5

    def test_zero_delay_timeout(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0.0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        sim.run(until=40.0)
        assert sim.now == 40.0

    def test_run_until_past_raises(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=50.0)

    def test_same_time_fifo_order(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.timeout(5.0)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()

        def waiter():
            value = yield ev
            return value

        def trigger():
            yield sim.timeout(1.0)
            ev.succeed("payload")

        p = sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert p.value == "payload"

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_propagates_into_process(self):
        sim = Simulator()
        ev = sim.event()

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        def trigger():
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("boom"))

        p = sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert p.value == "caught boom"

    def test_unhandled_failure_crashes_run(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("nobody listens"))
        with pytest.raises(RuntimeError, match="nobody listens"):
            sim.run()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_waiting_on_processed_event(self):
        """Yielding an already-processed event resumes immediately."""
        sim = Simulator()
        ev = sim.event()
        ev.succeed("早い")
        sim.run()
        assert ev.processed

        def late_waiter():
            value = yield ev
            return (sim.now, value)

        p = sim.process(late_waiter())
        sim.run()
        assert p.value == (0.0, "早い")


class TestProcesses:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.value == 42
        assert not p.is_alive

    def test_process_is_waitable(self):
        sim = Simulator()

        def child():
            yield sim.timeout(7.0)
            return "done"

        def parent():
            result = yield sim.process(child())
            return (sim.now, result)

        p = sim.process(parent())
        sim.run()
        assert p.value == (7.0, "done")

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise ValueError("child failed")

        def parent():
            try:
                yield sim.process(child())
            except ValueError as exc:
                return str(exc)

        p = sim.process(parent())
        sim.run()
        assert p.value == "child failed"

    def test_unhandled_process_exception_crashes_run(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise KeyError("oops")

        sim.process(bad())
        with pytest.raises(KeyError):
            sim.run()

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 5  # simlint: disable=yield-event

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_interrupt(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(1000.0)
            except Interrupt as intr:
                return ("interrupted", sim.now, intr.cause)

        def interrupter(target):
            yield sim.timeout(10.0)
            target.interrupt("wake up")

        p = sim.process(sleeper())
        sim.process(interrupter(p))
        sim.run()
        assert p.value == ("interrupted", 10.0, "wake up")

    def test_interrupt_dead_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.process(lambda: None)


class TestConditions:
    def test_any_of_first_wins(self):
        sim = Simulator()

        def proc():
            fast = sim.timeout(5.0, value="fast")
            slow = sim.timeout(50.0, value="slow")
            result = yield AnyOf(sim, [fast, slow])
            return (sim.now, list(result.values()))

        p = sim.process(proc())
        sim.run()
        assert p.value == (5.0, ["fast"])

    def test_all_of_waits_for_all(self):
        sim = Simulator()

        def proc():
            a = sim.timeout(5.0, value="a")
            b = sim.timeout(50.0, value="b")
            result = yield AllOf(sim, [a, b])
            return (sim.now, sorted(result.values()))

        p = sim.process(proc())
        sim.run()
        assert p.value == (50.0, ["a", "b"])

    def test_empty_all_of_fires_immediately(self):
        sim = Simulator()

        def proc():
            yield AllOf(sim, [])
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0

    def test_any_of_helper_method(self):
        sim = Simulator()

        def proc():
            result = yield sim.any_of([sim.timeout(3.0, "x"), sim.event()])
            return list(result.values())

        p = sim.process(proc())
        sim.run(until=10.0)
        assert p.value == ["x"]


class TestDeterminism:
    def test_two_identical_runs_agree(self):
        def build():
            sim = Simulator()
            log = []

            def worker(n):
                for i in range(n):
                    yield sim.timeout(1.5 * (i + 1))
                    log.append((sim.now, n, i))

            for n in (3, 4, 5):
                sim.process(worker(n))
            sim.run()
            return log

        assert build() == build()


class TestScheduleCallback:
    def test_callback_fires_at_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule_callback(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_callback_args_passed_through(self):
        sim = Simulator()
        got = []
        sim.schedule_callback(1.0, lambda a, b: got.append((a, b)), "x", 2)
        sim.run()
        assert got == [("x", 2)]

    def test_callbacks_interleave_with_events_fifo(self):
        sim = Simulator()
        order = []

        def proc():
            yield sim.timeout(10.0)
            order.append("process")

        sim.schedule_callback(10.0, lambda: order.append("early"))
        sim.process(proc())
        sim.schedule_callback(10.0, lambda: order.append("late"))
        sim.run()
        # same instant: strict scheduling order, regardless of kind.  The
        # process's timeout is scheduled when the generator first runs (at
        # t=0), after both callbacks were pushed.
        assert order == ["early", "late", "process"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_callback(-1.0, lambda: None)

    def test_absolute_variant_rejects_past(self):
        sim = Simulator()
        sim.schedule_callback(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_callback_at(1.0, lambda: None)

    def test_schedule_event_at_rejects_past(self):
        # The internal absolute-time event path used to silently accept
        # when < now, breaking causality; it must raise.
        sim = Simulator()
        sim.schedule_callback(5.0, lambda: None)
        sim.run()
        event = Event(sim)
        event._ok = True
        with pytest.raises(SimulationError):
            sim._schedule_event_at(event, 1.0)

    def test_trigger_with_negative_delay_rejects_past(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError):
            event.succeed(delay=-1.0)

    def test_run_until_stops_before_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule_callback(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert fired == [] and sim.now == 5.0
        sim.run()
        assert fired == [True]


class TestStepErrors:
    def test_step_on_empty_schedule_raises_simulation_error(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="empty schedule"):
            sim.step()

    def test_step_error_is_not_a_bare_index_error(self):
        sim = Simulator()
        try:
            sim.step()
        except SimulationError:
            pass  # SimulationError subclasses RuntimeError, not IndexError
        assert isinstance(SimulationError("x"), RuntimeError)


class TestInterruptRaces:
    def test_interrupt_beats_simultaneous_succeed(self):
        """Interrupting a process whose wait target succeeded in the same
        instant (but has not yet been processed) delivers the interrupt:
        interrupt() detaches the victim from its target."""
        sim = Simulator()
        gate = Event(sim)

        def victim():
            try:
                value = yield gate
                return value
            except Interrupt as intr:
                return ("interrupted", intr.cause)

        p = sim.process(victim())

        def attacker():
            yield sim.timeout(5.0)
            gate.succeed("done")
            p.interrupt("won the race")

        sim.process(attacker())
        sim.run()
        assert p.value == ("interrupted", "won the race")
        assert gate.processed and gate.value == "done"

    def test_interrupt_defused_when_victim_finishes_same_instant(self):
        """An interrupt scheduled while the victim is alive, but processed
        after the victim already finished in the same instant, is defused
        rather than surfacing as an unhandled failure."""
        sim = Simulator()
        early = sim.timeout(0.0, "early-value")
        sim.run()

        def victim():
            yield sim.timeout(1.0)
            value = yield early  # already processed: resumes via a stub
            return value

        p = sim.process(victim())

        def attacker():
            yield sim.timeout(1.0)
            # The victim's resume stub is already on the heap ahead of the
            # interrupt event, so the victim finishes first.
            p.interrupt("too late")

        sim.process(attacker())
        sim.run()  # the defused interrupt must not raise
        assert p.ok and p.value == "early-value"

    def test_interrupt_while_target_already_processed(self):
        """Interrupting a process whose wait target has already been
        processed (the stub-event resume window) still delivers."""
        sim = Simulator()
        early = sim.timeout(0.0, "early-value")
        log = []

        def victim():
            yield sim.timeout(1.0)
            try:
                value = yield early  # processed long ago: stub path
                log.append(value)
                yield sim.timeout(100.0)
            except Interrupt as intr:
                return ("interrupted", intr.cause)
            return "never"

        p = sim.process(victim())

        def attacker():
            yield sim.timeout(1.0)
            # victim's _target is the already-processed `early` event
            p.interrupt("now")

        sim.process(attacker())
        sim.run()
        assert log == ["early-value"]
        assert p.value == ("interrupted", "now")
        # The abandoned timeout(100) still drains from the heap.
        assert sim.now == 101.0

    def test_interrupt_dead_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditionsOverProcessedEvents:
    def test_anyof_with_pre_processed_event_fires_immediately(self):
        sim = Simulator()
        early = sim.timeout(0.0, "early")
        sim.run()
        assert early.processed
        late = sim.timeout(50.0, "late")

        def waiter():
            result = yield sim.any_of([early, late])
            return sim.now, result

        p = sim.process(waiter())
        sim.run()
        when, result = p.value
        assert when == 0.0
        assert result == {early: "early"}

    def test_allof_with_pre_processed_events_waits_for_last(self):
        sim = Simulator()
        e1 = sim.timeout(0.0, 1)
        e2 = sim.timeout(0.0, 2)
        sim.run()
        e3 = sim.timeout(7.0, 3)

        def waiter():
            result = yield sim.all_of([e1, e2, e3])
            return sim.now, result

        p = sim.process(waiter())
        sim.run()
        when, result = p.value
        assert when == 7.0
        assert result == {e1: 1, e2: 2, e3: 3}

    def test_allof_entirely_pre_processed(self):
        sim = Simulator()
        e1 = sim.timeout(0.0, "a")
        e2 = sim.timeout(0.0, "b")
        sim.run()

        def waiter():
            result = yield sim.all_of([e1, e2])
            return result

        p = sim.process(waiter())
        sim.run()
        assert p.value == {e1: "a", e2: "b"}
