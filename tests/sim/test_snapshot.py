"""Engine snapshot/restore: round-trip identity, cross-core blobs,
Event-entry rejection, and whole-simulator pickling.

``snapshot()`` captures the schedule (callbacks and timers, in
``(when, seq)`` order) plus ``now``/``seq``/``events_processed``;
``restore()`` replays it so the continued run allocates identical
``(when, seq)`` pairs.  The blob is core-agnostic and a pickled
Simulator round-trips through it (``__getstate__``/``__setstate__``).
"""

import pickle

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError, set_core

LOG = []


def tick(tag):
    LOG.append((Simulator is not None, tag))


class _Chain:
    """Self-rescheduling callback world whose timeline is fully logged."""

    def __init__(self, sim, until=100.0):
        self.sim = sim
        self.until = until
        self.log = []

    def start(self):
        self.sim.schedule_callback(0.0, self.fire, 0)
        self.sim.schedule_callback(3.0, self.fire, 1000)
        self.sim.schedule_timer(7.0, self.fire, 2000)

    def fire(self, tag):
        self.log.append((self.sim.now.hex(), tag))
        nxt = self.sim.now + 1.0 + (tag % 3)
        if nxt <= self.until:
            self.sim.schedule_callback_at(nxt, self.fire, tag + 1)


def _straight_run():
    sim = Simulator()
    world = _Chain(sim)
    world.start()
    sim.run()
    return world.log, sim.now.hex(), sim.events_processed


def test_mid_run_snapshot_restore_round_trip():
    base_log, base_now, base_events = _straight_run()

    sim = Simulator()
    world = _Chain(sim)
    world.start()
    sim.run(until=40.0)
    blob = sim.snapshot()
    assert blob["now"] == 40.0
    # The same sim keeps running after a snapshot/restore round trip
    # and the full event timeline equals the straight run's.
    sim.restore(blob)
    sim.run()
    assert world.log == base_log
    assert sim.now.hex() == base_now
    assert sim.events_processed == base_events


def test_restore_into_fresh_simulator_continues_identically():
    sim = Simulator()
    world = _Chain(sim)
    world.start()
    sim.run(until=40.0)
    prefix = list(world.log)
    blob = sim.snapshot()

    sim2 = Simulator()
    sim2.restore(blob)
    # The restored entries hold bound methods of the *live* world, so
    # the world must be re-pointed at the restoring simulator before it
    # reschedules anything (DESIGN.md §12 known-unsoundness; pickling a
    # Simulator avoids this because the world is cloned with it).
    world.sim = sim2
    sim2.run()
    base_log, base_now, base_events = _straight_run()
    assert world.log == base_log
    assert prefix == base_log[: len(prefix)]
    assert sim2.now.hex() == base_now
    assert sim2.events_processed == base_events


@pytest.mark.parametrize("src_core,dst_core", [
    ("calendar", "heap"), ("heap", "calendar"),
])
def test_snapshot_restores_across_cores(src_core, dst_core):
    base_log, base_now, base_events = _straight_run()
    try:
        set_core(src_core)
        sim = Simulator()
        world = _Chain(sim)
        world.start()
        sim.run(until=40.0)
        blob = sim.snapshot()
        assert blob["core"] == src_core

        set_core(dst_core)
        sim2 = Simulator()
        sim2.restore(blob)
        world.sim = sim2
        sim2.run()
    finally:
        set_core("calendar")
    assert world.log == base_log
    assert sim2.now.hex() == base_now
    assert sim2.events_processed == base_events


def test_snapshot_rejects_pending_event_entries():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)

    sim.process(proc(), name="p")
    with pytest.raises(SimulationError, match="pending Event"):
        sim.snapshot()


def test_pickle_round_trip_resumes_identically():
    base_log = []
    sim = Simulator()
    sim.schedule_callback(1.0, base_log.append, "a")  # not pickled: warm up

    LOG.clear()
    sim = Simulator()
    for i, delay in enumerate([1.0, 2.5, 2.5, 9.0]):
        sim.schedule_callback(delay, tick, i)
    sim.run(until=2.0)
    blob = pickle.dumps(sim)
    prefix = list(LOG)

    sim2 = pickle.loads(blob)
    assert sim2.now == 2.0
    sim2.run()
    resumed = list(LOG)

    LOG.clear()
    ref = Simulator()
    for i, delay in enumerate([1.0, 2.5, 2.5, 9.0]):
        ref.schedule_callback(delay, tick, i)
    ref.run()
    assert resumed == LOG == prefix + LOG[len(prefix):]
    assert sim2.now == ref.now
    assert sim2.events_processed == ref.events_processed


def test_restore_rejects_schema_mismatch():
    sim = Simulator()
    blob = sim.snapshot()
    blob["schema"] = 999
    with pytest.raises(SimulationError, match="schema"):
        Simulator().restore(blob)
