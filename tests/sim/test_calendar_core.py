"""Calendar-core internals: timers, pooling, overflow, the front slot.

The observable-contract tests live in ``test_core_equivalence.py``;
this file pins down the mechanisms — O(1) timer cancellation, handle
recycling through the pool, far-future spill and promotion, window
adaptation, and the front-slot ordering edge cases.
"""

import pytest

from repro.sim import Simulator, engine
from repro.sim.engine import SimulationError


@pytest.fixture(params=engine.CORES)
def core(request):
    with engine.use_core(request.param):
        yield request.param


# --------------------------------------------------------------------------
# Timer semantics (both cores)
# --------------------------------------------------------------------------

def test_timer_fires_with_args(core):
    sim = Simulator()
    fired = []
    sim.schedule_timer(5.0, fired.append, "a")
    sim.schedule_timer(3.0, fired.append, "b")
    sim.run()
    assert fired == ["b", "a"]
    assert sim.now == 5.0


def test_cancelled_timer_does_not_fire(core):
    sim = Simulator()
    fired = []
    keep = sim.schedule_timer(4.0, fired.append, "keep")
    drop = sim.schedule_timer(2.0, fired.append, "drop")
    drop.cancel()
    sim.run()
    assert fired == ["keep"]
    assert keep.when == 4.0


def test_cancel_is_idempotent_and_late_cancel_is_noop(core):
    sim = Simulator()
    fired = []
    h = sim.schedule_timer(1.0, fired.append, "x")
    sim.run()
    assert fired == ["x"]
    h.cancel()  # already fired: no-op
    h.cancel()  # and again
    assert fired == ["x"]


def test_cancelled_timer_entry_still_advances_clock(core):
    """A dead entry is popped as a no-op but its timestamp is still
    observed — run() drains the schedule, exactly like the seed."""
    sim = Simulator()
    sim.schedule_timer(7.0, lambda: None).cancel()
    sim.run()
    assert sim.now == 7.0


def test_timer_cancel_inside_callback(core):
    sim = Simulator()
    fired = []
    victim = sim.schedule_timer(10.0, fired.append, "victim")
    sim.schedule_callback(5.0, victim.cancel)
    sim.run()
    assert fired == []


# --------------------------------------------------------------------------
# Handle pooling (both cores pool; identity proves recycling)
# --------------------------------------------------------------------------

def test_pool_recycles_handle_after_fire(core):
    sim = Simulator()
    first = sim.schedule_timer(1.0, lambda: None)
    sim.run()
    second = sim.schedule_timer(1.0, lambda: None)
    assert second is first


def test_pool_recycles_handle_after_cancel(core):
    sim = Simulator()
    first = sim.schedule_timer(1.0, lambda: None)
    first.cancel()
    sim.run()  # the dead entry pops; the handle returns to the pool
    second = sim.schedule_timer(1.0, lambda: None)
    assert second is first
    fired = []
    second.cancel()
    third = sim.schedule_timer(0.5, fired.append, "live")
    sim.run()
    assert third is not second  # second's entry is still in flight
    assert fired == ["live"]


def test_pool_does_not_recycle_in_flight_handles(core):
    sim = Simulator()
    first = sim.schedule_timer(5.0, lambda: None)
    second = sim.schedule_timer(6.0, lambda: None)
    assert second is not first


# --------------------------------------------------------------------------
# Far-future overflow and promotion (calendar core only)
# --------------------------------------------------------------------------

def _calendar_sim():
    with engine.use_core("calendar"):
        return Simulator()


def test_far_future_entries_spill_and_promote():
    sim = _calendar_sim()
    order = []
    sim.schedule_callback(1.0, order.append, "near")
    far_when = Simulator.NEAR_WINDOW_US * 10
    for i in range(3):
        sim.schedule_callback(far_when + i, order.append, f"far{i}")
    stats = sim.stats()
    assert stats["far_spills"] == 3
    assert stats["far_depth"] == 3
    sim.run()
    assert order == ["near", "far0", "far1", "far2"]
    stats = sim.stats()
    assert stats["promotions"] >= 1
    assert stats["far_depth"] == 0


def test_window_doubles_when_overflow_fits_one_window():
    sim = _calendar_sim()
    width0 = sim.stats()["near_window_us"]
    sim.schedule_callback(1.0, lambda: None)
    sim.schedule_callback(width0 * 5, lambda: None)  # spills, then promotes
    sim.run()
    assert sim.stats()["near_window_us"] == width0 * 2


def test_front_insert_accounting():
    sim = _calendar_sim()
    sim.schedule_callback(1.0, lambda: None)   # empty front: front insert
    sim.schedule_callback(2.0, lambda: None)   # later than front: near heap
    stats = sim.stats()
    assert stats["schedules"] == 2
    assert stats["front_inserts"] == 1
    assert stats["near_pushes"] == 1
    assert stats["near_depth"] == 2


def test_front_pop_defers_to_earlier_far_entry():
    """Regression: a stale front slot must not fire past a far entry.

    The front bypasses the horizon, so after a displacement parks an
    entry in the far list a *later* front fill can leave
    ``far_min < front``; the front-pop path has to promote first.
    """
    sim = _calendar_sim()
    order = []
    late = Simulator.NEAR_WINDOW_US * 12
    sim.schedule_callback_at(late + 1000.0, order.append, "far")
    # displaces the far entry out of the front slot:
    sim.schedule_callback_at(
        late, lambda: sim.schedule_callback(2000.0, order.append, "front")
    )
    sim.run()
    assert order == ["far", "front"]
    assert sim.now == late + 2000.0


def test_peek_sees_all_three_tiers():
    sim = _calendar_sim()
    assert sim.peek() == float("inf")
    sim.schedule_callback(50.0, lambda: None)          # front
    assert sim.peek() == 50.0
    sim.schedule_callback(60.0, lambda: None)          # near heap
    assert sim.peek() == 50.0
    sim.schedule_callback(10.0, lambda: None)          # displaces front
    assert sim.peek() == 10.0
    far = Simulator.NEAR_WINDOW_US * 20
    sim2 = _calendar_sim()
    sim2.schedule_callback(1.0, lambda: None)
    sim2.schedule_callback(far, lambda: None)          # far list
    assert sim2.peek() == 1.0


def test_step_drains_in_run_order():
    def build(sim, log):
        sim.schedule_callback(2.0, log.append, "b")
        sim.schedule_callback(1.0, log.append, "a")
        sim.schedule_timer(Simulator.NEAR_WINDOW_US * 8, log.append, "far")
        sim.schedule_callback(2.0, log.append, "c")  # same-time tie

    ref_sim, ref = _calendar_sim(), []
    build(ref_sim, ref)
    ref_sim.run()

    sim, log = _calendar_sim(), []
    build(sim, log)
    steps = 0
    while sim.peek() != float("inf"):
        sim.step()
        steps += 1
    assert log == ref == ["a", "b", "c", "far"]
    assert steps == sim.events_processed == ref_sim.events_processed
    with pytest.raises(SimulationError, match="empty schedule"):
        sim.step()


def test_run_until_pauses_and_resumes():
    sim = _calendar_sim()
    order = []
    sim.schedule_callback(10.0, order.append, "early")
    sim.schedule_callback(30.0, order.append, "late")
    sim.run(until=20.0)
    assert order == ["early"]
    assert sim.now == 20.0
    with pytest.raises(ValueError, match="lies in the past"):
        sim.run(until=5.0)
    sim.run()
    assert order == ["early", "late"]


def test_stats_report_shape():
    sim = _calendar_sim()
    keys = set(sim.stats())
    assert {
        "core", "schedules", "front_inserts", "near_pushes", "far_spills",
        "promotions", "near_depth", "far_depth", "near_window_us",
        "timer_pool_hits", "timer_pool_misses", "timer_pool_size",
    } <= keys
    assert sim.stats()["core"] == "calendar"
    with engine.use_core("heap"):
        assert Simulator().stats()["core"] == "heap"
