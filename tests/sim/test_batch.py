"""Batched vs scalar dispatch: bit-identical timelines, engagement,
and per-cell fallbacks.

The batch kernels (:mod:`repro.sim.batch`) promise *exact* scalar
semantics — same model-state deltas, same ``sim.now``, same
``events_processed`` accounting — so every comparison here is full
float precision (``float.hex``), never approximate.  Three layers:

* every perturbation scenario (the shrunk fig3–fig9 + sample_sort
  code paths) under batching on vs off;
* the ring64 sharded workload at 1/2/4 shards;
* the fig4-class train pipeline, both on the clean shape where the
  kernels engage (asserted via ``batch_fused``) and on the shapes that
  must fall back: lossy output links, finite receive FIFOs, waiting
  getters, and randomized cross-traffic stress worlds.
"""

import random

import pytest

from repro.analysis import perturb
from repro.atm.cell import Cell
from repro.atm.link import Link
from repro.atm.switch import Switch
from repro.bench import shard64
from repro.bench.micro import _RxCollector, build_train_pipeline
from repro.sim import Simulator, batch


def _scenario_metrics(name, batched):
    with batch.use_batching(batched):
        metrics = perturb._SCENARIOS[name]()
    return perturb._canonical_metrics(metrics)


@pytest.mark.parametrize("name", perturb.scenario_names())
def test_scenarios_identical_batched_vs_scalar(name):
    assert _scenario_metrics(name, False) == _scenario_metrics(name, True)


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_ring64_identical_batched_vs_scalar(n_shards):
    spec = shard64.Ring64Spec(ring_cells=8, incast_cells=4, incast_at_us=120.0)
    mode = "local" if n_shards == 1 else "inline"
    with batch.use_batching(False):
        base = shard64.run(n_shards, mode=mode, spec=spec)
    with batch.use_batching(True):
        result = shard64.run(n_shards, mode=mode, spec=spec)
    assert result["islands"] == base["islands"]


# --------------------------------------------------------------------------
# The train pipeline: engagement and final-state identity
# --------------------------------------------------------------------------

def _pipeline_state(sim, collector, extra=()):
    state = {
        "now": sim.now.hex(),
        "events": sim.events_processed,
        "cells": [(c.vci, c.seq) for c in collector.input_fifo.items],
        "fifo_drops": collector.input_fifo_drops,
    }
    for label, obj, attrs in extra:
        for attr in attrs:
            state[f"{label}.{attr}"] = getattr(obj, attr)
    return state


def _run_pipeline(batched, **kwargs):
    with batch.use_batching(batched):
        sim, collector = build_train_pipeline(**kwargs)
        sim.run()
    return sim, collector


def test_pipeline_identical_and_kernels_engage():
    sim_s, col_s = _run_pipeline(False, n_trains=40, cells_per_train=12)
    sim_b, col_b = _run_pipeline(True, n_trains=40, cells_per_train=12)
    assert _pipeline_state(sim_b, col_b) == _pipeline_state(sim_s, col_s)
    assert sim_s.stats()["batch_fused"] == 0
    # 12-cell trains on the quiet pipeline absorb the whole cascade
    # (train expansion + bulk delivery), so fused >> trains.
    assert sim_b.stats()["batch_fused"] >= 40 * 12


def test_pipeline_identical_with_overlapping_trains():
    # A gap smaller than the train's serialization span defeats the
    # quiet-window precondition: kernels must fall back per entry and
    # still match exactly.
    kwargs = dict(n_trains=30, cells_per_train=8, gap_us=10.0)
    sim_s, col_s = _run_pipeline(False, **kwargs)
    sim_b, col_b = _run_pipeline(True, **kwargs)
    assert _pipeline_state(sim_b, col_b) == _pipeline_state(sim_s, col_s)


# --------------------------------------------------------------------------
# Fallback shapes: lossy links, finite FIFOs, cross traffic
# --------------------------------------------------------------------------

def _lossy_world(batched, drop_every=3):
    """Train pipeline with a deterministic loss function on the switch's
    output link — the train-expansion kernel must refuse (the output
    is not clean) and the per-cell path must keep exact drop counts."""
    with batch.use_batching(batched):
        sim = Simulator()
        tx = Link(sim, name="lossy.tx")
        switch = Switch(sim, 2)
        tx.connect(switch.input_sink(0), train_sink=switch.input_train_sink(0))
        switch.add_route(0, 32, 1, 32)
        out = switch.output_links[1]
        counter = {"n": 0}

        def loss(cell):
            counter["n"] += 1
            return counter["n"] % drop_every == 0

        out.loss_fn = loss
        collector = _RxCollector(sim, capacity=float("inf"))
        out.connect(collector._rx_sink)
        cells = [Cell(32, bytes(48), seq=i) for i in range(10)]

        def pump(i):
            tx.put_train(cells)
            if i + 1 < 20:
                sim.schedule_callback(120.0, pump, i + 1)

        sim.schedule_callback(0.0, pump, 0)
        sim.run()
    return _pipeline_state(
        sim, collector,
        extra=[("out", out, ("cells_sent", "cells_dropped", "bytes_sent"))],
    )


def test_lossy_link_fallback_identical():
    scalar = _lossy_world(False)
    batched = _lossy_world(True)
    assert scalar["out.cells_dropped"] > 0
    assert batched == scalar


def _stress_world(seed, batched):
    """Randomized two-source pipeline: mixed trains and singles, VCI
    translation, finite queues and FIFOs, optional loss — every
    fallback path plus the fast path, under one seed for both arms."""
    rng = random.Random(seed)
    cells_per_train = rng.randint(2, 20)
    n_trains = rng.randint(5, 25)
    gap = rng.choice([5.0, 40.0, 150.0])
    fifo_capacity = rng.choice([float("inf"), 8, 64])
    queue_cells = rng.choice([float("inf"), 16])
    lossy = rng.random() < 0.3
    cross_gap = rng.choice([7.0, 33.0])

    with batch.use_batching(batched):
        sim = Simulator()
        tx = Link(sim, name="stress.tx", queue_cells=queue_cells)
        cross = Link(sim, name="stress.cross")
        switch = Switch(sim, 3)
        tx.connect(switch.input_sink(0), train_sink=switch.input_train_sink(0))
        cross.connect(
            switch.input_sink(1), train_sink=switch.input_train_sink(1)
        )
        switch.add_route(0, 32, 2, 77)  # VCI translation on the hot route
        switch.add_route(1, 40, 2, 40)
        out = switch.output_links[2]
        if lossy:
            counter = {"n": 0}

            def loss(cell):
                counter["n"] += 1
                return counter["n"] % 5 == 0

            out.loss_fn = loss
        collector = _RxCollector(sim, capacity=fifo_capacity)
        out.connect(collector._rx_sink)

        train = [Cell(32, bytes(48), seq=i) for i in range(cells_per_train)]

        def pump(i):
            tx.put_train(train)
            if i + 1 < n_trains:
                sim.schedule_callback(gap, pump, i + 1)

        def cross_pump(i):
            cross.send(Cell(40, bytes(48), seq=1000 + i))
            if i + 1 < 30:
                sim.schedule_callback(cross_gap, cross_pump, i + 1)

        sim.schedule_callback(0.0, pump, 0)
        sim.schedule_callback(1.5, cross_pump, 0)
        sim.run()
    return _pipeline_state(
        sim, collector,
        extra=[
            ("tx", tx, ("cells_sent", "cells_dropped", "trains_sent")),
            ("out", out, ("cells_sent", "cells_dropped", "bytes_sent")),
            ("sw", switch, ("cells_switched", "cells_unrouted")),
        ],
    )


@pytest.mark.parametrize("seed", range(12))
def test_randomized_stress_identical(seed):
    assert _stress_world(seed, True) == _stress_world(seed, False)


def test_waiting_getter_disables_bulk_extend():
    # A process blocked on the receive FIFO makes the bulk-append
    # replacement unsound; the kernels must keep per-entry dispatch for
    # it and deliver the identical wakeup timeline.
    def run(batched):
        with batch.use_batching(batched):
            sim, collector = build_train_pipeline(
                n_trains=6, cells_per_train=6
            )
            got = []

            def consumer():
                for _ in range(12):
                    cell = yield collector.input_fifo.get()
                    got.append((sim.now.hex(), cell.seq))

            sim.process(consumer(), name="consumer")
            sim.run()
        return got, _pipeline_state(sim, collector)

    got_s, state_s = run(False)
    got_b, state_b = run(True)
    assert got_b == got_s
    assert len(got_b) == 12
    assert state_b == state_s


def test_batching_env_and_override_config():
    assert batch.enabled_config() in (True, False)
    with batch.use_batching(False):
        assert batch.enabled_config() is False
        assert not batch.runtime_active()
        with batch.use_batching(True):
            assert batch.enabled_config() is True
    assert "batch=" in batch.cache_tag()
    assert "numpy=" in batch.cache_tag()
