"""Unit tests for Store and Resource."""

import pytest

from repro.sim import Resource, Simulator, SimulationError, Store


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)

        def proc():
            yield store.put("x")
            item = yield store.get()
            return item

        p = sim.process(proc())
        sim.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)

        def getter():
            item = yield store.get()
            return (sim.now, item)

        def putter():
            yield sim.timeout(30.0)
            yield store.put("late")

        p = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert p.value == (30.0, "late")

    def test_put_blocks_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=1)

        def producer():
            yield store.put(1)
            t_before = sim.now
            yield store.put(2)  # blocks until the consumer takes item 1
            return (t_before, sim.now)

        def consumer():
            yield sim.timeout(20.0)
            yield store.get()

        p = sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert p.value == (0.0, 20.0)

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_try_put_drops_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put("a")
        assert store.try_put("b")
        assert not store.try_put("c")
        assert len(store) == 2

    def test_try_get_empty_returns_none(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None

    def test_try_put_hands_to_waiting_getter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)

        def getter():
            item = yield store.get()
            return item

        p = sim.process(getter())
        sim.run()  # getter is now blocked
        assert store.try_put("direct")
        sim.run()
        assert p.value == "direct"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Store(Simulator(), capacity=0)

    def test_is_full(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert not store.is_full
        store.try_put(1)
        assert store.is_full


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        spans = []

        def worker(tag):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(10.0)
            res.release(req)
            spans.append((tag, start, sim.now))

        for tag in "ab":
            sim.process(worker(tag))
        sim.run()
        assert spans == [("a", 0.0, 10.0), ("b", 10.0, 20.0)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        ends = []

        def worker():
            req = res.request()
            yield req
            yield sim.timeout(10.0)
            res.release(req)
            ends.append(sim.now)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert ends == [10.0, 10.0, 20.0]

    def test_use_helper(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(5.0)
            return sim.now

        p1 = sim.process(worker())
        p2 = sim.process(worker())
        sim.run()
        assert (p1.value, p2.value) == (5.0, 10.0)

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_queued_count(self):
        sim = Simulator()
        res = Resource(sim)

        def holder():
            yield from res.use(100.0)

        def waiter():
            yield from res.use(1.0)

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=50.0)
        assert res.in_use == 1
        assert res.queued == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)

    def test_use_is_exception_safe(self):
        """If the holder dies mid-use, the resource is released."""
        sim = Simulator()
        res = Resource(sim)

        def dier():
            try:
                yield from res.use(10.0)
            finally:
                pass

        def killer(target):
            yield sim.timeout(5.0)
            target.interrupt()

        def follower():
            yield sim.timeout(6.0)
            yield from res.use(1.0)
            return sim.now

        p = sim.process(dier())
        sim.process(killer(p))
        f = sim.process(follower())
        with pytest.raises(Exception):
            sim.run()  # the Interrupt escapes dier
        sim.run()
        assert f.value == 7.0
