"""The in-process sharded engine: routing, merge rule, parity, A/B.

Layers of evidence, mirroring ``tests/sim/test_core_equivalence.py``:

* **selection** — ``REPRO_SIM_SHARDS``/``use_shards`` routes
  :class:`Simulator` construction, and shards=1 collapses to the plain
  single-core class (byte-identical by construction, not by testing);
* **merge-rule regressions** — same-timestamp entries on different
  timelines drain in ascending shard order regardless of insertion
  order, and the global clock reads the executing entry's timestamp
  *during* execution;
* **randomized parity** — tie-free randomized workloads spread over
  2/4 shards produce the exact single-core timeline;
* **figure-scenario identity** — every perturbation scenario (shrunk
  fig3–fig9 + sample_sort) yields bit-identical metrics under the
  sharded engine at 2 and 4 shards, driving the real codec, lookahead
  asserts, and cross-timeline scheduling via the auto-partitioned star.
"""

import random

import pytest

from repro.analysis import perturb
from repro.sim import Simulator, engine
from repro.sim.shard.errors import ShardError
from repro.sim.shard.sharded import ShardedSimulator


# --------------------------------------------------------------------------
# Engine selection
# --------------------------------------------------------------------------

def test_use_shards_routes_simulator_construction():
    with engine.use_shards(3):
        assert engine.shard_count() == 3
        sim = Simulator()
        assert type(sim) is ShardedSimulator
        assert sim.n_shards == 3
    assert engine.shard_count() == 1


def test_shards_one_is_the_plain_single_core_class():
    with engine.use_shards(1):
        sim = Simulator()
    assert type(sim) is Simulator  # not a subclass: zero added overhead


def test_set_shards_validates():
    with pytest.raises(ValueError):
        engine.set_shards(0)
    with pytest.raises(ValueError):
        engine.set_shards(-2)


def test_shard_scope_validates_range():
    sim = ShardedSimulator(2)
    with pytest.raises(ShardError):
        sim.shard_scope(2)
    with sim.shard_scope(1):
        assert sim.current_shard == 1
    assert sim.current_shard == 0


# --------------------------------------------------------------------------
# Merge-rule regressions
# --------------------------------------------------------------------------

def test_same_timestamp_cross_shard_ties_drain_in_shard_order():
    """Insertion order says shard 1 first; the merge rule says shard 0."""
    sim = ShardedSimulator(2)
    order = []
    with sim.shard_scope(1):
        sim.schedule_callback_at(5.0, order.append, "shard1-first-insert")
    with sim.shard_scope(0):
        sim.schedule_callback_at(5.0, order.append, "shard0-second-insert")
        sim.schedule_callback_at(5.0, order.append, "shard0-third-insert")
    sim.run()
    # ascending shard id wins the tie; FIFO seq order holds within a shard
    assert order == [
        "shard0-second-insert", "shard0-third-insert", "shard1-first-insert",
    ]


def test_global_clock_reads_executing_timestamp():
    sim = ShardedSimulator(3)
    seen = []
    for shard, at in ((2, 1.5), (1, 2.5), (0, 4.0)):
        with sim.shard_scope(shard):
            sim.schedule_callback_at(at, lambda s=shard: seen.append((sim.now, s)))
    sim.run()
    assert seen == [(1.5, 2), (2.5, 1), (4.0, 0)]


def test_run_until_reanchors_every_timeline():
    sim = ShardedSimulator(2)
    with sim.shard_scope(1):
        sim.schedule_callback_at(10.0, lambda: None)
    sim.run(until=4.0)
    assert sim.now == 4.0
    # relative scheduling on *either* shard now uses the global base
    fired = []
    with sim.shard_scope(0):
        sim.schedule_callback(1.0, lambda: fired.append(sim.now))
    sim.run(until=5.0)
    assert fired == [5.0]


def test_events_processed_sums_timelines_and_stats_merge():
    sim = ShardedSimulator(2)
    for shard in (0, 1):
        with sim.shard_scope(shard):
            sim.schedule_callback_at(1.0 + shard, lambda: None)
    sim.run()
    assert sim.events_processed == 2
    stats = sim.stats()
    assert stats["core"] == "sharded-calendar"
    assert stats["shards"] == 2
    assert stats["events_per_shard"] == [1, 1]
    assert stats["cross_messages"] == 0


def test_earliest_output_time_is_peek_plus_lookahead():
    with engine.use_shards(1):
        sim = Simulator()
    assert sim.earliest_output_time(5.0) == float("inf")
    sim.schedule_callback_at(3.0, lambda: None)
    assert sim.earliest_output_time(5.0) == 8.0
    assert sim.earliest_output_time() == 3.0


# --------------------------------------------------------------------------
# Randomized parity (tie-free workloads)
# --------------------------------------------------------------------------

def _drive(sim, seed, n_shards, log):
    """Replay a seed-derived workload; continuous timestamps keep the
    probability of a cross-shard tie at zero, so the merged timeline
    must equal the single-core one *exactly* (cross-shard tie order is
    the one freedom the engine does not promise)."""
    scope = getattr(sim, "shard_scope", None)

    def fire(tag, depth):
        log.append((sim.now.hex(), tag))
        rng = random.Random(f"{seed}:{tag}")
        if depth < 3:
            for i in range(rng.randrange(3)):
                sim.schedule_callback(
                    rng.uniform(0.0625, 40.0), fire, f"{tag}.{i}", depth + 1
                )

    def proc(tag):
        rng = random.Random(f"{seed}:p{tag}")
        for i in range(3):
            yield sim.timeout(rng.uniform(0.0625, 15.0))
            log.append((sim.now.hex(), f"p{tag}.{i}"))

    boot = random.Random(seed)
    for tag in range(24):
        shard = tag % n_shards
        ctx = scope(shard) if scope is not None else _null()
        with ctx:
            sim.schedule_callback_at(boot.uniform(0.0, 30.0), fire, str(tag), 0)
            if tag % 5 == 0:
                sim.process(proc(tag))
    sim.run()


class _null:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("n_shards", [2, 4])
def test_randomized_timeline_matches_single_core(seed, n_shards):
    with engine.use_shards(1):
        base_sim = Simulator()
    base_log = []
    _drive(base_sim, seed, n_shards, base_log)

    sharded = ShardedSimulator(n_shards)
    shard_log = []
    _drive(sharded, seed, n_shards, shard_log)

    assert shard_log == base_log
    assert len(base_log) > 50
    assert sharded.events_processed == base_sim.events_processed
    assert sharded.now.hex() == base_sim.now.hex()
    # the work genuinely spread: no timeline hogged everything
    per_shard = sharded.stats()["events_per_shard"]
    assert sum(1 for c in per_shard if c > 0) == n_shards


# --------------------------------------------------------------------------
# Figure scenarios through the auto-partitioned star
# --------------------------------------------------------------------------

@pytest.mark.parametrize("n_shards", [1, 2, 4])
@pytest.mark.parametrize("name", perturb.scenario_names())
def test_figure_scenario_bit_identical_across_shard_counts(name, n_shards):
    with engine.use_shards(1):
        baseline = perturb._canonical_metrics(perturb._SCENARIOS[name]())
    with engine.use_shards(n_shards):
        sharded = perturb._canonical_metrics(perturb._SCENARIOS[name]())
    assert sharded == baseline


def test_figure_scenario_actually_crosses_the_cut():
    """The A/B above is vacuous unless traffic really uses the channels."""
    with engine.use_shards(2):
        sim_holder = {}
        orig = ShardedSimulator._schedule_cross

        def spy(self, *args, **kw):
            sim_holder["sim"] = self
            return orig(self, *args, **kw)

        ShardedSimulator._schedule_cross = spy
        try:
            perturb._SCENARIOS["fig3"]()
        finally:
            ShardedSimulator._schedule_cross = orig
    assert sim_holder["sim"].cross_messages > 0
