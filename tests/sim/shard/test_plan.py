"""Partition plans: block ownership, cut-edge registry, lookahead."""

import pytest

from repro.sim.shard import CutEdge, ShardPlan, block_owner
from repro.sim.shard.errors import ShardError


def test_block_owner_partitions_contiguously():
    owners = [block_owner(i, 8, 3) for i in range(8)]
    assert owners == sorted(owners)  # contiguous blocks
    assert set(owners) == {0, 1, 2}  # every shard gets work
    # block sizes differ by at most one
    counts = [owners.count(s) for s in range(3)]
    assert max(counts) - min(counts) <= 1


def test_block_owner_identity_cases():
    assert [block_owner(i, 5, 1) for i in range(5)] == [0] * 5
    assert [block_owner(i, 4, 4) for i in range(4)] == [0, 1, 2, 3]


def test_plan_assignments_and_edges():
    plan = ShardPlan(3)
    plan.assign("switch", 0)
    plan.assign("hostA", 1)
    edge = plan.add_edge("fiberA", 1, 0, lookahead_us=3.2)
    assert plan.owner("switch") == 0
    assert plan.owner("hostA") == 1
    assert edge.edge_id == 0
    assert plan.edge(0) is edge
    assert plan.edge_named("fiberA") is edge
    second = plan.add_edge("fiberB", 0, 2, lookahead_us=1.5)
    assert second.edge_id == 1  # dense ids in registration order


def test_plan_min_outgoing_lookahead():
    plan = ShardPlan(3)
    plan.add_edge("a", 0, 1, lookahead_us=5.0)
    plan.add_edge("b", 0, 2, lookahead_us=2.0)
    plan.add_edge("c", 1, 0, lookahead_us=9.0)
    assert plan.min_outgoing_lookahead(0) == 2.0
    assert plan.min_outgoing_lookahead(1) == 9.0
    assert plan.min_outgoing_lookahead(2) == float("inf")


def test_plan_rejects_bad_shards_and_duplicates():
    plan = ShardPlan(2)
    plan.assign("x", 1)
    plan.assign("x", 1)  # idempotent re-assignment is fine
    with pytest.raises(ShardError):
        plan.assign("x", 0)  # moving an object is not
    with pytest.raises(ValueError):
        plan.assign("y", 2)  # out of range
    plan.add_edge("e", 0, 1, lookahead_us=1.0)
    with pytest.raises(ShardError):
        plan.add_edge("e", 1, 0, lookahead_us=1.0)  # duplicate name
    with pytest.raises(ValueError):
        plan.add_edge("f", 0, 2, lookahead_us=1.0)  # dst out of range
    with pytest.raises(ValueError):
        plan.add_edge("g", 0, 1, lookahead_us=-1.0)  # negative lookahead
    # a shard-level self-edge is legal: two islands of one worker can
    # share a scenario-level cut edge (it degrades to a direct channel)
    plan.add_edge("h", 0, 0, lookahead_us=1.0)


def test_cut_edge_is_frozen():
    edge = CutEdge(0, "e", 0, 1, 2.5)
    with pytest.raises(Exception):
        edge.lookahead_us = 1.0
