"""The multi-process coordinator: identity, protocol, crash handling.

The ring64 scenario (``repro.bench.shard64``) is the system-level
workload: four switched islands on a unidirectional trunk ring with a
ring-neighbour phase and an incast phase.  A shrunk spec keeps the
suite fast; the identity assertions are still full-precision (the
finalize dicts carry ``float.hex`` timestamp digests).

Crash tests use deliberately broken island builders; the contract is a
*typed* :class:`ShardCrashError` naming the shard — never a hang — and
the worker's remote traceback when the failure was an exception.
"""

import os

import pytest

from repro.bench import shard64
from repro.sim.shard import ShardContext, run_partitioned
from repro.sim.shard.errors import ShardCrashError

SPEC = shard64.Ring64Spec(ring_cells=8, incast_cells=4, incast_at_us=120.0)


@pytest.fixture(scope="module")
def baseline():
    return shard64.run(1, mode="local", spec=SPEC)


# --------------------------------------------------------------------------
# Cross-mode identity
# --------------------------------------------------------------------------

@pytest.mark.parametrize("n_shards,mode", [
    (2, "inline"), (4, "inline"), (2, "mp"), (4, "mp"),
])
def test_ring64_identical_across_modes(baseline, n_shards, mode):
    result = shard64.run(n_shards, mode=mode, spec=SPEC, timeout_s=60.0)
    assert result["islands"] == baseline["islands"]
    if mode == "mp":
        assert result["coordinator"]["rounds"] > 0  # windows really ran
    assert result["coordinator"]["events"] > 0


def test_ring64_auto_mode_selection(baseline):
    assert shard64.run(1, spec=SPEC)["coordinator"]["mode"] == "local"
    result = shard64.run(2, spec=SPEC, timeout_s=60.0)
    assert result["coordinator"]["mode"] == "mp"
    assert result["islands"] == baseline["islands"]


def test_ring64_delivers_the_full_traffic_matrix(baseline):
    islands = baseline["islands"]
    spec = SPEC
    # host 0 receives its ring neighbour's stream plus every incast flow
    host0 = islands[0]["hosts"][0]
    assert host0["rx"] == spec.ring_cells + (spec.n_hosts - 1) * spec.incast_cells
    # every other host receives exactly its ring neighbour's stream
    for island, data in islands.items():
        for p, host in enumerate(data["hosts"]):
            if (island, p) != (0, 0):
                assert host["rx"] == spec.ring_cells, (island, p)
        assert data["unrouted"] == 0
        assert data["trunk_cells"] > 0  # the cut carries real traffic
        assert not any(data["tx_dropped"])


# --------------------------------------------------------------------------
# Argument validation
# --------------------------------------------------------------------------

def test_run_partitioned_validates_mode_and_shard_count():
    with pytest.raises(ValueError, match="unknown mode"):
        run_partitioned(lambda ctx, i, s: dict, 2, 2, mode="turbo")
    with pytest.raises(ValueError, match="shard count"):
        run_partitioned(lambda ctx, i, s: dict, 2, 3)
    with pytest.raises(ValueError, match="shard count"):
        run_partitioned(lambda ctx, i, s: dict, 2, 0)


# --------------------------------------------------------------------------
# Worker crash propagation
# --------------------------------------------------------------------------

def _exploding_builder(ctx: ShardContext, island: int, spec):
    if island == 1:
        raise RuntimeError("builder kaboom on island 1")

    def finalize():
        return {}

    return finalize


def _exiting_builder(ctx: ShardContext, island: int, spec):
    if island == 1:
        os._exit(3)  # simulates an OOM-kill / hard death: no ERR message

    def finalize():
        return {}

    return finalize


def test_builder_exception_becomes_typed_crash_with_traceback():
    with pytest.raises(ShardCrashError) as info:
        run_partitioned(_exploding_builder, 2, 2, mode="mp", timeout_s=30.0)
    err = info.value
    assert err.shard == 1
    assert "builder kaboom" in err.reason
    assert "builder kaboom" in err.remote_traceback
    assert "shard 1" in str(err)


def test_worker_hard_death_becomes_typed_crash_not_hang():
    with pytest.raises(ShardCrashError) as info:
        run_partitioned(_exiting_builder, 2, 2, mode="mp", timeout_s=30.0)
    err = info.value
    assert err.shard == 1
    assert "died" in err.reason or "closed" in err.reason


def test_crash_leaves_no_live_workers():
    import multiprocessing

    with pytest.raises(ShardCrashError):
        run_partitioned(_exploding_builder, 2, 2, mode="mp", timeout_s=30.0)
    leftovers = [
        p for p in multiprocessing.active_children()
        if p.name.startswith("repro-shard-")
    ]
    for p in leftovers:
        p.join(timeout=5.0)
        assert not p.is_alive(), p.name
