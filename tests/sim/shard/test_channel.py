"""Wire codec round trips, remote stubs, and channel bookkeeping."""

import struct

import pytest

from repro.atm.cell import Cell
from repro.sim import Simulator, engine
from repro.sim.shard import (
    BufferedChannel,
    CutEdge,
    DirectChannel,
    InletRegistry,
    RemoteStub,
    decode_batch,
    decode_records,
    encode_batch,
    encode_cell,
    encode_train,
    stub_shard,
)
from repro.sim.shard.errors import CrossShardAccessError, ShardError


def _cell(vci=42, seq=7, last=True, fill=0xAB):
    return Cell(vci=vci, payload=bytes((fill,)) * 48, last=last, seq=seq)


# -- codec ----------------------------------------------------------------

def test_cell_roundtrip_is_bit_exact():
    ts = 123.456789012345  # an awkward float; must survive exactly
    cell = _cell()
    ((rec_type, recs),) = decode_records(encode_cell(ts, cell))
    assert rec_type == 1
    ((ts2, cell2, gid),) = recs
    assert ts2.hex() == ts.hex()
    assert (cell2.vci, cell2.seq, cell2.last) == (42, 7, True)
    assert cell2.payload == cell.payload
    assert gid == 0  # obs off: span context is the zero sentinel


def test_cell_span_context_survives_roundtrip():
    gid_in = (3 + 1) << 40 | 12345  # span_gid(shard=3, sid=12345)
    ((_, recs),) = decode_records(encode_cell(1.0, _cell(), gid_in))
    assert recs[0][2] == gid_in


def test_train_roundtrip_preserves_every_arrival():
    cells = [_cell(seq=i, last=i == 2) for i in range(3)]
    arrivals = [10.0, 10.0 + 53 * 8 / 140.0, 10.0 + 2 * 53 * 8 / 140.0]
    ((rec_type, recs),) = decode_records(encode_train(arrivals, cells))
    assert rec_type == 2
    assert [t.hex() for t, _, _ in recs] == [a.hex() for a in arrivals]
    assert [c.seq for _, c, _ in recs] == [0, 1, 2]
    assert [c.last for _, c, _ in recs] == [False, False, True]
    assert [g for _, _, g in recs] == [0, 0, 0]


def test_batch_roundtrip_and_framing():
    records = [encode_cell(1.0, _cell(seq=0)), encode_train([2.0], [_cell(seq=1)])]
    edge_id, decoded = decode_batch(encode_batch(9, records))
    assert edge_id == 9
    assert [rec_type for rec_type, _ in decoded] == [1, 2]


def test_truncated_payloads_raise_typed_errors():
    blob = encode_cell(1.0, _cell())
    with pytest.raises(ShardError, match="truncated"):
        decode_records(blob[:-5])
    with pytest.raises(ShardError, match="truncated"):
        decode_records(blob[:3])
    with pytest.raises(ShardError, match="truncated"):
        decode_batch(b"\x01")


def test_unknown_record_type_and_trailing_bytes_raise():
    bad = struct.pack("<BI", 77, 0)
    with pytest.raises(ShardError, match="unknown"):
        decode_records(bad)
    # garbage after a valid record reads as a torn next-record header
    with pytest.raises(ShardError, match="truncated"):
        decode_records(encode_cell(1.0, _cell()) + b"\x00")
    # a batch that promises more records than its payload carries
    with pytest.raises(ShardError, match="promised"):
        decode_batch(struct.pack("<II", 0, 3) + encode_cell(1.0, _cell()))


def test_train_arity_mismatch_raises():
    with pytest.raises(ShardError, match="arity"):
        encode_train([1.0, 2.0], [_cell()])


# -- remote stubs ---------------------------------------------------------

def test_stub_refuses_reads_and_writes_but_not_repr():
    stub = RemoteStub(3, "sw1.out4.peer")
    with pytest.raises(CrossShardAccessError, match="shard 3"):
        stub.cells_sent
    with pytest.raises(CrossShardAccessError):
        stub.cells_sent = 1
    assert "sw1.out4.peer" in repr(stub)
    assert stub_shard(stub) == 3


# -- channels + registry --------------------------------------------------

def _edge(**kw):
    defaults = dict(edge_id=0, name="e0", src_shard=0, dst_shard=0,
                    lookahead_us=1.0)
    defaults.update(kw)
    return CutEdge(**defaults)


def test_direct_channel_schedules_delivery_at_exact_ts():
    with engine.use_shards(1):
        sim = Simulator()
    got = []
    ch = DirectChannel(_edge(), sim, lambda cell: got.append((sim.now, cell.seq)))
    ch.send_cell(4.25, _cell(seq=11))
    sim.run()
    assert got == [(4.25, 11)]
    assert ch.cells_sent == 1


def test_buffered_channel_batches_and_drains():
    ch = BufferedChannel(_edge(edge_id=5))
    assert ch.take() is None
    ch.send_cell(1.0, _cell(seq=0))
    ch.send_train([2.0, 2.1], [_cell(seq=1), _cell(seq=2)])
    assert ch.pending == 2
    edge_id, records = decode_batch(ch.take())
    assert edge_id == 5
    assert len(records) == 2
    assert ch.pending == 0 and ch.take() is None
    assert (ch.cells_sent, ch.trains_sent) == (3, 1)


def test_registry_rejects_duplicate_inlets_and_unknown_edges():
    with engine.use_shards(1):
        sim = Simulator()
    registry = InletRegistry(sim)
    registry.register(0, lambda cell: None)
    with pytest.raises(ShardError, match="already registered"):
        registry.register(0, lambda cell: None)
    with pytest.raises(ShardError, match="no inlet"):
        registry.inject(1, [(1, [(1.0, _cell())])])
    # late-bound sinks fail at delivery time, not at bind time
    sink = registry.cell_sink(9)
    with pytest.raises(ShardError, match="no inlet"):
        sink(_cell())


def test_registry_inject_replays_at_decoded_timestamps():
    with engine.use_shards(1):
        sim = Simulator()
    registry = InletRegistry(sim)
    got = []
    registry.register(2, lambda cell: got.append((sim.now, cell.seq)))
    _, records = decode_batch(
        encode_batch(2, [encode_cell(3.5, _cell(seq=1)),
                         encode_cell(1.25, _cell(seq=0))])
    )
    assert registry.inject(2, records) == 2
    sim.run()
    assert got == [(1.25, 0), (3.5, 1)]  # time order, not batch order
