# simlint: disable-file=wall-clock -- this harness measures the real
# wall-clock speed of the engine itself, not simulated time.
"""Simulator performance harness: wall-clock, not simulated time.

Measures how fast the simulator itself runs — engine events/sec on both
scheduler cores, scheduler-internal statistics (front-slot absorption,
overflow spills, timer-pool hit rate), the batched-delivery A/B
(``REPRO_SIM_BATCH``), the checkpointed warm-suffix replay, the
wall-clock of regenerating every paper figure, and the cold/warm cost
of a cached sweep — and records the numbers in ``BENCH_perf.json`` at
the repository root so the perf trajectory is tracked from PR to PR.

Run directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_perf.py          # default set
    PYTHONPATH=src python benchmarks/bench_perf.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --all    # everything

The simulated results these figures produce are deterministic; only the
wall-clock numbers vary by machine.  Engine rates are best-of-N
(default 5) to shave scheduler noise; figure sweeps are timed cold
(result cache cleared) and, for the cache section, warm (pure hits).
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_perf.json"

sys.path.insert(0, str(Path(__file__).resolve().parent))

#: figure module -> rough weight; --quick keeps only the light ones.
QUICK_FIGURES = ["bench_fig4_bandwidth"]
DEFAULT_FIGURES = [
    "bench_table1_sba100",
    "bench_fig3_rtt",
    "bench_fig4_bandwidth",
    "bench_fig9_ip_latency",
]
ALL_FIGURES = DEFAULT_FIGURES + [
    "bench_fig6_kernel_latency",
    "bench_fig7_udp_bandwidth",
    "bench_fig8_tcp_bandwidth",
]

#: The sweep whose cold/warm/heap-core A/B is measured in detail.
CACHE_FIGURE = "bench_fig4_bandwidth"


#: Far-future timers parked while the callback chain runs.  A busy
#: simulated node always carries a pending population — retransmit and
#: delayed-ack timers, keepalives — that the hot data path schedules
#: around.  A binary heap pays O(log n) against that population on
#: every operation; the calendar core parks it in the far list and
#: keeps the hot chain in the front slot.
PARKED_TIMERS = 256


def _callback_rate(n_events: int, parked: int = PARKED_TIMERS) -> float:
    from repro.sim import Simulator

    sim = Simulator()

    def noop():
        pass

    for i in range(parked):
        sim.schedule_timer(1e9 + i, noop)  # parked; the run stops first
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule_callback(1.0, tick)

    sim.schedule_callback(1.0, tick)
    t0 = time.perf_counter()
    sim.run(until=n_events + 10.0)
    return n_events / (time.perf_counter() - t0)


def _process_rate(n_events: int) -> float:
    from repro.sim import Simulator

    sim = Simulator()

    def ticker():
        for _ in range(n_events):
            yield sim.timeout(1.0)

    sim.process(ticker())
    t0 = time.perf_counter()
    sim.run()
    return sim.events_processed / (time.perf_counter() - t0)


def engine_events_per_sec(n_events: int = 1_000_000, repeats: int = 5) -> dict:
    """Raw engine throughput A/B: both scheduler cores, best-of-N.

    ``callback`` runs the hot chain against :data:`PARKED_TIMERS`
    pending far-future timers (a busy node's steady state);
    ``callback_bare`` is the same chain with an otherwise-empty
    schedule, the degenerate case where no queue structure can help.

    ``callback_events_per_sec``/``process_events_per_sec`` report the
    active (default) core so the time series in BENCH_perf.json stays
    comparable across PRs; the ``cores`` sub-dict and speedup ratios
    compare the calendar core against the seed-shaped heap core measured
    in the same run.  Rounds alternate between the cores rather than
    running blocked per core, so slow machine-state drift (thermal,
    noisy neighbours) lands on both sides of the ratio — and each
    speedup is the *median of the per-round paired ratios*, not the
    ratio of best-of-N rates: on a host whose clock speed shifts
    between rounds, best-of-N hands whichever core happened to catch
    the fastest round an unearned win, while the paired median only
    credits differences both cores saw under the same conditions.
    """
    from repro.sim import batch, engine

    active = engine.current_core()
    kinds = {
        "callback": lambda: _callback_rate(n_events),
        "callback_bare": lambda: _callback_rate(n_events, parked=0),
        "process": lambda: _process_rate(n_events),
    }
    rounds = {core: {kind: [] for kind in kinds} for core in engine.CORES}
    # Batching off: these chains hit no registered kernel, so the only
    # effect would be the batched loop's per-entry kernel lookup — and
    # the point of this section is the scalar dispatch time series,
    # which must stay comparable across PRs.  The batched delivery path
    # has its own section (``batched``).
    with batch.use_batching(False):
        for _ in range(repeats):
            for core in engine.CORES:
                with engine.use_core(core):
                    for kind, measure in kinds.items():
                        rounds[core][kind].append(measure())
    cores = {
        core: {
            "callback_events_per_sec": round(max(rates["callback"])),
            "callback_bare_events_per_sec":
                round(max(rates["callback_bare"])),
            "process_events_per_sec": round(max(rates["process"])),
        }
        for core, rates in rounds.items()
    }

    def speedup(kind: str) -> float:
        ratios = sorted(
            cal / hp
            for cal, hp in zip(rounds["calendar"][kind], rounds["heap"][kind])
        )
        mid = len(ratios) // 2
        median = (
            ratios[mid]
            if len(ratios) % 2
            else (ratios[mid - 1] + ratios[mid]) / 2.0
        )
        return round(median, 3)

    return {
        "callback_events_per_sec": cores[active]["callback_events_per_sec"],
        "callback_bare_events_per_sec":
            cores[active]["callback_bare_events_per_sec"],
        "process_events_per_sec": cores[active]["process_events_per_sec"],
        "n_events": n_events,
        "parked_timers": PARKED_TIMERS,
        "best_of": repeats,
        "active_core": active,
        "cores": cores,
        "callback_speedup_calendar_vs_heap": speedup("callback"),
        "callback_bare_speedup_calendar_vs_heap": speedup("callback_bare"),
        "process_speedup_calendar_vs_heap": speedup("process"),
    }


def scheduler_stats(n_events: int = 50_000) -> dict:
    """Calendar-core internals on a mixed workload.

    The workload exercises every tier: near-future callbacks (front slot
    + near heap), armed-then-cancelled timers (pool recycling), and
    far-future entries beyond the horizon (overflow spills and
    promotions).
    """
    from repro.sim import engine, Simulator

    with engine.use_core("calendar"):
        sim = Simulator()
        remaining = [n_events]
        handle = [None]

        def tick():
            remaining[0] -= 1
            if handle[0] is not None:
                handle[0].cancel()
                handle[0] = None
            if remaining[0]:
                sim.schedule_callback(1.0, tick)
                sim.schedule_callback(1.3, noop)
                # re-armed every tick, cancelled before it can fire:
                # the retransmit-timer pattern
                handle[0] = sim.schedule_timer(50.0, noop)
                if remaining[0] % 500 == 0:
                    sim.schedule_callback(90_000.0, noop)  # beyond horizon

        def noop():
            pass

        sim.schedule_callback(1.0, tick)
        sim.run()
        stats = sim.stats()
    total = max(1, stats["schedules"])
    stats["front_absorption"] = round(stats["front_inserts"] / total, 3)
    pool_ops = stats["timer_pool_hits"] + stats["timer_pool_misses"]
    stats["timer_pool_hit_rate"] = round(
        stats["timer_pool_hits"] / pool_ops, 3
    ) if pool_ops else None
    return stats


def obs_profile(n: int = 30, repeats: int = 5) -> dict:
    """Span-tracing cost and engine self-profile on the fig3 ping-pong.

    Two numbers matter: the *off* path must stay within noise of the
    seed (the guards are one module-attribute load per instrumented
    function), and the *on* path's overhead factor tells users what a
    traced run costs.

    The factor is measured the same way as the engine core A/B: a
    warm-up run first, then ``repeats`` interleaved off/on rounds, and
    the reported factor is the *median of the per-round paired ratios*.
    A single off-then-on pair is dominated by warm-up and machine drift
    — early revisions of this harness reported spans-on as 0.82x, i.e.
    *faster* than off, purely because the off run also paid the import
    and allocator warm-up.
    """
    from repro import obs
    from repro.bench import micro

    profile: dict = {}

    def run_off():
        micro.raw_rtt(32, n=n)

    def run_on():
        with obs.collecting(profile_wall=True) as col:
            micro.raw_rtt(32, n=n)
        profile.clear()
        profile.update(col.engine_profile())
        profile["spans"] = len(col.spans)

    run_off()  # warm-up: imports, code objects, allocator pools
    offs, ons = [], []
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_off()
        offs.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_on()
        ons.append(time.perf_counter() - t0)
    ratios = sorted(on / off for on, off in zip(ons, offs))
    mid = len(ratios) // 2
    median = (
        ratios[mid]
        if len(ratios) % 2
        else (ratios[mid - 1] + ratios[mid]) / 2.0
    )
    return {
        "fig3_wall_s_off": round(min(offs), 4),
        "fig3_wall_s_on": round(min(ons), 4),
        "overhead_factor_on": round(median, 2),
        "best_of": repeats,
        "engine_profile": profile,
    }


def rtt_percentiles(n: int = 200) -> dict:
    """fig3 RTT tail latencies from the metrics histogram.

    Simulated time, so the numbers are deterministic and machine
    independent -- they gate the *model*, not the host: a change that
    shifts p99/p999 moved the simulated protocol stack, not the
    benchmark harness.  The log-bucketed histogram keys are exact to
    <0.8% relative error (see repro.obs.metrics.SUBBUCKETS).

    The workload is the *mixed* fig3 variant — the size classes cycled
    with jittered think time — because a single-size ping-pong puts
    every sample in one bucket and the percentiles degenerate to
    p50 == p99 == p999.  The perf gate asserts the spread is real
    (p999 > p50).
    """
    from repro import obs
    from repro.bench import micro

    with obs.collecting() as col:
        micro.mixed_rtt(n=n)
    summary = col.metrics.histogram("rtt_us").summary()
    return {
        "fig3_rtt_us": {
            "count": summary["count"],
            "p50": round(summary["p50"], 3),
            "p99": round(summary["p99"], 3),
            "p999": round(summary["p999"], 3),
        },
    }


def batched_throughput(
    n_trains: int = 1500, cells_per_train: int = 86, repeats: int = 5
) -> dict:
    """Effective events/s of the delivery pipeline, batched vs scalar.

    A fig4-class workload — 86-cell trains, one 4 KB AAL5 PDU each —
    through the switch into a receive FIFO (see
    :func:`repro.bench.micro.build_train_pipeline`).  Both modes are
    checked for bit-identical outcomes right here, then timed in
    paired rounds; the reported speedup is the median of the per-round
    scalar/batched ratios (same rationale as the engine core A/B).
    ``effective`` events/s counts the scalar-equivalent events the
    batched run replayed (``events_processed`` is identical by
    contract), so the two rates are directly comparable.
    """
    from repro.bench import micro
    from repro.sim import batch

    def run(on: bool):
        with batch.use_batching(on):
            sim, col = micro.build_train_pipeline(
                n_trains=n_trains, cells_per_train=cells_per_train
            )
            t0 = time.perf_counter()
            sim.run()
            wall = time.perf_counter() - t0
        return sim, col, wall

    # Warm-up round doubles as the identity check.
    s0, c0, _ = run(False)
    s1, c1, _ = run(True)
    identical = (
        s0.events_processed == s1.events_processed
        and s0.now == s1.now
        and len(c0.input_fifo.items) == len(c1.input_fifo.items)
        and c0.input_fifo_drops == c1.input_fifo_drops
    )
    scalar_walls, batched_walls, ratios = [], [], []
    for _ in range(repeats):
        _, _, w0 = run(False)
        _, _, w1 = run(True)
        scalar_walls.append(w0)
        batched_walls.append(w1)
        ratios.append(w0 / w1)
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
    )
    events = s1.events_processed
    stats = s1.stats()
    return {
        "scenario": f"train_pipeline({n_trains}x{cells_per_train})",
        "events": events,
        "identical": identical,
        "best_of": repeats,
        "scalar_events_per_sec": round(events / min(scalar_walls)),
        "batched_events_per_sec": round(events / min(batched_walls)),
        "batch_batches": stats["batch_batches"],
        "batch_fused": stats["batch_fused"],
        "speedup": round(median, 3),
    }


def warm_suffix_replay(
    warmup: int = 1200, suffix: int = 6, repeats: int = 3
) -> dict:
    """Checkpointed fig3 sweep: fork-cloned warm prefix vs cold rebuild.

    Every point shares a ``warmup``-ping warm world; the fork path
    builds it once and clones per point, the cold path rebuilds it per
    point.  Results are asserted identical (the checkpoint contract),
    and the speedup is the median of paired cold/fork wall ratios.
    When fork is unavailable the section records that and skips the
    ratio — the perf gate's floor is conditional on ``fork_available``.
    """
    from repro.bench import checkpoint, micro, parallel

    sizes = [0, 8, 16, 32, 48, 192, 512, 1024]

    def build():
        return micro.warm_rtt_world(warmup=warmup)

    def point(world, size):
        return micro.rtt_point_on(world, size, n=suffix).mean_us

    report = {
        "scenario": f"fig3_rtt(warmup={warmup}, suffix={suffix})",
        "points": len(sizes),
        "fork_available": parallel.fork_available(),
        "best_of": repeats,
    }
    if not report["fork_available"]:
        return report
    build()  # warm-up: imports, allocator pools
    ratios, fork_walls, cold_walls = [], [], []
    identical = True
    for _ in range(repeats):
        t0 = time.perf_counter()
        cold = checkpoint.sweep(build, point, sizes, use_fork=False)
        cold_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        forked = checkpoint.sweep(build, point, sizes, use_fork=True)
        fork_walls.append(time.perf_counter() - t0)
        ratios.append(cold_walls[-1] / fork_walls[-1])
        if forked != cold:
            identical = False
    ratios.sort()
    mid = len(ratios) // 2
    median = (
        ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2
    )
    report.update(
        identical=identical,
        cold_wall_s=round(min(cold_walls), 3),
        fork_wall_s=round(min(fork_walls), 3),
        speedup=round(median, 3),
    )
    return report


def sharded_throughput(repeats: int = 3) -> dict:
    """The 64-host ring/incast scenario across execution modes.

    Runs ``repro.bench.shard64`` single-core (the baseline every other
    mode must match bit for bit), in-process sharded (the verification
    mode: codec + merge on one thread, so its cost *is* the sharding
    overhead), and multi-process at 2 and 4 shards.  Every sharded run
    is checked for metric identity against the baseline right here —
    a perf number from a wrong simulation would be meaningless.

    Speedups are honest wall-clock ratios on *this* machine, recorded
    next to ``cpu_count``: on a single-core container the conservative
    windows cannot overlap and mp runs *slower* than the baseline (the
    sync rounds are pure overhead); the ratio only crosses 1 when real
    cores are available.  The gate therefore tracks each mode's
    events/s against its own committed baseline rather than asserting
    a fixed cross-mode ratio.
    """
    import os

    from repro.bench import shard64

    spec = shard64.Ring64Spec(ring_cells=512, incast_cells=128)

    def measure(n_shards: int, mode: str):
        best, result = None, None
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = shard64.run(n_shards, mode=mode, spec=spec)
            wall = time.perf_counter() - t0
            if best is None or wall < best:
                best = wall
        return best, result

    base_wall, base = measure(1, "local")
    events = base["coordinator"]["events"]
    report = {
        "scenario": "ring64",
        "hosts": spec.n_hosts,
        "ring_cells": spec.ring_cells,
        "incast_cells": spec.incast_cells,
        "events": events,
        "cpu_count": os.cpu_count(),
        "best_of": repeats,
        "identical": True,
        "local_wall_s": round(base_wall, 3),
        "local_events_per_sec": round(events / base_wall),
        "modes": {},
    }
    for n_shards, mode in [(2, "inline"), (4, "inline"), (2, "mp"), (4, "mp")]:
        wall, result = measure(n_shards, mode)
        if result["islands"] != base["islands"]:
            report["identical"] = False
        report["modes"][f"{mode}{n_shards}"] = {
            "wall_s": round(wall, 3),
            "events_per_sec": round(result["coordinator"]["events"] / wall),
            "rounds": result["coordinator"]["rounds"],
            "speedup_vs_local": round(base_wall / wall, 3),
        }
    return report


def time_figure(module_name: str) -> dict:
    """Cold wall time for one figure sweep (its cache entries cleared)."""
    from repro.bench import cache

    cache.clear()
    module = importlib.import_module(module_name)
    t0 = time.perf_counter()
    module.sweep()
    wall = time.perf_counter() - t0
    return {"wall_s": round(wall, 3)}


def cache_ab(module_name: str = CACHE_FIGURE) -> dict:
    """Cold vs. warm sweep, plus the heap-core cold A/B, for one figure."""
    from repro.bench import cache
    from repro.sim import engine

    module = importlib.import_module(module_name)
    cache.clear()
    cache.reset_counters()

    t0 = time.perf_counter()
    module.sweep()
    cold = time.perf_counter() - t0
    cold_misses = cache.misses

    t0 = time.perf_counter()
    module.sweep()
    warm = time.perf_counter() - t0
    warm_hits = cache.hits

    with engine.use_core("heap"):
        cache.clear()
        t0 = time.perf_counter()
        module.sweep()
        cold_heap = time.perf_counter() - t0

    return {
        "figure": module_name,
        "cold_wall_s": round(cold, 3),
        "warm_wall_s": round(warm, 4),
        "warm_over_cold": round(warm / cold, 4) if cold else None,
        "cold_wall_s_heap_core": round(cold_heap, 3),
        "cold_speedup_calendar_vs_heap": round(cold_heap / cold, 3) if cold else None,
        "points": cold_misses,
        "warm_hits": warm_hits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke subset")
    parser.add_argument("--all", action="store_true", help="every figure")
    parser.add_argument("--output", default=str(OUTPUT))
    parser.add_argument(
        "--best-of", type=int, default=5, metavar="N",
        help="repeats per engine measurement (default 5)",
    )
    args = parser.parse_args(argv)

    from repro.bench import cache, sweep_workers

    figures = QUICK_FIGURES if args.quick else (
        ALL_FIGURES if args.all else DEFAULT_FIGURES
    )
    repeats = 2 if args.quick else args.best_of
    report = {
        "python": sys.version.split()[0],
        "sweep_workers": sweep_workers(),
        "engine": engine_events_per_sec(repeats=repeats),
        "scheduler": scheduler_stats(),
        "obs": obs_profile(repeats=repeats),
        "percentiles": rtt_percentiles(),
        "batched": batched_throughput(
            n_trains=500 if args.quick else 1500, repeats=repeats
        ),
        "warm_suffix_replay": warm_suffix_replay(
            repeats=2 if args.quick else 3
        ),
        "sharded": sharded_throughput(repeats=1 if args.quick else 3),
        "figures": {},
    }
    eng = report["engine"]
    print(f"engine [{eng['active_core']}]: "
          f"{eng['process_events_per_sec']:,} events/s (processes), "
          f"{eng['callback_events_per_sec']:,} events/s (callbacks, "
          f"{eng['parked_timers']} parked timers), "
          f"{eng['callback_bare_events_per_sec']:,} events/s (bare)")
    print(f"engine A/B: callbacks {eng['callback_speedup_calendar_vs_heap']}x "
          f"(bare {eng['callback_bare_speedup_calendar_vs_heap']}x), "
          f"processes {eng['process_speedup_calendar_vs_heap']}x "
          f"(calendar vs heap core)")
    sched = report["scheduler"]
    print(f"scheduler: front absorption {sched['front_absorption']}, "
          f"{sched['far_spills']} spills / {sched['promotions']} promotions, "
          f"timer pool hit rate {sched['timer_pool_hit_rate']}")
    print(f"obs: spans-on overhead {report['obs']['overhead_factor_on']}x "
          f"on fig3 ({report['obs']['engine_profile'].get('spans', 0)} spans)")
    pct = report["percentiles"]["fig3_rtt_us"]
    print(f"rtt tails [fig3 mixed, n={pct['count']}]: p50 {pct['p50']}us, "
          f"p99 {pct['p99']}us, p999 {pct['p999']}us")
    bat = report["batched"]
    print(f"batched [{bat['scenario']}]: "
          f"{bat['batched_events_per_sec']:,} events/s vs "
          f"{bat['scalar_events_per_sec']:,} scalar, "
          f"{bat['speedup']}x (identical={bat['identical']}, "
          f"{bat['batch_fused']} fused)")
    warm = report["warm_suffix_replay"]
    if warm["fork_available"]:
        print(f"warm replay [{warm['scenario']}]: cold {warm['cold_wall_s']}s"
              f" vs fork {warm['fork_wall_s']}s, {warm['speedup']}x "
              f"(identical={warm['identical']})")
    else:
        print(f"warm replay [{warm['scenario']}]: fork unavailable, skipped")
    sh = report["sharded"]
    mode_line = ", ".join(
        f"{name} {m['speedup_vs_local']}x" for name, m in sh["modes"].items()
    )
    print(f"sharded [{sh['scenario']}, {sh['cpu_count']} cpus]: "
          f"local {sh['local_events_per_sec']:,} events/s; {mode_line} "
          f"(identical={sh['identical']})")
    for name in figures:
        result = time_figure(name)
        report["figures"][name] = result
        print(f"{name}: {result['wall_s']:.2f}s")
    report["cache"] = cache_ab()
    ab = report["cache"]
    print(f"cache [{ab['figure']}]: cold {ab['cold_wall_s']:.2f}s, "
          f"warm {ab['warm_wall_s']*1000:.0f}ms "
          f"({ab['warm_over_cold']:.2%} of cold), "
          f"heap-core cold {ab['cold_wall_s_heap_core']:.2f}s")
    cache.clear()

    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
