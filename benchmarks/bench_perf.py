# simlint: disable-file=wall-clock -- this harness measures the real
# wall-clock speed of the engine itself, not simulated time.
"""Simulator performance harness: wall-clock, not simulated time.

Measures how fast the simulator itself runs — engine events/sec plus
the wall-clock of regenerating each paper figure — and records the
numbers in ``BENCH_perf.json`` at the repository root so the perf
trajectory is tracked from PR to PR.

Run directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_perf.py          # default set
    PYTHONPATH=src python benchmarks/bench_perf.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --all    # everything

The simulated results these figures produce are deterministic; only the
wall-clock numbers vary by machine.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_perf.json"

sys.path.insert(0, str(Path(__file__).resolve().parent))

#: figure module -> rough weight; --quick keeps only the light ones.
QUICK_FIGURES = ["bench_fig4_bandwidth"]
DEFAULT_FIGURES = [
    "bench_table1_sba100",
    "bench_fig3_rtt",
    "bench_fig4_bandwidth",
    "bench_fig9_ip_latency",
]
ALL_FIGURES = DEFAULT_FIGURES + [
    "bench_fig6_kernel_latency",
    "bench_fig7_udp_bandwidth",
    "bench_fig8_tcp_bandwidth",
]


def engine_events_per_sec(n_events: int = 200_000) -> dict:
    """Raw engine throughput: timeout-driven processes vs bare callbacks."""
    from repro.sim import Simulator

    # generator-process path: one process chaining timeouts
    sim = Simulator()

    def ticker():
        for _ in range(n_events):
            yield sim.timeout(1.0)

    sim.process(ticker())
    t0 = time.perf_counter()
    sim.run()
    process_wall = time.perf_counter() - t0
    process_rate = sim.events_processed / process_wall

    # callback path: self-rescheduling bare callable
    sim = Simulator()
    remaining = [n_events]

    def tick():
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule_callback(1.0, tick)

    sim.schedule_callback(1.0, tick)
    t0 = time.perf_counter()
    sim.run()
    callback_wall = time.perf_counter() - t0
    callback_rate = sim.events_processed / callback_wall

    return {
        "process_events_per_sec": round(process_rate),
        "callback_events_per_sec": round(callback_rate),
        "n_events": n_events,
    }


def obs_profile(n: int = 30) -> dict:
    """Span-tracing cost and engine self-profile on the fig3 ping-pong.

    Two numbers matter: the *off* path must stay within noise of the
    seed (the guards are one module-attribute load per instrumented
    function), and the *on* path's overhead factor tells users what a
    traced run costs.
    """
    from repro import obs
    from repro.bench import micro

    def wall_of(run):
        t0 = time.perf_counter()
        run()
        return time.perf_counter() - t0

    baseline = wall_of(lambda: micro.raw_rtt(32, n=n))
    profile = {}

    def traced():
        with obs.collecting(profile_wall=True) as col:
            micro.raw_rtt(32, n=n)
        profile.update(col.engine_profile())
        profile["spans"] = len(col.spans)

    with_spans = wall_of(traced)
    return {
        "fig3_wall_s_off": round(baseline, 4),
        "fig3_wall_s_on": round(with_spans, 4),
        "overhead_factor_on": round(with_spans / baseline, 2) if baseline else None,
        "engine_profile": profile,
    }


def time_figure(module_name: str) -> dict:
    module = importlib.import_module(module_name)
    t0 = time.perf_counter()
    module.sweep()
    wall = time.perf_counter() - t0
    return {"wall_s": round(wall, 3)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke subset")
    parser.add_argument("--all", action="store_true", help="every figure")
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    from repro.bench import sweep_workers

    figures = QUICK_FIGURES if args.quick else (
        ALL_FIGURES if args.all else DEFAULT_FIGURES
    )
    report = {
        "python": sys.version.split()[0],
        "sweep_workers": sweep_workers(),
        "engine": engine_events_per_sec(),
        "obs": obs_profile(),
        "figures": {},
    }
    print(f"engine: {report['engine']['process_events_per_sec']:,} events/s "
          f"(processes), {report['engine']['callback_events_per_sec']:,} "
          f"events/s (callbacks)")
    print(f"obs: spans-on overhead {report['obs']['overhead_factor_on']}x "
          f"on fig3 ({report['obs']['engine_profile'].get('spans', 0)} spans)")
    for name in figures:
        result = time_figure(name)
        report["figures"][name] = result
        print(f"{name}: {result['wall_s']:.2f}s")

    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
