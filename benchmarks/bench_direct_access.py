"""Extension: direct-access U-Net (§3.6) vs the base-level architecture.

The paper specifies direct-access U-Net (sender names the offset in the
destination segment; the NI deposits data there -- true zero copy) but
could not build it on 1995 hardware.  The simulation substrate can, so
this benchmark quantifies what the paper could only argue for: skipping
the free-queue/buffer path cuts the multi-cell receive overhead, and
the receiver needs no buffer management at all.
"""

from repro.bench import Table
from repro.core import SendDescriptor, UNetCluster
from repro.core.direct import DirectSendDescriptor
from repro.sim import Simulator, StatSeries


def measure(direct: bool, size: int, n: int = 6) -> float:
    """One-way deposit latency, measured at the receiving application."""
    sim = Simulator()
    cluster = UNetCluster.pair(sim, ni_kind="direct")
    sa = cluster.open_session("alice", "pa", segment_size=256 * 1024)
    sb = cluster.open_session("bob", "pb", segment_size=256 * 1024)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    stats = StatSeries()
    payload = bytes(i % 256 for i in range(size))

    def sender():
        offset = sa.alloc(size)
        try:
            yield from sa.write_segment(offset, payload)
            for i in range(n):
                t0 = sim.now
                if direct:
                    desc = DirectSendDescriptor(
                        channel=ch_a.ident, bufs=((offset, size),),
                        remote_offset=i * size,
                    )
                else:
                    desc = SendDescriptor(channel=ch_a.ident, bufs=((offset, size),))
                yield from sa.send(desc)
                done = yield from sb_wait()
                stats.add(done - t0)
        finally:
            sa.free(offset, size)

    pending = {}

    def sb_wait():
        while True:
            desc = sb.recv_poll()
            if desc is not None:
                if not direct and not desc.is_inline:
                    yield from sb.repost_free(desc)
                return sim.now
            yield sb.endpoint.wait_recv("pb")

    def receiver_init():
        if not direct:
            yield from sb.provide_receive_buffers(8)

    sim.process(receiver_init())
    sim.process(sender())
    sim.run(until=1e8)
    assert len(stats) == n
    return stats.mean


def run_comparison():
    rows = []
    for size in (256, 1024, 4096):
        base = measure(direct=False, size=size)
        direct = measure(direct=True, size=size)
        rows.append((size, base, direct))
    return rows


def test_direct_access_extension(once):
    rows = once(run_comparison)
    table = Table(
        "Direct-access U-Net (§3.6 extension) vs base-level, one-way deposit",
        ["size", "base-level (us)", "direct-access (us)", "saved"],
    )
    for size, base, direct in rows:
        table.add_row(
            f"{size} B", f"{base:.1f}", f"{direct:.1f}", f"{base - direct:.1f} us"
        )
    table.add_note("direct deposits skip the free queue and buffer DMA: the "
                   "receiver provides no buffers at all")
    print()
    print(table)
    for size, base, direct in rows:
        assert direct < base, f"direct access must win at {size} B"
