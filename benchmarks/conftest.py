"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures from
the simulated stack.  The numbers printed are *simulated* microseconds
and bytes/second (the reproduction targets); pytest-benchmark's own
timings measure how fast the simulator runs on this machine.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic simulation benchmark exactly once."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
