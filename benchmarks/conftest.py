"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures from
the simulated stack.  The numbers printed are *simulated* microseconds
and bytes/second (the reproduction targets); pytest-benchmark's own
timings measure how fast the simulator runs on this machine.

Run with:  pytest benchmarks/ --benchmark-only -s

pytest-benchmark is optional: without it the benchmarks still run and
verify their paper anchors, they just aren't wall-clock timed (the
``benchmark`` fixture is replaced by a pass-through).  See
``benchmarks/bench_perf.py`` for dependency-free wall-clock numbers.
"""

import pytest

try:
    import pytest_benchmark  # noqa: F401

    HAVE_PYTEST_BENCHMARK = True
except ImportError:
    HAVE_PYTEST_BENCHMARK = False


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic simulation benchmark exactly once."""
    if benchmark is None:
        return fn(*args, **kwargs)
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


if HAVE_PYTEST_BENCHMARK:

    @pytest.fixture
    def once(benchmark):
        def _run(fn, *args, **kwargs):
            return run_once(benchmark, fn, *args, **kwargs)

        return _run

else:

    @pytest.fixture
    def once():
        def _run(fn, *args, **kwargs):
            return run_once(None, fn, *args, **kwargs)

        return _run
