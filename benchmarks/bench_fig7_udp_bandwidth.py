"""Figure 7: UDP bandwidth as a function of message size.

Three curves: kernel UDP as perceived at the sender, kernel UDP as
actually received (the gap is silent loss at the device output queue
and socket buffers), and U-Net UDP (lossless: only the receive rate is
shown, as in the paper).  The kernel's saw-tooth comes from the mbuf
allocation scheme (1 KB clusters + 112-byte small mbufs).
"""

from repro.bench import Series, parallel_map
from repro.bench.ip import udp_bandwidth
from repro.bench.report import print_figure

# Below ~1 KB a free-running sender can outpace the receive-side i960
# (whose per-packet cost is what fixes Figure 4's 800-byte saturation
# point), so the paper's no-loss claim is reproduced over the 1-8 KB
# range; see EXPERIMENTS.md.
SIZES = [1000, 1500, 1536, 2048, 3000, 4096, 6000, 8000]


def _kernel_point(size):
    return udp_bandwidth(size, kind="kernel-atm")


def _unet_point(size):
    return udp_bandwidth(size, kind="unet")


def _warm_world():
    from repro.bench.ip import build_unet_pair

    return build_unet_pair()


def _warm_point(world, size):
    from repro.bench.ip import udp_bandwidth_on

    return udp_bandwidth_on(world, size).recv_rate / 1e6


def sweep_checkpointed(use_fork=None):
    """The U-Net curve with both stacks booted once and the warm world
    cloned per point (:mod:`repro.bench.checkpoint`)."""
    from repro.bench import checkpoint

    values = checkpoint.sweep(_warm_world, _warm_point, SIZES, use_fork=use_fork)
    unet = Series("U-Net UDP (warm)")
    for size, mbps in zip(SIZES, values):
        unet.add(size, mbps)
    return unet


def sweep():
    k_send = Series("kernel UDP (sender perceived)")
    k_recv = Series("kernel UDP (actually received)")
    losses = {}
    for size, r in zip(SIZES, parallel_map(_kernel_point, SIZES)):
        k_send.add(size, r.send_rate / 1e6)
        k_recv.add(size, r.recv_rate / 1e6)
        losses[size] = (r.drops, r.sent)
    unet = Series("U-Net UDP (received; no losses)")
    for size, r in zip(SIZES, parallel_map(_unet_point, SIZES)):
        assert r.drops == 0, "U-Net UDP must be lossless (§7.6)"
        unet.add(size, r.recv_rate / 1e6)
    return k_send, k_recv, unet, losses


def test_fig7_udp_bandwidth(once):
    k_send, k_recv, unet, losses = once(sweep)
    print()
    print(print_figure(
        "Figure 7: UDP bandwidth vs message size (MB/s)",
        [k_send, k_recv, unet], x_name="message bytes", y_name="MB/s",
    ))
    lost = {s: d for s, (d, n) in losses.items() if d}
    print(f"  kernel losses by size: {lost or 'none in this run'}")
    print("  paper shape: U-Net UDP lossless near fiber rate; kernel far "
          "below with a sender/receiver gap and an mbuf saw-tooth")
    # U-Net UDP near the fiber limit from ~1 KB
    assert unet.y_at(1000) > 14.0
    # kernel far below U-Net everywhere
    for size in SIZES:
        assert k_recv.y_at(size) < unet.y_at(size)
    # sender-perceived rate >= delivered rate, strictly higher somewhere
    assert all(k_send.y_at(s) >= k_recv.y_at(s) - 0.01 for s in SIZES)
    assert any(k_send.y_at(s) > k_recv.y_at(s) * 1.1 for s in SIZES)
    # the mbuf saw-tooth: a 512-byte remainder beats a 476-byte one
    assert k_send.y_at(1536) > k_send.y_at(1500) * 1.05
