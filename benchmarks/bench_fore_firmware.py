"""§4.2.1: the vendor's original SBA-200 firmware baseline.

Paper: ~160 us round trip; ~13 MB/s with 4 KB packets -- worse than
the far simpler SBA-100, which motivated rewriting the firmware.
"""

from repro.bench import Table, fore_interface_stats, raw_rtt


def test_fore_firmware_baseline(once):
    r = once(fore_interface_stats)
    unet = raw_rtt(32, n=4).mean_us
    table = Table(
        "Fore firmware baseline (§4.2.1)",
        ["Metric", "Paper", "Measured"],
    )
    table.add_row("round-trip time", "~160 us", f"{r['rtt_us']:.1f} us")
    table.add_row(
        "bandwidth @ 4 KB", "13 MB/s", f"{r['bw_4k_bytes_per_s'] / 1e6:.1f} MB/s"
    )
    table.add_row("U-Net firmware RTT (same board)", "65 us", f"{unet:.1f} us")
    table.add_note("off-loading onto the 25 MHz i960 'can easily backfire'")
    print()
    print(table)
    assert r["rtt_us"] > 2 * unet
