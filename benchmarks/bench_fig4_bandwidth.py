"""Figure 4: bandwidth as a function of message size.

Four curves: the theoretical AAL-5 limit (sawtooth from 48-byte cell
quantization), raw U-Net, and UAM store/get.  Paper anchors: the fiber
saturates with packets as small as ~800 bytes; UAM reaches 80% of the
limit at ~2 KB blocks and peaks near 14.8 MB/s, with a dip where a
block stops fitting one 4160-byte buffer.
"""

from repro.atm.aal5 import aal5_limit_bandwidth
from repro.bench import Series, parallel_map, raw_bandwidth
from repro.bench.report import print_figure
from repro.bench.uam import uam_get_bandwidth, uam_store_bandwidth

RAW_SIZES = [40, 96, 192, 384, 512, 800, 1024, 2048, 4096, 5120]
UAM_SIZES = [512, 1024, 2048, 4096, 4400, 5120]
GET_SIZES = [1024, 4096]


def _raw_point(size):
    return raw_bandwidth(size).bytes_per_second / 1e6


def _store_point(size):
    return uam_store_bandwidth(size).bytes_per_second / 1e6


def _get_point(size):
    return uam_get_bandwidth(size).bytes_per_second / 1e6


def _warm_world():
    from repro.bench.micro import _build_pair

    return _build_pair("sba200", 60.0, True)


def _warm_point(world, size):
    from repro.bench.micro import raw_bandwidth_on

    return raw_bandwidth_on(world, size).bytes_per_second / 1e6


def sweep_checkpointed(use_fork=None):
    """The raw curve with the cluster built once and cloned per point
    (:mod:`repro.bench.checkpoint`)."""
    from repro.bench import checkpoint

    values = checkpoint.sweep(
        _warm_world, _warm_point, RAW_SIZES, use_fork=use_fork
    )
    raw = Series("Raw U-Net (warm)")
    for size, mbps in zip(RAW_SIZES, values):
        raw.add(size, mbps)
    return raw


def sweep():
    limit = Series("AAL-5 limit")
    for size in sorted(set(RAW_SIZES + UAM_SIZES)):
        limit.add(size, aal5_limit_bandwidth(size, 140e6) / 1e6)
    raw = Series("Raw U-Net")
    for size, mbps in zip(RAW_SIZES, parallel_map(_raw_point, RAW_SIZES)):
        raw.add(size, mbps)
    store = Series("UAM store")
    for size, mbps in zip(UAM_SIZES, parallel_map(_store_point, UAM_SIZES)):
        store.add(size, mbps)
    get = Series("UAM get")
    for size, mbps in zip(GET_SIZES, parallel_map(_get_point, GET_SIZES)):
        get.add(size, mbps)
    return limit, raw, store, get


def test_fig4_bandwidth(once):
    limit, raw, store, get = once(sweep)
    print()
    print(print_figure(
        "Figure 4: U-Net bandwidth vs message size (MB/s)",
        [limit, raw, store, get], x_name="message bytes", y_name="MB/s",
    ))
    print("  paper anchors: saturation at ~800 B; UAM ~80% of limit @2 KB, "
          "peak ~14.8 MB/s, dip past one 4160-byte buffer")
    # raw saturates at 800 bytes
    assert raw.y_at(800) / limit.y_at(800) > 0.95
    assert raw.y_at(192) / limit.y_at(192) < 0.9
    # UAM store near the limit at 2 KB+ and a dip past the buffer size
    assert store.y_at(2048) > 0.8 * limit.y_at(2048)
    assert store.y_at(4400) < store.y_at(4096) + 0.1
    # get ~ store (paper: "nearly identical")
    assert abs(get.y_at(4096) - store.y_at(4096)) / store.y_at(4096) < 0.1
