# simlint: disable-file=wall-clock -- compares wall-clock benchmark runs.
"""Perf-regression gate: fresh bench_perf run vs. the committed baseline.

Re-measures engine + sharded throughput (and, outside ``--engine-only``
mode, the quick figure sweeps) on the current tree and compares against the
numbers committed in ``BENCH_perf.json``.  Throughput may drift with
machine noise, so a tolerance band applies: the gate fails only when a
fresh rate drops more than ``--tolerance`` (default 25%) below the
baseline, i.e. ``fresh < baseline * 0.75``.  Wall-clock times use the
reciprocal band (``fresh > baseline / 0.75``).

Usage::

    PYTHONPATH=src python benchmarks/perf_gate.py            # CI gate
    PYTHONPATH=src python benchmarks/perf_gate.py --engine-only
    PYTHONPATH=src python benchmarks/perf_gate.py --fresh out.json

Exit status: 0 pass, 1 regression, 2 usage/baseline error.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

import bench_perf

BASELINE = bench_perf.OUTPUT

#: dotted paths into the report; True = higher is better (a rate),
#: False = lower is better (a wall time).
RATE_KEYS = [
    "engine.callback_events_per_sec",
    "engine.process_events_per_sec",
    "sharded.local_events_per_sec",
    "sharded.modes.mp4.events_per_sec",
]
WALL_KEYS = [
    "cache.cold_wall_s",
]
#: Schema-gated only (presence, no tolerance compare): the RTT tails
#: are deterministic simulated time, so a drift there is caught by the
#: attribution-parity gate in CI, not a wall-clock band.  The gate
#: still insists the section exists so bench reports can't silently
#: lose the percentile data.
PCT_KEYS = [
    "percentiles.fig3_rtt_us.p50",
    "percentiles.fig3_rtt_us.p99",
    "percentiles.fig3_rtt_us.p999",
]
#: Schema-gated sections backing the absolute contract floors below; a
#: report without them predates the batching/checkpointing work and
#: cannot be gated (exit 2, same as any other schema miss).
CONTRACT_KEYS = [
    "batched.speedup",
    "batched.batched_events_per_sec",
    "warm_suffix_replay.fork_available",
]

#: Absolute floors measured fresh each run, not baseline-relative: the
#: batched delivery path and the checkpointed warm replay each promise
#: a minimum speedup over their own same-run scalar/cold counterpart,
#: so machine speed cancels out of the ratio.
BATCHED_SPEEDUP_FLOOR = 2.0
WARM_REPLAY_SPEEDUP_FLOOR = 5.0


def _dig(report: dict, dotted: str):
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_schema(report: dict, label: str, engine_only: bool):
    """(missing gated keys, warnings) for one report.

    The gate refuses to run against a report that predates a gated
    section -- silently skipping the key would wave regressions through.
    Exception: under ``--engine-only`` a report with no ``sharded``
    section at all (older bench_perf schema) only warns, and the sharded
    gates are skipped.
    """
    gated = list(RATE_KEYS) + (
        []
        if engine_only
        else list(WALL_KEYS) + list(PCT_KEYS) + list(CONTRACT_KEYS)
    )
    missing = [k for k in gated if _dig(report, k) is None]
    warnings = []
    if engine_only and missing and _dig(report, "sharded") is None:
        warnings.append(
            f"{label} has no 'sharded' section (older bench_perf "
            f"schema); skipping the sharded gates"
        )
        missing = [k for k in missing if not k.startswith("sharded.")]
    return missing, warnings


def compare(baseline: dict, fresh: dict, tolerance: float,
            engine_only: bool = False) -> list[str]:
    """Return a list of regression messages (empty = gate passes)."""
    failures = []
    wall_keys = [] if engine_only else list(WALL_KEYS)
    if _dig(fresh, "sharded.identical") is False:
        failures.append(
            "sharded.identical: sharded ring64 metrics diverged from the "
            "single-core baseline (correctness, not a perf tolerance)"
        )
    for dotted in RATE_KEYS:
        base, new = _dig(baseline, dotted), _dig(fresh, dotted)
        if base is None or new is None or not base:
            continue
        floor = base * (1.0 - tolerance)
        verdict = "FAIL" if new < floor else "ok"
        print(f"{verdict:>4}  {dotted}: {new:,.0f} vs baseline {base:,.0f} "
              f"(floor {floor:,.0f})")
        if new < floor:
            failures.append(
                f"{dotted} regressed: {new:,.0f} < {floor:,.0f} "
                f"({tolerance:.0%} below baseline {base:,.0f})"
            )
    for dotted in wall_keys:
        base, new = _dig(baseline, dotted), _dig(fresh, dotted)
        if base is None or new is None or not base:
            continue
        ceiling = base / (1.0 - tolerance)
        verdict = "FAIL" if new > ceiling else "ok"
        print(f"{verdict:>4}  {dotted}: {new:.3f}s vs baseline {base:.3f}s "
              f"(ceiling {ceiling:.3f}s)")
        if new > ceiling:
            failures.append(
                f"{dotted} regressed: {new:.3f}s > {ceiling:.3f}s "
                f"({tolerance:.0%} over baseline {base:.3f}s)"
            )
    if not engine_only:
        failures.extend(contract_checks(fresh))
    return failures


def contract_checks(fresh: dict) -> list[str]:
    """Absolute floors on the fresh report (no baseline involved)."""
    failures = []
    if _dig(fresh, "batched.identical") is False:
        failures.append(
            "batched.identical: batched delivery diverged from scalar "
            "dispatch (correctness, not a perf tolerance)"
        )
    speedup = _dig(fresh, "batched.speedup")
    if speedup is not None:
        verdict = "FAIL" if speedup < BATCHED_SPEEDUP_FLOOR else "ok"
        print(f"{verdict:>4}  batched.speedup: {speedup}x "
              f"(floor {BATCHED_SPEEDUP_FLOOR}x)")
        if speedup < BATCHED_SPEEDUP_FLOOR:
            failures.append(
                f"batched.speedup below contract: {speedup}x < "
                f"{BATCHED_SPEEDUP_FLOOR}x over same-run scalar dispatch"
            )
    warm = _dig(fresh, "warm_suffix_replay")
    if isinstance(warm, dict) and warm.get("fork_available"):
        if warm.get("identical") is False:
            failures.append(
                "warm_suffix_replay.identical: fork-cloned results "
                "diverged from cold rebuilds (correctness)"
            )
        speedup = warm.get("speedup")
        if speedup is not None:
            verdict = "FAIL" if speedup < WARM_REPLAY_SPEEDUP_FLOOR else "ok"
            print(f"{verdict:>4}  warm_suffix_replay.speedup: {speedup}x "
                  f"(floor {WARM_REPLAY_SPEEDUP_FLOOR}x)")
            if speedup < WARM_REPLAY_SPEEDUP_FLOOR:
                failures.append(
                    f"warm_suffix_replay.speedup below contract: "
                    f"{speedup}x < {WARM_REPLAY_SPEEDUP_FLOOR}x over "
                    f"same-run cold rebuilds"
                )
    elif isinstance(warm, dict):
        print("  ok  warm_suffix_replay: fork unavailable here; "
              "speedup floor skipped")
    # The percentile section must describe a real distribution: a
    # single-size ping-pong collapses every sample into one histogram
    # bucket and the tail report is vacuous (the PR 10 regression).
    pct = _dig(fresh, "percentiles.fig3_rtt_us")
    if isinstance(pct, dict):
        p50, p999 = pct.get("p50"), pct.get("p999")
        count = pct.get("count", 0)
        if p50 is not None and p999 is not None:
            degenerate = p999 < p50 or (count >= 50 and p999 <= p50)
            verdict = "FAIL" if degenerate else "ok"
            print(f"{verdict:>4}  percentiles.fig3_rtt_us: p50 {p50} <= "
                  f"p999 {p999} (n={count})")
            if degenerate:
                failures.append(
                    f"percentiles.fig3_rtt_us degenerate: p999 {p999} not "
                    f"above p50 {p50} with {count} samples"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument(
        "--fresh", default=None,
        help="pre-computed bench_perf report; omitted = measure now",
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument(
        "--engine-only", action="store_true",
        help="skip figure sweeps; gate engine + sharded throughput (fast)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error("--tolerance must be in (0, 1)")

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; nothing to gate against")
        return 2
    baseline = json.loads(baseline_path.read_text())

    if args.fresh:
        fresh = json.loads(Path(args.fresh).read_text())
    else:
        if args.engine_only:
            fresh = {
                "engine": bench_perf.engine_events_per_sec(repeats=3),
                "sharded": bench_perf.sharded_throughput(repeats=1),
            }
        else:
            with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
                bench_perf.main(["--quick", "--output", tmp.name])
                fresh = json.loads(Path(tmp.name).read_text())

    reports = [(baseline, f"baseline {baseline_path}")]
    if args.fresh:
        # A measured-now fresh report is complete by construction; only a
        # pre-computed one can be missing gated sections.
        reports.append((fresh, f"fresh report {args.fresh}"))
    for report, label in reports:
        missing, warnings = check_schema(report, label, args.engine_only)
        for warning in warnings:
            print(f"perf gate warning: {warning}")
        if missing:
            print(
                f"perf gate: {label} is missing gated section(s) "
                f"{', '.join(missing)} -- older bench_perf schema? "
                f"regenerate with: PYTHONPATH=src python benchmarks/bench_perf.py"
            )
            return 2

    failures = compare(baseline, fresh, args.tolerance, args.engine_only)
    if failures:
        print(f"\nperf gate FAILED ({len(failures)} regression(s)):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
