"""Table 3: U-Net latency and bandwidth summary.

| Protocol      | round trip | bandwidth @ 4 KB |
|---------------|-----------|------------------|
| Raw AAL5      | 65 us     | 120 Mbit/s       |
| Active Msgs   | 71 us     | 118 Mbit/s       |
| UDP           | 138 us    | 120 Mbit/s       |
| TCP           | 157 us    | 115 Mbit/s       |
| Split-C store | 72 us     | 118 Mbit/s       |
"""

from repro.bench import Table, raw_bandwidth, raw_rtt
from repro.bench.ip import tcp_bandwidth, tcp_rtt, udp_bandwidth, udp_rtt
from repro.bench.uam import uam_single_cell_rtt, uam_store_bandwidth

PAPER = {
    "Raw AAL5": (65, 120),
    "Active Messages": (71, 118),
    "UDP": (138, 120),
    "TCP": (157, 115),
    "Split-C store": (72, 118),
}


def measure():
    rows = {}
    rows["Raw AAL5"] = (
        raw_rtt(32, n=4).mean_us,
        raw_bandwidth(4096).bytes_per_second * 8 / 1e6,
    )
    rows["Active Messages"] = (
        uam_single_cell_rtt(32, n=4).mean_us,
        uam_store_bandwidth(4096).bytes_per_second * 8 / 1e6,
    )
    rows["UDP"] = (
        udp_rtt(64, kind="unet", n=4).mean_us,
        udp_bandwidth(4096, kind="unet").recv_rate * 8 / 1e6,
    )
    rows["TCP"] = (
        tcp_rtt(8, kind="unet", n=4).mean_us,
        tcp_bandwidth(4096, kind="unet", window=8192).bytes_per_second * 8 / 1e6,
    )
    # Split-C store = a UAM store round trip at the runtime's message cost
    rows["Split-C store"] = (
        uam_single_cell_rtt(31, n=4).mean_us,
        uam_store_bandwidth(4096).bytes_per_second * 8 / 1e6,
    )
    return rows


def test_table3_summary(once):
    rows = once(measure)
    table = Table(
        "Table 3: U-Net latency and bandwidth summary",
        ["Protocol", "RTT paper", "RTT measured", "BW paper", "BW measured"],
    )
    for name, (rtt_p, bw_p) in PAPER.items():
        rtt_m, bw_m = rows[name]
        table.add_row(
            name, f"{rtt_p} us", f"{rtt_m:.0f} us",
            f"{bw_p} Mbit/s", f"{bw_m:.0f} Mbit/s",
        )
    table.add_note("UDP/TCP round trips measured at small (64/8 byte) payloads")
    print()
    print(table)
    # ordering and rough magnitudes must match the paper
    assert rows["Raw AAL5"][0] < rows["Active Messages"][0] < rows["UDP"][0] < rows["TCP"][0]
    for name, (rtt_p, bw_p) in PAPER.items():
        rtt_m, bw_m = rows[name]
        assert abs(rtt_m - rtt_p) / rtt_p < 0.20, f"{name} RTT off: {rtt_m}"
        assert bw_m > 100, f"{name} bandwidth below ~100 Mbit/s: {bw_m}"
