"""Figure 6: kernel TCP and UDP round-trip latencies over ATM vs
Ethernet.

Paper shape: "for small messages the latency of both UDP and TCP
messages is larger using ATM than going over Ethernet: it simply does
not reflect the increased network performance"; for large messages the
140 Mbit fiber eventually beats 10 Mbit Ethernet.
"""

from repro.bench import Series
from repro.bench.ip import tcp_rtt, udp_rtt
from repro.bench.report import print_figure

SIZES = [16, 64, 256, 1024, 2048, 4096, 8000]


def sweep():
    curves = []
    for proto, fn in (("UDP", udp_rtt), ("TCP", tcp_rtt)):
        for kind, net in (("kernel-atm", "Fore ATM"), ("kernel-eth", "Ethernet")):
            series = Series(f"kernel {proto} / {net}")
            for size in SIZES:
                if proto == "TCP" and size > 4096 and kind == "kernel-eth":
                    continue  # keep the sweep quick; shape is established
                series.add(size, fn(size, kind=kind, n=3).mean_us)
            curves.append(series)
    return curves


def test_fig6_kernel_latency(once):
    curves = once(sweep)
    print()
    print(print_figure(
        "Figure 6: kernel TCP/UDP round-trip latency over ATM and Ethernet",
        curves, x_name="message bytes", y_name="round trip (us)",
    ))
    print("  paper shape: ATM worse than Ethernet for small messages, "
          "better for large")
    udp_atm = next(c for c in curves if c.label == "kernel UDP / Fore ATM")
    udp_eth = next(c for c in curves if c.label == "kernel UDP / Ethernet")
    tcp_atm = next(c for c in curves if c.label == "kernel TCP / Fore ATM")
    tcp_eth = next(c for c in curves if c.label == "kernel TCP / Ethernet")
    assert udp_atm.y_at(64) > udp_eth.y_at(64)
    assert tcp_atm.y_at(64) > tcp_eth.y_at(64)
    assert udp_atm.y_at(8000) < udp_eth.y_at(8000)
