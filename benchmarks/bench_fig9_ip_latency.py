"""Figure 9: UDP and TCP round-trip latencies -- U-Net vs kernel.

Paper: U-Net UDP ~138 us and TCP ~157 us for small messages (Table 3),
an order of magnitude below the kernel stack over the same fiber.
"""

from repro.bench import Series
from repro.bench.ip import tcp_rtt, udp_rtt
from repro.bench.report import print_figure

SIZES = [8, 64, 256, 1024, 4096]


def sweep():
    curves = []
    for label, fn, kind in (
        ("U-Net UDP", udp_rtt, "unet"),
        ("U-Net TCP", tcp_rtt, "unet"),
        ("kernel UDP", udp_rtt, "kernel-atm"),
        ("kernel TCP", tcp_rtt, "kernel-atm"),
    ):
        series = Series(label)
        for size in SIZES:
            series.add(size, fn(size, kind=kind, n=3).mean_us)
        curves.append(series)
    return curves


def test_fig9_ip_latency(once):
    curves = once(sweep)
    print()
    print(print_figure(
        "Figure 9: UDP and TCP round-trip latencies (us)",
        curves, x_name="message bytes", y_name="round trip (us)",
    ))
    print("  paper anchors: U-Net UDP 138 us / TCP 157 us small messages; "
          "kernel near a millisecond")
    unet_udp = next(c for c in curves if c.label == "U-Net UDP")
    unet_tcp = next(c for c in curves if c.label == "U-Net TCP")
    kern_udp = next(c for c in curves if c.label == "kernel UDP")
    assert 110 < unet_udp.y_at(64) < 170
    assert unet_udp.y_at(64) < unet_tcp.y_at(64) < unet_udp.y_at(64) + 80
    assert kern_udp.y_at(64) / unet_udp.y_at(64) > 7
