"""Figure 5: the seven Split-C benchmarks on CM-5, U-Net ATM cluster,
and Meiko CS-2 (8 processors), normalized to the CM-5, with the
computation/communication breakdown.

Paper shape: matmul and the bulk sorts favor the ATM cluster and Meiko;
the small-message sorts and connected components favor the CM-5's low
per-message overhead; overall the ATM cluster is roughly equivalent to
the Meiko CS-2.
"""

from repro.bench import Table
from repro.splitc.apps import FIGURE5_SUITE
from repro.splitc.harness import run_on_machine
from repro.splitc.machines import ATM_CLUSTER, CM5, MEIKO_CS2

NPROCS = 8


def run_suite():
    rows = []
    for label, app, params in FIGURE5_SUITE:
        per_machine = {}
        for machine in (CM5, ATM_CLUSTER, MEIKO_CS2):
            result = run_on_machine(machine, app, nprocs=NPROCS, label=label, **params)
            assert result.verified, f"{label} wrong on {machine.name}"
            per_machine[machine.name] = result
        rows.append((label, per_machine))
    return rows


def test_fig5_splitc_benchmarks(once):
    rows = once(run_suite)
    table = Table(
        "Figure 5: Split-C benchmarks, execution time normalized to the CM-5",
        ["Benchmark", "CM-5", "U-Net ATM", "Meiko CS-2", "ATM comm%"],
    )
    ratios = {}
    for label, per_machine in rows:
        cm5 = per_machine["CM-5"].total_us
        atm = per_machine["U-Net ATM"]
        meiko = per_machine["Meiko CS-2"]
        ratios[label] = (atm.total_us / cm5, meiko.total_us / cm5)
        table.add_row(
            label, "1.00", f"{atm.total_us / cm5:.2f}",
            f"{meiko.total_us / cm5:.2f}", f"{atm.comm_fraction:.0%}",
        )
    table.add_note("all results verified against serial ground truth")
    print()
    print(table)

    # the paper's qualitative claims
    assert ratios["matmul"][0] < 0.7, "ATM must win matmul (CPU+bandwidth)"
    assert ratios["sample sort (small msg)"][0] > 1.0, "CM-5 wins small messages"
    assert ratios["sample sort (bulk)"][0] < 0.8, "ATM wins bulk"
    assert ratios["radix sort (small msg)"][0] > 1.0
    assert ratios["radix sort (bulk)"][0] < 1.0
    assert ratios["connected components"][0] > 1.0
