"""Ablations of the design choices the paper calls out.

* the single-cell fast path (§4.2.2 "Single cell packet sends are
  optimized in the firmware"),
* polling vs UNIX-signal receive (§4.2.3: signals add ~30 us per end),
* the UAM window size (§5.1.1),
* TCP segment size (§7.8: 2048-byte segments are the standard config),
* delayed acks on/off (§7.8: U-Net TCP disables the 200 ms delay),
* kernel-emulated vs regular endpoints (§3.5).
"""

from repro.bench import Table, raw_rtt
from repro.bench.ip import tcp_bandwidth, tcp_rtt
from repro.bench.uam import uam_store_bandwidth
from repro.core import UNetCluster
from repro.sim import Simulator


def delayed_ack_latency(delayed_ack: bool, granularity_us: float = 1000.0) -> float:
    """Time until a lone request segment is acknowledged while the server
    application has not yet read it.

    * delayed ack off (U-Net TCP, §7.8): one round trip (~0.4 ms).
    * delayed ack on + 1 ms timers: the sender's retransmission beats
      the 200 ms delack timer -- a wasted retransmission and ~3 ms.
    * delayed ack on + BSD 500 ms timers: the 200 ms delack timer is
      what finally acknowledges (the kernel combination).
    """
    from repro.bench.ip import build_unet_pair
    from repro.ip.tcp import TcpConfig

    sim, _net, stack_a, stack_b = build_unet_pair()
    config = TcpConfig(
        delayed_ack=delayed_ack, timer_granularity_us=granularity_us
    )
    server = stack_b.tcp_listen(9000, peer_addr=1, config=config)
    out = {}

    def client():
        conn = yield from stack_a.tcp_connect(2, 9000, config=config)
        t0 = sim.now
        yield from conn.send(bytes(2048))
        while conn._sndq_bytes or conn.snd_una != conn.snd_nxt:
            yield sim.timeout(100.0)
        out["acked"] = sim.now - t0

    sim.process(client())
    sim.run(until=sim.now + 1e7)
    return out["acked"]


def emulated_vs_regular_rtt():
    out = {}
    for emulated in (False, True):
        sim = Simulator()
        cluster = UNetCluster.pair(sim)
        sa = cluster.open_session("alice", "pa", emulated=emulated)
        sb = cluster.open_session("bob", "pb", emulated=emulated)
        ch_a, ch_b = cluster.connect_sessions(sa, sb)
        result = {}

        def pinger():
            yield from sa.provide_receive_buffers(4)
            t0 = sim.now
            yield from sa.send_copy(ch_a.ident, bytes(32))
            yield from sa.recv()
            result["rtt"] = sim.now - t0

        def ponger():
            yield from sb.provide_receive_buffers(4)
            desc = yield from sb.recv()
            yield from sb.send_copy(ch_b.ident, sb.peek_payload(desc))

        sim.process(pinger())
        sim.process(ponger())
        sim.run(until=1e7)
        out["emulated" if emulated else "regular"] = result["rtt"]
    return out


def run_all():
    results = {}
    results["single-cell fast path on"] = raw_rtt(32, n=4).mean_us
    results["single-cell fast path off"] = raw_rtt(
        32, n=4, single_cell_optimization=False
    ).mean_us
    results["polling receive"] = raw_rtt(32, n=4).mean_us
    results["signal receive"] = raw_rtt(32, n=4, signal_wakeup=True).mean_us
    for window in (2, 4, 8, 16):
        results[f"UAM store bw, window {window}"] = (
            uam_store_bandwidth(2048, window=window).bytes_per_second / 1e6
        )
    for mss in (512, 1024, 2048, 4096):
        results[f"U-Net TCP bw, {mss}B segments"] = (
            tcp_bandwidth(4096, kind="unet", window=16384, mss=mss,
                          total_bytes=200_000).bytes_per_second / 1e6
        )
    results["TCP ack latency, delack off (U-Net)"] = delayed_ack_latency(False)
    results["TCP ack latency, delack on, 1ms timers"] = delayed_ack_latency(True)
    results["TCP ack latency, delack on, 500ms timers"] = delayed_ack_latency(
        True, granularity_us=500_000.0
    )
    results.update(
        {f"{k} endpoint rtt": v for k, v in emulated_vs_regular_rtt().items()}
    )
    return results


def test_ablations(once):
    results = once(run_all)
    table = Table("Design-choice ablations", ["Configuration", "Result"])
    for name, value in results.items():
        unit = "MB/s" if "bw" in name else "us"
        table.add_row(name, f"{value:8.1f} {unit}")
    print()
    print(table)
    assert results["single-cell fast path off"] > results["single-cell fast path on"] + 25
    assert results["signal receive"] - results["polling receive"] == \
        __import__("pytest").approx(60.0, abs=8.0)
    assert results["UAM store bw, window 8"] > results["UAM store bw, window 2"]
    assert results["U-Net TCP bw, 2048B segments"] > results["U-Net TCP bw, 512B segments"]
    assert results["TCP ack latency, delack on, 1ms timers"] > \
        3 * results["TCP ack latency, delack off (U-Net)"]
    assert results["TCP ack latency, delack on, 500ms timers"] > 150_000
    assert results["emulated endpoint rtt"] > results["regular endpoint rtt"] + 30
