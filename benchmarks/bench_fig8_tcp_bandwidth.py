"""Figure 8: TCP bandwidth as a function of data generation by the
application, for several window sizes.

Paper: "in most cases U-Net TCP achieves a 14-15 Mbytes/sec bandwidth
using an 8 Kbyte window, while even with a 64K window the kernel
TCP/ATM combination will not achieve more than 9-10 Mbytes/sec".
"""

from repro.bench import Series, parallel_map
from repro.bench.ip import tcp_bandwidth
from repro.bench.report import print_figure

WRITE_SIZES = [1024, 2048, 4096, 8192]

CURVES = (
    ("unet", 8192, "U-Net TCP, 8K window"),
    ("unet", 32768, "U-Net TCP, 32K window"),
    ("kernel-atm", 8192, "kernel TCP, 8K window"),
    ("kernel-atm", 64 * 1024 - 1, "kernel TCP, 64K window"),
)


def _point(params):
    ws, kind, window = params
    return tcp_bandwidth(ws, kind=kind, window=window).bytes_per_second / 1e6


def _warm_world():
    from repro.bench.ip import build_unet_pair

    return build_unet_pair()


def _warm_point(world, write_size):
    from repro.bench.ip import tcp_bandwidth_on

    result = tcp_bandwidth_on(world, write_size, kind="unet", window=8192)
    return result.bytes_per_second / 1e6


def sweep_checkpointed(use_fork=None):
    """The 8K-window U-Net curve against one booted world, cloned per
    point (:mod:`repro.bench.checkpoint`)."""
    from repro.bench import checkpoint

    values = checkpoint.sweep(
        _warm_world, _warm_point, WRITE_SIZES, use_fork=use_fork
    )
    series = Series("U-Net TCP, 8K window (warm)")
    for ws, mbps in zip(WRITE_SIZES, values):
        series.add(ws, mbps)
    return series


def sweep():
    # One flat point list across all four curves: a single pool fan-out.
    points = [
        (ws, kind, window)
        for kind, window, _ in CURVES
        for ws in WRITE_SIZES
    ]
    values = parallel_map(_point, points)
    curves = []
    for i, (kind, window, label) in enumerate(CURVES):
        series = Series(label)
        for j, ws in enumerate(WRITE_SIZES):
            series.add(ws, values[i * len(WRITE_SIZES) + j])
        curves.append(series)
    return curves


def test_fig8_tcp_bandwidth(once):
    curves = once(sweep)
    print()
    print(print_figure(
        "Figure 8: TCP bandwidth vs application write size (MB/s)",
        curves, x_name="application write bytes", y_name="MB/s",
    ))
    print("  paper anchors: U-Net TCP 14-15 MB/s @ 8K window; kernel "
          "TCP <= 9-10 MB/s even @ 64K")
    unet8 = next(c for c in curves if "U-Net TCP, 8K" in c.label)
    kern64 = next(c for c in curves if "kernel TCP, 64K" in c.label)
    kern8 = next(c for c in curves if "kernel TCP, 8K" in c.label)
    assert unet8.y_at(4096) > 14.0
    assert kern64.y_at(4096) < 12.0
    assert kern8.y_at(4096) < kern64.y_at(4096)
    # U-Net with the small window still beats the kernel with the big one
    assert unet8.y_at(4096) > kern64.y_at(4096)
