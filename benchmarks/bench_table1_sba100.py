"""Table 1: cost breakup for a single-cell round trip on the SBA-100.

Paper: 21 us trap-level one-way + 7 us AAL5 send + 5 us AAL5 receive =
33 us one-way (66 us round trip); 6.8 MB/s at 1 KB packets.
"""

from repro.bench import Table, sba100_cost_breakup


def sweep():
    """Perf-harness entry point (see ``benchmarks/bench_perf.py``)."""
    return sba100_cost_breakup()


def test_table1_sba100_cost_breakup(once):
    r = once(sba100_cost_breakup)
    table = Table(
        "Table 1: single-cell cost breakup on the SBA-100 (AAL5)",
        ["Operation", "Paper (us)", "Measured (us)"],
    )
    table.add_row(
        "1-way send and rcv across switch (trap level)", 21,
        f"{r['trap_level_one_way_us']:.1f}",
    )
    table.add_row("Send overhead (AAL5)", 7, f"{r['send_overhead_aal5_us']:.1f}")
    table.add_row("Receive overhead (AAL5)", 5, f"{r['recv_overhead_aal5_us']:.1f}")
    table.add_row("Total (one-way)", 33, f"{r['total_one_way_us']:.1f}")
    table.add_note(
        f"CRC share of send/recv AAL5 overhead: "
        f"{r['send_crc_fraction']:.0%} / {r['recv_crc_fraction']:.0%} "
        "(paper: 33% / 40%)"
    )
    table.add_note(
        f"measured end-to-end RTT {r['measured_rtt_us']:.1f} us (paper: 66); "
        f"1 KB bandwidth {r['measured_bw_1k_bytes_per_s'] / 1e6:.2f} MB/s "
        "(paper: 6.8)"
    )
    print()
    print(table)
    assert abs(r["total_one_way_us"] - 33.0) / 33.0 < 0.05
