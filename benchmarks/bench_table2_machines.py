"""Table 2: machine characteristics, with the U-Net ATM row re-measured
from the simulated stack (overhead, round trip, bandwidth)."""

from repro.bench import Table, raw_bandwidth
from repro.bench.uam import uam_single_cell_rtt, uam_store_bandwidth
from repro.splitc.machines import ALL_MACHINES, ATM_CLUSTER


def measure_atm_row():
    rtt = uam_single_cell_rtt(32, n=4).mean_us
    bw = uam_store_bandwidth(4096).bytes_per_second
    return {"round_trip_us": rtt, "bandwidth_bps": bw}


def test_table2_machine_comparison(once):
    measured = once(measure_atm_row)
    table = Table(
        "Table 2: computation and communication characteristics",
        ["Machine", "CPU", "overhead", "round-trip", "bandwidth"],
    )
    cpus = {"CM-5": "33 MHz Sparc-2", "Meiko CS-2": "40 MHz SuperSparc",
            "U-Net ATM": "50/60 MHz SuperSparc"}
    for m in ALL_MACHINES:
        table.add_row(
            m.name, cpus[m.name], f"{m.overhead_us:.0f} us",
            f"{m.round_trip_us:.0f} us", f"{m.bandwidth_bps / 1e6:.0f} MB/s",
        )
    table.add_note(
        f"ATM row re-measured from the simulated stack: round trip "
        f"{measured['round_trip_us']:.1f} us (table: 71), bandwidth "
        f"{measured['bandwidth_bps'] / 1e6:.1f} MB/s (table: 14)"
    )
    print()
    print(table)
    assert abs(measured["round_trip_us"] - ATM_CLUSTER.round_trip_us) < 8.0
    assert abs(measured["bandwidth_bps"] - ATM_CLUSTER.bandwidth_bps) < 2.5e6
