"""Figure 3: round-trip times as a function of message size.

Three curves: Raw U-Net ping-pong, UAM single-cell requests/replies,
and UAM reliable block transfers.  Paper anchors: 65 us single cell;
longer messages from ~120 us at 48 bytes plus ~6 us/cell; UAM at 71 us;
UAM transfers at roughly 135 us + N * 0.2 us.
"""

from repro.bench import Series, parallel_map, raw_rtt
from repro.bench.report import print_figure
from repro.bench.uam import uam_single_cell_rtt, uam_xfer_rtt

RAW_SIZES = [0, 8, 16, 32, 40, 48, 96, 192, 384, 768, 1024]
UAM_SIZES = [0, 8, 16, 32]
XFER_SIZES = [48, 128, 256, 512, 1024]


def _raw_point(size):
    return raw_rtt(size, n=4).mean_us


def _uam_point(size):
    return uam_single_cell_rtt(size, n=4).mean_us


def _xfer_point(size):
    return uam_xfer_rtt(size, n=4).mean_us


#: warmup ping-pongs shared by every point of the checkpointed sweep
WARM_PINGS = 400


def _warm_world():
    from repro.bench.micro import warm_rtt_world

    return warm_rtt_world(warmup=WARM_PINGS)


def _warm_point(world, size):
    from repro.bench.micro import rtt_point_on

    return rtt_point_on(world, size, n=4).mean_us


def sweep_checkpointed(use_fork=None):
    """The raw curve with one shared warmup prefix.

    Every point runs its 4 measured pings against a fork-cloned copy of
    a single warmed world (:mod:`repro.bench.checkpoint`); the serial
    fallback rebuilds the warmup per point with identical results.
    """
    from repro.bench import checkpoint

    values = checkpoint.sweep(
        _warm_world, _warm_point, RAW_SIZES, use_fork=use_fork
    )
    raw = Series("Raw U-Net (warm)")
    for size, us in zip(RAW_SIZES, values):
        raw.add(size, us)
    return raw


def sweep():
    raw = Series("Raw U-Net")
    for size, us in zip(RAW_SIZES, parallel_map(_raw_point, RAW_SIZES)):
        raw.add(size, us)
    uam = Series("UAM (single-cell request/reply)")
    for size, us in zip(UAM_SIZES, parallel_map(_uam_point, UAM_SIZES)):
        uam.add(size, us)
    xfer = Series("UAM xfer (reliable block transfer)")
    for size, us in zip(XFER_SIZES, parallel_map(_xfer_point, XFER_SIZES)):
        xfer.add(size, us)
    return raw, uam, xfer


def test_fig3_round_trip_times(once):
    raw, uam, xfer = once(sweep)
    print()
    print(print_figure(
        "Figure 3: U-Net round-trip times vs message size",
        [raw, uam, xfer], x_name="message bytes", y_name="round trip (us)",
    ))
    print("  paper anchors: raw 65 us single cell; 120 us @ 48 B; "
          "+~6 us/cell; UAM 71 us; xfer ~135 + 0.2N us")
    # single-cell plateau and the jump past 40 bytes
    assert abs(raw.y_at(32) - 65.0) < 5.0
    assert raw.y_at(48) - raw.y_at(40) > 40.0
    # UAM adds ~6 us over raw
    assert 2.0 < uam.y_at(32) - raw.y_at(32) < 12.0
    # xfer slope ~0.2 us/byte
    slope = (xfer.y_at(1024) - xfer.y_at(128)) / (1024 - 128)
    assert 0.15 < slope < 0.30
