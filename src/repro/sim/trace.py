"""Structured tracing and statistics collection for simulations."""

from __future__ import annotations

import math
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, MutableSequence, Optional, Tuple


@dataclass
class TraceRecord:
    time: float
    category: str
    message: str
    data: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:
        extra = f" {self.data}" if self.data else ""
        return f"[{self.time:12.3f}us] {self.category:>12}: {self.message}{extra}"


class Tracer:
    """Collects trace records and named counters.

    Tracing is off by default (``enabled=False``) so hot paths pay only a
    boolean check; counters are always collected since they are cheap and
    the benchmark harness relies on them (drops, retransmits, etc.).

    ``max_records`` bounds the record buffer with a ring: once full, the
    oldest records are discarded (counted in ``records_dropped``) so that
    long lossy-link runs cannot grow memory without limit.
    """

    def __init__(
        self,
        enabled: bool = False,
        categories: Optional[set] = None,
        max_records: Optional[int] = None,
    ):
        if max_records is not None and max_records <= 0:
            raise ValueError("max_records must be positive (or None for unbounded)")
        self.enabled = enabled
        self.categories = categories
        self.max_records = max_records
        self.records: MutableSequence[TraceRecord] = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self.records_dropped = 0
        self.counters: Counter = Counter()

    def log(self, time: float, category: str, message: str, **data: Any) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if self.max_records is not None and len(self.records) == self.max_records:
            self.records_dropped += 1
        # The one sanctioned append; everywhere else goes through log().
        self.records.append(  # simlint: disable=direct-tracer-append
            TraceRecord(time, category, message, data or None)
        )

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def snapshot(self) -> Dict[str, int]:
        """Counters as a plain dict (for bench JSON reports)."""
        return dict(self.counters)

    def __getitem__(self, counter_name: str) -> int:
        return self.counters[counter_name]

    def dump(self) -> str:
        return "\n".join(str(r) for r in self.records)


@dataclass
class StatSeries:
    """Accumulates samples and reports summary statistics."""

    name: str = ""
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        return min(self.samples)

    @property
    def maximum(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        return max(self.samples)

    @property
    def stddev(self) -> float:
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (len(self.samples) - 1))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self.samples:
            raise ValueError(f"no samples in series {self.name!r}")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> Tuple[float, float, float]:
        """(min, mean, max)."""
        return (self.minimum, self.mean, self.maximum)
