"""Discrete-event simulation engine underlying every substrate in this repo.

The engine is a small, self-contained kernel in the style of SimPy:
processes are Python generators that ``yield`` :class:`Event` objects
(timeouts, bare events, other processes, or conditions) and are resumed
when those events trigger.  Simulated time is a float measured in
*microseconds* throughout the repository, matching the units the U-Net
paper reports.

Public surface:

* :class:`Simulator` -- the event loop (``now``, ``run``, ``process``,
  ``timeout``, ``event``).
* :class:`Event`, :class:`Timeout`, :class:`Process` -- awaitable things.
* :class:`AnyOf` / :class:`AllOf` -- condition events.
* :class:`Store` -- FIFO channel with blocking ``get``/``put``.
* :class:`Resource` -- counted resource with FIFO ``request``/``release``.
* :class:`Tracer` -- structured event trace and counters.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.trace import StatSeries, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "StatSeries",
    "Store",
    "Timeout",
    "Tracer",
]
