"""Vectorized homogeneous event-batch kernels (``REPRO_SIM_BATCH``).

The calendar core pays one Python-level dispatch per schedule entry.
The profile-guided work-list from simcost (PR 8) showed the hot tail is
a handful of straight-line callbacks over slotted state — link
deliveries, switch receives, NI receive-FIFO sinks.  This module lets
those callbacks opt into *batch kernels*: when the run loop pops an
entry whose callback has a registered kernel, the kernel may consume
the entry — and, through the :class:`BatchApi`, any *provably
equivalent* run of adjacent entries — in one call instead of N.

The contract is strict bit-identity with scalar dispatch:

* A kernel returns ``True`` only when it fully replayed the scalar
  semantics of every entry it consumed: same model-state mutations,
  same ``(when, seq)`` numbers for everything it scheduled, same
  ``events_processed`` accounting (via :meth:`BatchApi.consume_seq`).
* A kernel that returns ``False`` must not have changed *any* state;
  the run loop falls through to the ordinary scalar call.
* ``BatchApi.pop_if(fn)`` only ever yields the **global-minimum**
  schedule entry, and only when it is a callback targeting exactly
  ``fn`` — so the incremental kernels (:func:`run_fused`) are
  bit-identical by construction: they replay pop / set-now / call in
  exactly the order the scalar loop would have used.

Batching is selectable with ``REPRO_SIM_BATCH=0|1`` (default on) and
auto-disables whenever any observer could see individual entries:
``REPRO_RACE`` / ``REPRO_OBS`` instrumentation (checked by the engine),
an active obs collection or metrics recorder, or a missing numpy.
Per-entry fallbacks cover lossy links, cut-edge proxies, and any shape
a kernel's preconditions cannot prove.

This module imports nothing from ``repro`` at module scope: the engine
imports it while ``repro.sim`` is still initializing.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable, Dict, Optional

#: Registered batch kernels, keyed by the *underlying function object*
#: of the callback (``bound_method.__func__``).  The run loop looks the
#: popped callback up here; a hit hands control to the kernel.
_KERNELS: Dict[Any, Callable] = {}

#: Pure bulk-append sinks, keyed the same way: callbacks proven to do
#: nothing but a drop-on-overflow FIFO append (no scheduling, no time
#: reads while batching is active).  The delivery kernels use this to
#: prove an output link's far end cannot perturb the replay.
_EXTENDERS: Dict[Any, Callable] = {}


class BatchApi:
    """Engine services handed to batch kernels.

    One instance per calendar core, filled with that core's closures:

    * ``sim`` — the owning :class:`~repro.sim.engine.Simulator`.
    * ``peek()`` — time of the next pending entry (``inf`` when idle).
    * ``pop_if(fn, bound=None)`` — pop and return the next entry iff it
      is the global minimum, a callback targeting exactly ``fn``, and
      fires no later than ``bound`` / the active run limit; ``None``
      otherwise.  Never touches ``sim._now``.
    * ``consume_seq(n)`` — burn ``n`` sequence numbers standing in for
      schedule+pop pairs the kernel replayed analytically (they count
      as processed events, matching scalar accounting).
    * ``set_now(t)`` — advance ``sim._now`` (replaying the pop of an
      entry the kernel consumed).
    * ``schedule_callback_at(when, fn, *args)`` — the core's ordinary
      absolute-time scheduler (allocates a real sequence number).
    * ``limit()`` — the active run bound (``run(until=...)``), ``inf``
      for unbounded runs.  Kernels must not consume past it.
    * ``fused(n)`` — report ``n`` dispatches fused into this kernel
      call (surfaces as ``batch_batches`` / ``batch_fused`` in
      ``Simulator.stats()``).
    """

    __slots__ = (
        "sim",
        "peek",
        "pop_if",
        "consume_seq",
        "set_now",
        "schedule_callback_at",
        "limit",
        "fused",
    )


# ---------------------------------------------------------------------------
# Activation.
# ---------------------------------------------------------------------------

_cfg = os.environ.get("REPRO_SIM_BATCH", "1") != "0"
_override: Optional[bool] = None
_np: Any = None
_np_checked = False
_obs_mod: Any = None
_metrics_mod: Any = None


def numpy_or_none():
    """The numpy module, or ``None`` when unavailable (cached)."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is a project dep
            numpy = None
        _np = numpy
    return _np


def set_batching(on: Optional[bool]) -> None:
    """Test/bench override: ``True``/``False`` force batching on or off
    for subsequently started runs; ``None`` restores the
    ``REPRO_SIM_BATCH`` environment default."""
    global _override
    _override = on if on is None else bool(on)


class use_batching:
    """Context manager form of :func:`set_batching`.

    >>> with use_batching(False):
    ...     sim.run()   # scalar dispatch
    """

    def __init__(self, on: Optional[bool]):
        self._on = on
        self._saved: Optional[bool] = None

    def __enter__(self) -> "use_batching":
        self._saved = _override
        set_batching(self._on)
        return self

    def __exit__(self, *exc: Any) -> None:
        global _override
        _override = self._saved


def enabled_config() -> bool:
    """The configured batching switch (env default or test override),
    ignoring runtime vetoes.  This is what cache keys record."""
    return _cfg if _override is None else _override


def runtime_active() -> bool:
    """True when a run started now should use the batched loops.

    Cheap enough for once-per-``run()`` evaluation (the sharded engine
    calls it once per conservative window).  The engine adds its own
    veto for armed REPRO_RACE / REPRO_OBS instrumentation before asking.
    """
    global _obs_mod, _metrics_mod
    if not (_cfg if _override is None else _override):
        return False
    if not _KERNELS:
        return False
    if numpy_or_none() is None:
        return False
    if _obs_mod is None:
        from repro import obs
        from repro.obs import metrics

        _obs_mod = obs
        _metrics_mod = metrics
    # An active obs collection or metrics recorder observes individual
    # entries (spans, per-cell samples); kernels skip those, so batching
    # must stand down for the run.
    return _obs_mod.active is None and _metrics_mod.active is None


def cache_tag() -> str:
    """Batch-configuration fingerprint for ``repro.bench.cache`` keys.

    Results are bit-identical by contract, but the cache key still
    records the configured switch and the numpy version so batched and
    unbatched (or differently-vectorized) runs can never alias — same
    bug class as the PR 6 shard-count key fix."""
    np = numpy_or_none()
    return "batch={},numpy={}".format(
        int(enabled_config()),
        getattr(np, "__version__", "none"),
    )


# ---------------------------------------------------------------------------
# Registration.
# ---------------------------------------------------------------------------


def register(func: Callable, kernel: Callable) -> None:
    """Register ``kernel`` as the batch kernel for callback ``func``.

    ``func`` may be a plain function or an unbound class attribute
    (``Link._deliver_cell``); bound methods are unwrapped.  The kernel
    is called as ``kernel(api, fn, args)`` with the *bound* callback of
    the popped entry and must honour the bit-identity contract above.
    """
    _KERNELS[getattr(func, "__func__", func)] = kernel


def registered() -> Dict[Any, Callable]:
    """Snapshot of the kernel registry (for tooling/tests)."""
    return dict(_KERNELS)


def rx_fifo_extend(rx: Any, cells: list) -> None:
    """Bulk equivalent of N drop-on-overflow receive-FIFO sinks.

    ``rx`` is any object with the NI receive shape: ``input_fifo`` (a
    :class:`~repro.sim.resources.Store`), ``input_fifo_drops``,
    ``tracer`` and ``_k_rxfifo_drop``.  Callers must have proven the
    FIFO has no waiting getters and that no observer is active."""
    fifo = rx.input_fifo
    items = fifo.items
    room = fifo.capacity - len(items)
    k = len(cells)
    if room >= k:
        items.extend(cells)
        return
    # Scalar try_put admits while len(items) < capacity, so a fractional
    # capacity admits ceil(room) more cells.
    n_fit = int(math.ceil(room)) if room > 0 else 0
    if n_fit:
        items.extend(cells[:n_fit])
    dropped = k - n_fit
    rx.input_fifo_drops += dropped
    rx.tracer.count(rx._k_rxfifo_drop, dropped)


def register_rx_extend(func: Callable) -> None:
    """Declare ``func`` (an ``_rx_sink``-shaped bound callback) a pure
    drop-on-overflow FIFO sink: delivery kernels may replace N calls
    with one :func:`rx_fifo_extend`, and directly scheduled entries get
    the generic :func:`run_fused` kernel."""
    f = getattr(func, "__func__", func)
    _EXTENDERS[f] = rx_fifo_extend
    _KERNELS[f] = run_fused


# ---------------------------------------------------------------------------
# Kernels.
# ---------------------------------------------------------------------------


def run_fused(api: BatchApi, fn: Callable, args: tuple) -> bool:
    """Generic incremental kernel: bit-identical by construction.

    Calls ``fn(*args)`` for the already-popped entry, then keeps
    popping *only while* the global-minimum entry still targets ``fn``
    — re-checking after every call, so anything a call schedules ahead
    of the next entry ends the run exactly where the scalar loop would
    have switched callbacks.  No preconditions needed; the win is
    skipping the dispatch branch-tree and kernel lookup per entry."""
    if args:
        fn(*args)
    else:
        fn()
    pop_if = api.pop_if
    set_now = api.set_now
    n = 1
    while True:
        e = pop_if(fn)
        if e is None:
            break
        set_now(e[0])
        a = e[4]
        if a:
            fn(*a)
        else:
            fn()
        n += 1
    if n > 1:
        api.fused(n)
    return True


def deliver_cell_kernel(api: BatchApi, fn: Callable, args: tuple) -> bool:
    """Kernel for ``Link._deliver_cell``: gather a run of deliveries.

    When the link's sink is a registered pure FIFO extender with no
    waiting getters, a run of back-to-back delivery entries collapses
    into one bulk append (per-cell drop accounting preserved).  Any
    other sink falls back to the generic incremental run, which is
    always safe."""
    link = fn.__self__
    sink = link._sink
    if sink is not None:
        ext = _EXTENDERS.get(getattr(sink, "__func__", None))
        if ext is not None:
            rx = sink.__self__
            if not rx.input_fifo._getters:
                e = api.pop_if(fn)
                if e is None:
                    sink(args[0])
                    return True
                cells = [args[0], e[4][0]]
                last = e[0]
                while True:
                    e = api.pop_if(fn)
                    if e is None:
                        break
                    cells.append(e[4][0])
                    last = e[0]
                ext(rx, cells)
                api.set_now(last)
                api.fused(len(cells))
                return True
    return run_fused(api, fn, args)


def deliver_train_kernel(api: BatchApi, fn: Callable, args: tuple) -> bool:
    """Kernel for ``Link._deliver_train``: expand a whole cell train
    through the switch analytically.

    The scalar cascade for an N-cell train is 2N-1 dispatches — one
    ``_receive`` per cell and one ``_forward`` per cell (the first
    receive rides the train entry) — plus N delivery entries on the
    output link.  When the preconditions below hold, the timestamps,
    sequence numbers and model-state deltas of the whole cascade are
    computable in closed form (numpy for long serialization chains), so
    the kernel replays it in one call.  If the queue is also quiet
    until the last delivery time, even the delivery entries are
    absorbed into one bulk FIFO append; otherwise they are scheduled
    as real entries with their exact scalar sequence numbers.

    Preconditions (any failure falls back, still bit-identical):

    * the train sink is a switch input (``__batch_switch__`` marker)
      and every cell routes through one (port, VCI) entry;
    * the output link is clean: no cut, no loss function, fast path,
      and its sink a registered pure FIFO extender with no getters —
      so in-window delivery pops cannot schedule or observe anything;
    * nothing else is pending inside the expansion window
      (``peek() > wend`` strictly, ``wend`` within the run limit);
    * the output queue provably cannot overflow (conservative, no
      pruning: ``len(starts) + N - 1 < capacity``).
    """
    link = fn.__self__
    target = getattr(link._train_sink, "__batch_switch__", None)
    if target is None:
        return run_fused(api, fn, args)
    train = args[0]
    cells = train.cells
    n = len(cells)
    if n < 2:
        return run_fused(api, fn, args)
    switch, port = target
    vci = cells[0].vci
    wb = cells[0].wire_bytes
    for c in cells:
        if c.vci != vci or c.wire_bytes != wb:
            return run_fused(api, fn, args)
    route = switch._routes.get((port, vci))
    if route is None:
        return run_fused(api, fn, args)
    out = switch.output_links[route.out_port]
    sink = out._sink
    if (
        out._cut is not None
        or out.loss_fn is not None
        or not out.fast_path
        or sink is None
    ):
        return run_fused(api, fn, args)
    ext = _EXTENDERS.get(getattr(sink, "__func__", None))
    if ext is None:
        return run_fused(api, fn, args)
    if sink.__self__.input_fifo._getters:
        return run_fused(api, fn, args)
    arrivals = train.arrivals_us
    lat = switch.switching_latency_us
    f = [a + lat for a in arrivals]  # per-cell _forward times
    wend = f[-1]
    limit = api.limit()
    pk = api.peek()
    if wend > limit or not (pk > wend):
        return run_fused(api, fn, args)
    starts = out._starts
    if len(starts) + n - 1 >= out.capacity:
        return run_fused(api, fn, args)

    # Serialization claims.  The common case is busy-dominated (each
    # finish at or past the next forward time): one accumulate over a
    # preallocated array reproduces the scalar add chain bit-for-bit
    # (float64 adds, strictly left to right in both).  Short trains use
    # the exact scalar _claim replay directly — numpy's per-call
    # overhead swamps a dozen adds.  Either way the drained-queue case
    # (some forward time past the accumulated finish) replays _claim.
    ct = out.cell_time_us(wb)
    busy = out._busy_until
    S = F = None
    if n >= 32:
        np = numpy_or_none()
        vals = np.empty(n + 1)
        vals[0] = busy if busy >= f[0] else f[0]
        vals[1:] = ct
        np.add.accumulate(vals, out=vals)
        if bool((vals[1:-1] >= np.asarray(f[1:])).all()):
            S = vals[:-1].tolist()
            F = vals[1:].tolist()
    if S is None:
        S = []
        F = []
        for t in f:
            start = busy
            if start < t:
                start = t
            busy = start + ct
            S.append(start)
            F.append(busy)

    out_vci = route.out_vci
    prop = out.propagation_us
    dlast = F[-1] + prop  # the cascade's last event: cell N-1 delivered
    if dlast <= limit and pk > dlast:
        # Nothing foreign fires before the last delivery, and the
        # output sink is a proven pure FIFO extender — so the delivery
        # pops commute into one bulk append and never need to exist as
        # schedule entries.  All 3N-1 sequence numbers the cascade
        # would allocate (first forward + N-1 deferred receives, N-1
        # mid-window forwards, N deliveries) are burned in one stroke;
        # with no surviving entries their interleaving is unobservable.
        api.consume_seq(3 * n - 1)
        ext(sink.__self__, [c.with_vci(out_vci) for c in cells])
        api.set_now(dlast)
        fused = 3 * n - 1
    else:
        # A foreign entry lands between wend and the last delivery (or
        # the run limit does): the deliveries must exist as real
        # schedule entries with exactly the sequence numbers the scalar
        # cascade would give them.  _receive_train allocates the first
        # forward plus N-1 deferred receives up front; then receives
        # and forwards pop in (when, seq) order.  A forward ties with a
        # receive only at equal times, and wins only as forward 0 (its
        # seq predates every deferred receive; later forwards are
        # scheduled mid-window and postdate them all).  Each receive
        # burns the seq of the forward it schedules; each forward
        # schedules its real delivery entry.
        api.consume_seq(n)
        schedule_at = api.schedule_callback_at
        deliver = out._deliver_cell
        i = 1  # next deferred receive
        j = 0  # next pending forward (pending iff j < i)
        while j < n:
            if j < i and (
                i >= n or f[j] < arrivals[i] or (f[j] == arrivals[i] and j == 0)
            ):
                schedule_at(F[j] + prop, deliver, cells[j].with_vci(out_vci))
                j += 1
            else:
                api.consume_seq(1)
                i += 1
        fused = 2 * n - 1

    switch.cells_switched += n
    out.cells_sent += n
    out.bytes_sent += wb * n
    out._busy_until = F[-1]
    # Final queue state: the last scalar prune (at wend) drops every
    # start at or before wend, then the last claim appends its start
    # unconditionally.
    while starts and starts[0] <= wend:
        starts.popleft()
    for k in range(n - 1):
        if S[k] > wend:
            starts.append(S[k])
    starts.append(S[n - 1])
    api.fused(fused)
    return True
