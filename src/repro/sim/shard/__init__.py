"""Sharded multi-timeline simulation with conservative lookahead.

Three execution modes, one observable timeline (DESIGN.md §8):

* ``shards=1`` — :class:`~repro.sim.engine.Simulator` construction is
  untouched: the plain single-timeline engine, byte-identical code path.
* **inline** (``REPRO_SIM_SHARDS=N`` in one process) —
  :class:`ShardedSimulator` runs N calendar timelines under the
  deterministic ``(timestamp, shard)`` merge, pushing every cut-edge
  message through the real struct codec and lookahead assertions.  This
  is the verification mode the fig-scenario A/B suite runs.
* **multi-process** — :func:`run_partitioned` executes one worker
  process per shard under the conservative-window protocol
  (:mod:`repro.sim.shard.coordinator`), exchanging struct-packed cell
  batches and EOT null messages over pipes.

Select with ``REPRO_SIM_SHARDS=N`` (or
:func:`repro.sim.engine.set_shards` / ``use_shards``); partitioned
scenarios call :func:`run_partitioned` directly.
"""

from repro.sim.shard.channel import (
    BufferedChannel,
    Channel,
    DirectChannel,
    InletRegistry,
    InlineChannel,
    RemoteStub,
    decode_batch,
    decode_records,
    encode_batch,
    encode_cell,
    encode_train,
    stub_shard,
)
from repro.sim.shard.coordinator import ShardContext, run_partitioned
from repro.sim.shard.errors import (
    CrossShardAccessError,
    ShardCrashError,
    ShardError,
)
from repro.sim.shard.plan import CutEdge, ShardPlan, block_owner
from repro.sim.shard.sharded import ShardedSimulator

__all__ = [
    "BufferedChannel",
    "Channel",
    "CrossShardAccessError",
    "CutEdge",
    "DirectChannel",
    "InletRegistry",
    "InlineChannel",
    "RemoteStub",
    "ShardContext",
    "ShardCrashError",
    "ShardError",
    "ShardPlan",
    "ShardedSimulator",
    "block_owner",
    "decode_batch",
    "decode_records",
    "encode_batch",
    "encode_cell",
    "encode_train",
    "run_partitioned",
    "stub_shard",
]
