"""The in-process sharded engine: N calendar timelines, one merge rule.

:class:`ShardedSimulator` partitions the schedule across ``n_shards``
independent calendar-queue timelines (each built by the same
battle-tested ``_build_calendar_core`` factory as the single-core
engine) and executes them under a deterministic merge:

    pick the timeline whose earliest pending entry has the globally
    minimal ``(timestamp, shard_id)``; step it once.

Within a shard the calendar core preserves the engine's exact
``(timestamp, seq)`` FIFO order; across shards, same-timestamp groups
drain in shard order.  Cross-shard tie order is precisely the freedom
the engine has never promised (the PR 3 perturbation harness exists to
prove scenario metrics don't depend on it), and the A/B suite pins the
resulting metrics to the single-core run at full float precision.

This mode runs in one process — it cannot speed anything up.  Its job
is *verification*: every fig-scenario A/B run drives the cut channels,
the struct codec, the lookahead assertions, and the merge rule that the
multi-process coordinator (:mod:`repro.sim.shard.coordinator`) relies
on, with the single-core engine as ground truth.  Real parallelism
comes from the coordinator, which runs one plain :class:`Simulator`
per worker process and synchronises them conservatively.

Scheduling *attribution*: every ``schedule_*`` call lands on the shard
that is currently executing (or, at build time, the shard selected
with :meth:`shard_scope`).  Event chains therefore migrate to the shard
whose cut delivery started them — exactly the space partition of the
topology — while correctness never depends on attribution at all,
because execution is globally time-ordered.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.sim import engine as _engine
from repro.sim.engine import SimulationError, Simulator
from repro.sim.shard.channel import InlineChannel
from repro.sim.shard.errors import ShardError
from repro.sim.shard.plan import CutEdge

_INF = float("inf")


class _Timeline:
    """One shard's calendar queue: the minimal host the core factory needs.

    ``_build_calendar_core`` only ever touches ``sim._now``,
    ``sim.events_processed`` and ``sim._heap`` on the object it is
    handed, so a 14-slot shell is enough to own a full calendar core.
    """

    __slots__ = (
        "_now",
        "events_processed",
        "_heap",
        "schedule_callback",
        "schedule_callback_at",
        "_schedule",
        "_schedule_event_at",
        "schedule_timer",
        "run",
        "step",
        "peek",
        "stats",
        "snapshot",
        "restore",
    )

    def __init__(self, width: float):
        self._now = 0.0
        self.events_processed = 0
        (
            self.schedule_callback,
            self.schedule_callback_at,
            self._schedule,
            self._schedule_event_at,
            self.schedule_timer,
            self.run,
            self.step,
            self.peek,
            self.stats,
            self.snapshot,
            self.restore,
        ) = _engine._build_calendar_core(self, width)


class _MonitoredTimeline:
    """One shard's *monitored* timeline: a heap core reporting to a
    shared obs monitor through its per-shard view.

    Borrows ``_MonitoredSimulator``'s schedule methods and generated
    step loop verbatim (they only touch ``_now`` / ``_seq`` / ``_heap``
    / ``_timer_pool`` / ``_mon``), so span context propagates along
    schedule→execute edges across *all* timelines of one
    :class:`ShardedSimulator` — the shared monitor's entry ids are
    globally monotonic, which preserves each timeline's FIFO tie-break
    exactly.  Only constructed when a shard-aware monitor is armed; the
    off path keeps building plain calendar :class:`_Timeline` shells.
    """

    __slots__ = ("_now", "events_processed", "_heap", "_seq",
                 "_timer_pool", "_mon")

    def __init__(self, view: Any):
        self._now = 0.0
        self.events_processed = 0
        self._heap: List[tuple] = []
        self._seq = 0
        self._timer_pool: List[Any] = []
        self._mon = view

    schedule_callback = _engine._MonitoredSimulator.schedule_callback
    schedule_callback_at = _engine._MonitoredSimulator.schedule_callback_at
    _schedule = _engine._MonitoredSimulator._schedule
    _schedule_event_at = _engine._MonitoredSimulator._schedule_event_at
    schedule_timer = _engine._MonitoredSimulator.schedule_timer
    step = _engine._MonitoredSimulator.step
    peek = _engine._HeapSimulator.peek
    stats = _engine._HeapSimulator.stats


class _ShardScope:
    """Context manager: attribute subsequent scheduling to one shard."""

    __slots__ = ("_cur", "_shard", "_saved")

    def __init__(self, cur: List[int], shard: int):
        self._cur = cur
        self._shard = shard
        self._saved = 0

    def __enter__(self) -> "_ShardScope":
        self._saved = self._cur[0]
        self._cur[0] = self._shard
        return self

    def __exit__(self, *exc: Any) -> None:
        self._cur[0] = self._saved


class ShardedSimulator(Simulator):
    """N-timeline engine with the deterministic ``(t, shard)`` merge."""

    __slots__ = (
        "_timelines",
        "_cur",
        "n_shards",
        "_cross_messages",
        "_channels",
    )

    def __new__(cls, n_shards: Optional[int] = None) -> "ShardedSimulator":
        # Direct construction (tests, the bench harness) bypasses the
        # base class's environment routing.
        return object.__new__(cls)

    def __init__(self, n_shards: Optional[int] = None):
        n = _engine.shard_count() if n_shards is None else n_shards
        if n < 1:
            raise ValueError(f"need at least one shard, got {n}")
        self._now = 0.0
        self.n_shards = n
        self._cross_messages = 0
        self._channels: List[InlineChannel] = []
        width = self.NEAR_WINDOW_US
        # A shard-aware monitor (obs spans) rides into the sharded
        # engine: one shared monitor, one per-shard view per timeline.
        factory = _engine._monitor_factory
        if factory is not None and _engine._monitor_shard_aware:
            mon = factory()
            timelines: List[Any] = [
                _MonitoredTimeline(mon.shard_view(k)) for k in range(n)
            ]
        else:
            mon = None
            timelines = [_Timeline(width) for _ in range(n)]
        self._mon = mon
        self._timelines = timelines
        cur = [0]
        self._cur = cur

        # Route the scheduling surface to the currently-executing shard.
        # These live in the same instance slots the single-core engine
        # uses for its closures, so model code sees an identical API.
        def schedule_callback(delay, fn, *args):
            return timelines[cur[0]].schedule_callback(delay, fn, *args)

        def schedule_callback_at(when, fn, *args):
            return timelines[cur[0]].schedule_callback_at(when, fn, *args)

        def _schedule(event, delay=0.0):
            return timelines[cur[0]]._schedule(event, delay)

        def _schedule_event_at(event, when):
            return timelines[cur[0]]._schedule_event_at(event, when)

        def schedule_timer(delay, fn, *args):
            return timelines[cur[0]].schedule_timer(delay, fn, *args)

        peeks = [tl.peek for tl in timelines]
        steps = [tl.step for tl in timelines]

        def run(until=None):
            if until is not None and until < self._now:
                raise ValueError(
                    f"until ({until}) lies in the past (now={self._now})"
                )
            while True:
                best_t = _INF
                best_k = -1
                for k in range(n):
                    t = peeks[k]()
                    if t < best_t:
                        best_t = t
                        best_k = k
                if best_k < 0:
                    break
                if until is not None and best_t > until:
                    break
                cur[0] = best_k
                # The global clock must read the entry's timestamp
                # *while it executes* (the timeline sets its own local
                # clock, but model code reads ``sim.now`` on us).
                self._now = best_t
                steps[best_k]()
            cur[0] = 0
            if until is not None:
                self._now = until
            # Re-anchor every timeline at the global clock so relative
            # scheduling between runs uses the same base everywhere.
            for tl in timelines:
                tl._now = self._now

        def step():
            best_t = _INF
            best_k = -1
            for k in range(n):
                t = peeks[k]()
                if t < best_t:
                    best_t = t
                    best_k = k
            if best_k < 0:
                raise SimulationError(
                    "step() on an empty schedule: nothing left to run"
                )
            cur[0] = best_k
            self._now = best_t
            steps[best_k]()
            cur[0] = 0

        def peek():
            best_t = _INF
            for k in range(n):
                t = peeks[k]()
                if t < best_t:
                    best_t = t
            return best_t

        def stats():
            per_shard = [tl.stats() for tl in timelines]
            merged = {
                "core": "sharded-calendar",
                "shards": n,
                "cross_messages": self._cross_messages,
                "cut_edges": len(self._channels),
                "events_per_shard": [
                    tl.events_processed for tl in timelines
                ],
            }
            if mon is not None:
                merged["core"] = "sharded-heap-monitored"
            for key in (
                "schedules",
                "front_inserts",
                "near_pushes",
                "far_spills",
                "promotions",
                "near_depth",
                "far_depth",
            ):
                # Monitored timelines report heap stats, which lack the
                # calendar-only keys; missing counts read as zero.
                merged[key] = sum(s.get(key, 0) for s in per_shard)
            return merged

        self.schedule_callback = schedule_callback
        self.schedule_callback_at = schedule_callback_at
        self._schedule = _schedule
        self._schedule_event_at = _schedule_event_at
        self.schedule_timer = schedule_timer
        self.run = run
        self.step = step
        self.peek = peek
        self.stats = stats

    # -- accounting -----------------------------------------------------
    @property
    def events_processed(self) -> int:  # shadows the base-class slot
        return sum(tl.events_processed for tl in self._timelines)

    @property
    def cross_messages(self) -> int:
        """Cut-channel messages delivered across timelines so far."""
        return self._cross_messages

    # -- shard surface (used by topology builders and channels) ---------
    @property
    def current_shard(self) -> int:
        return self._cur[0]

    def shard_scope(self, shard: int) -> _ShardScope:
        """Attribute scheduling inside the ``with`` block to ``shard``.

        Topology builders wrap per-host construction in this so the
        initial events of a host's processes land on its own timeline.
        """
        if not 0 <= shard < self.n_shards:
            raise ShardError(
                f"shard {shard} out of range (0..{self.n_shards - 1})"
            )
        return _ShardScope(self._cur, shard)

    def _schedule_cross(
        self, dst_shard: int, when: float, fn: Callable, *args: Any
    ) -> None:
        """Channel-only entry point: deliver into another shard's timeline.

        ``when`` is always at or after the global clock (channels assert
        the edge lookahead first), so the destination timeline — whose
        local clock can only lag the global one — accepts it without a
        causality error.
        """
        self._cross_messages += 1
        self._timelines[dst_shard].schedule_callback_at(when, fn, *args)

    def open_channel(
        self,
        edge: CutEdge,
        deliver_cell: Callable,
        deliver_train: Optional[Callable] = None,
    ) -> InlineChannel:
        """Materialize a registered cut edge as an inline channel."""
        if not 0 <= edge.dst_shard < self.n_shards:
            raise ShardError(
                f"cut edge {edge.name!r} targets shard {edge.dst_shard}, "
                f"but this simulator has {self.n_shards}"
            )
        channel = InlineChannel(edge, self, deliver_cell, deliver_train)
        self._channels.append(channel)
        return channel

    def channels(self) -> Iterator[InlineChannel]:
        return iter(self._channels)
