"""Cross-shard channels: the only way state crosses the cut.

Wire format
-----------

The cell hot path is pickle-free: every record is fixed-layout struct
packing, so a worker-to-coordinator batch is a single ``bytes`` object
built with :mod:`struct` and decoded without touching the pickle
machinery.  Per cell::

    <d H B Q Q 48s   ts_us  vci  flags  seq  span_gid  payload  (75 bytes)

``flags`` bit 0 is the AAL5 last-cell bit.  ``span_gid`` is the obs
distributed-tracing context: the sender's global span id
(``repro.obs.spans.span_gid``) when span collection is armed, 0
otherwise — the "no context" sentinel, so off-mode payloads carry a
constant field and timestamps stay bit-identical.  Records group
cells::

    <B I           record type (CELL=1 | TRAIN=2)  cell count

A CELL record carries one cell whose ``ts`` is its delivery time; a
TRAIN record carries a whole back-to-back burst, one packed cell per
member with its own analytic arrival float, preserving the one-event-
per-train structure of the fast-path link on the far side.  A batch
prefixes records with the cut-edge id::

    <I I           edge_id  n_records

Floats survive the codec bit-exactly (IEEE-754 both directions), which
is what makes the sharded timeline *provably* the single-core one: the
A/B tests compare delivery timestamps at full precision.

Channel flavours
----------------

* :class:`DirectChannel` — same timeline (shards=1 baseline, or two
  islands co-owned by one worker): schedules the delivery callable
  straight into the simulator.  No codec, no copy.
* :class:`InlineChannel` — the in-process sharded engine: encodes,
  decodes, asserts the edge's lookahead promise, then schedules into
  the *destination shard's* timeline.  This is the verification mode:
  every fig-scenario A/B run drives the full codec and the lookahead
  accounting even though no process boundary is crossed.
* :class:`BufferedChannel` — the multi-process engine: encodes into a
  per-edge buffer drained by the worker loop into one batch per
  synchronisation round.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.obs.spans import span_gid as _span_gid
from repro.sim.shard.errors import CrossShardAccessError, ShardError
from repro.sim.shard.plan import CutEdge

_CELL = struct.Struct("<dHBQQ48s")
_REC = struct.Struct("<BI")
_BATCH = struct.Struct("<II")

REC_CELL = 1
REC_TRAIN = 2

#: Slack for the lookahead assertion: delivery floats are computed by
#: the link in one rounding regime and re-derived bounds in another;
#: one part in 2**33 of a microsecond is far below any model constant.
_EPS_US = 1e-9


class RemoteStub:
    """Placeholder for the far end of a cut edge.

    Reading *any* attribute raises :class:`CrossShardAccessError`: the
    object it stands for lives on another shard (possibly in another
    process) and its state is not coherent here.  Use the channel API.
    """

    __slots__ = ("_shard", "_label")

    def __init__(self, shard: int, label: str):
        object.__setattr__(self, "_shard", shard)
        object.__setattr__(self, "_label", label)

    def __getattr__(self, name: str):
        raise CrossShardAccessError(
            f"direct access to {object.__getattribute__(self, '_label')!r}."
            f"{name}: object is owned by shard "
            f"{object.__getattribute__(self, '_shard')} — cross-shard state "
            f"must go through the channel API"
        )

    def __setattr__(self, name: str, value) -> None:
        raise CrossShardAccessError(
            f"direct mutation of {object.__getattribute__(self, '_label')!r}."
            f"{name}: object is owned by shard "
            f"{object.__getattribute__(self, '_shard')}"
        )

    def __repr__(self) -> str:  # repr must not raise: debuggers use it
        return (
            f"<RemoteStub {object.__getattribute__(self, '_label')!r} "
            f"@shard{object.__getattribute__(self, '_shard')}>"
        )


def stub_shard(stub: RemoteStub) -> int:
    """Owning shard of a stub (the one sanctioned read)."""
    return object.__getattribute__(stub, "_shard")


# --------------------------------------------------------------------------
# Codec
# --------------------------------------------------------------------------

def _span_ctx() -> int:
    """The sender's global span id, or 0 when span collection is off.

    One module-attr read when off (the standard guard); the gid is what
    lets the receiving shard's delivery chain re-parent onto the
    sender's span after the coordinator stitches the per-shard dumps.
    """
    col = _obs.active
    if col is None:
        return 0
    cur = col.current
    if cur is None:
        return 0
    return _span_gid(col.shard, cur.sid)


def _pack_cell(buf: List[bytes], ts: float, cell, gid: int) -> None:
    buf.append(
        _CELL.pack(
            ts, cell.vci, 1 if cell.last else 0, cell.seq, gid, cell.payload
        )
    )


def encode_cell(ts: float, cell, span_id: int = 0) -> bytes:
    """One CELL record: delivery timestamp + span context + packed cell."""
    return _REC.pack(REC_CELL, 1) + _CELL.pack(
        ts, cell.vci, 1 if cell.last else 0, cell.seq, span_id, cell.payload
    )


def encode_train(
    arrivals: Sequence[float], cells: Sequence, span_id: int = 0
) -> bytes:
    """One TRAIN record: the whole burst, one packed cell per member.

    The burst is one causal unit (one source event emitted it), so all
    member cells carry the same span context."""
    if len(arrivals) != len(cells):
        raise ShardError(
            f"train arity mismatch: {len(arrivals)} arrivals, "
            f"{len(cells)} cells"
        )
    parts = [_REC.pack(REC_TRAIN, len(cells))]
    for ts, cell in zip(arrivals, cells):
        _pack_cell(parts, ts, cell, span_id)
    return b"".join(parts)


def decode_records(
    payload: bytes, offset: int = 0, count: Optional[int] = None
) -> List[Tuple[int, List[Tuple[float, "Cell", int]]]]:
    """Decode records from ``payload``; returns
    ``[(rec_type, [(ts, cell, span_gid)...])]``.

    Truncated input raises :class:`ShardError` (a worker died mid-write
    or the pipe corrupted) rather than silently dropping cells.
    """
    from repro.atm.cell import Cell  # deferred: sim must not import atm at load

    out: List[Tuple[int, List[Tuple[float, Cell, int]]]] = []
    end = len(payload)
    while offset < end and (count is None or len(out) < count):
        try:
            rec_type, n = _REC.unpack_from(payload, offset)
        except struct.error as exc:
            raise ShardError(f"truncated channel record header: {exc}") from exc
        offset += _REC.size
        if rec_type not in (REC_CELL, REC_TRAIN):
            raise ShardError(f"unknown channel record type {rec_type}")
        cells: List[Tuple[float, Cell, int]] = []
        for _ in range(n):
            try:
                ts, vci, flags, seq, gid, data = _CELL.unpack_from(payload, offset)
            except struct.error as exc:
                raise ShardError(f"truncated channel cell: {exc}") from exc
            offset += _CELL.size
            cell = object.__new__(Cell)  # payload validated at pack time
            cell.vci = vci
            cell.payload = data
            cell.last = bool(flags & 1)
            cell.seq = seq
            cells.append((ts, cell, gid))
        out.append((rec_type, cells))
    if offset != end and count is None:
        raise ShardError(
            f"trailing bytes in channel batch ({end - offset} unread)"
        )
    return out


def encode_batch(edge_id: int, records: Sequence[bytes]) -> bytes:
    """Frame encoded records into one batch blob for the pipe."""
    return _BATCH.pack(edge_id, len(records)) + b"".join(records)


def decode_batch(blob: bytes) -> Tuple[int, List[Tuple[int, List[Tuple[float, "Cell", int]]]]]:
    """Inverse of :func:`encode_batch`: (edge_id, decoded records)."""
    try:
        edge_id, n = _BATCH.unpack_from(blob, 0)
    except struct.error as exc:
        raise ShardError(f"truncated channel batch header: {exc}") from exc
    records = decode_records(blob, _BATCH.size, count=n)
    if len(records) != n:
        raise ShardError(
            f"channel batch promised {n} records, decoded {len(records)}"
        )
    return edge_id, records


# --------------------------------------------------------------------------
# Channels
# --------------------------------------------------------------------------

class Channel:
    """Common surface: where the cut edge's traffic goes.

    ``send_cell`` / ``send_train`` are called by the *source* side's
    link model with the exact delivery floats it would have scheduled
    locally; the channel is responsible for making those same floats
    fire the destination's delivery callables, whatever address space
    the destination lives in.
    """

    __slots__ = ("edge", "stub", "cells_sent", "trains_sent")

    def __init__(self, edge: CutEdge):
        self.edge = edge
        self.stub = RemoteStub(edge.dst_shard, f"{edge.name}.peer")
        self.cells_sent = 0
        self.trains_sent = 0

    def send_cell(self, ts: float, cell) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def send_train(self, arrivals, cells) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class DirectChannel(Channel):
    """Same-timeline 'cut': schedule the delivery callable directly.

    Used for the shards=1 baseline of sharded scenarios and for edges
    between two islands the same worker owns.  Timestamps and event
    structure are exactly what a connected link would produce, so the
    baseline is a fair A/B reference.
    """

    __slots__ = ("_sim", "_deliver_cell", "_deliver_train")

    def __init__(self, edge: CutEdge, sim, deliver_cell, deliver_train=None):
        super().__init__(edge)
        self._sim = sim
        self._deliver_cell = deliver_cell
        self._deliver_train = deliver_train

    def send_cell(self, ts: float, cell) -> None:
        self.cells_sent += 1
        self._sim.schedule_callback_at(ts, self._deliver_cell, cell)

    def send_train(self, arrivals, cells) -> None:
        from repro.atm.link import CellTrain

        if self._deliver_train is None:
            raise ShardError(
                f"cut edge {self.edge.name!r} received a train but has no "
                f"train delivery target"
            )
        self.trains_sent += 1
        self.cells_sent += len(cells)
        train = CellTrain(list(cells), list(arrivals))
        self._sim.schedule_callback_at(arrivals[0], self._deliver_train, train)


class InlineChannel(Channel):
    """In-process sharded engine: codec round trip + cross-timeline schedule.

    Every message is packed and unpacked through the real wire codec and
    checked against the edge's lookahead promise before being scheduled
    into the destination shard's timeline — the strongest verification
    the single-machine A/B can give the multi-process protocol.
    """

    __slots__ = ("_sim", "_deliver_cell", "_deliver_train")

    def __init__(self, edge: CutEdge, sim, deliver_cell, deliver_train=None):
        super().__init__(edge)
        self._sim = sim
        self._deliver_cell = deliver_cell
        self._deliver_train = deliver_train

    def _check_lookahead(self, ts: float) -> None:
        promised = self._sim._now + self.edge.lookahead_us
        if ts + _EPS_US < promised:
            raise ShardError(
                f"cut edge {self.edge.name!r} broke its lookahead promise: "
                f"delivery at {ts} but now={self._sim._now} + "
                f"lookahead={self.edge.lookahead_us} promises >= {promised} "
                f"(was a loss function attached after the edge was bound?)"
            )

    def send_cell(self, ts: float, cell) -> None:
        self._check_lookahead(ts)
        # Span context rides the codec even inline (the A/B exercises
        # the field); causal parentage itself propagates through the
        # monitored schedule below, since this runs inside the sending
        # entry's execution.
        ((_, [(ts2, cell2, _gid)]),) = decode_records(
            encode_cell(ts, cell, _span_ctx())
        )
        self.cells_sent += 1
        self._sim._schedule_cross(
            self.edge.dst_shard, ts2, self._deliver_cell, cell2
        )

    def send_train(self, arrivals, cells) -> None:
        from repro.atm.link import CellTrain

        if self._deliver_train is None:
            raise ShardError(
                f"cut edge {self.edge.name!r} received a train but has no "
                f"train delivery target"
            )
        self._check_lookahead(arrivals[0])
        ((_, recs),) = decode_records(
            encode_train(arrivals, cells, _span_ctx())
        )
        self.trains_sent += 1
        self.cells_sent += len(recs)
        train = CellTrain([c for _, c, _ in recs], [t for t, _, _ in recs])
        self._sim._schedule_cross(
            self.edge.dst_shard,
            train.arrivals_us[0],
            self._deliver_train,
            train,
        )


class BufferedChannel(Channel):
    """Multi-process outlet: pack records into the round's batch buffer.

    The worker loop drains :meth:`take` once per synchronisation round
    and ships the frame over the coordinator pipe with ``send_bytes``.
    """

    __slots__ = ("_records",)

    def __init__(self, edge: CutEdge):
        super().__init__(edge)
        self._records: List[bytes] = []

    def send_cell(self, ts: float, cell) -> None:
        self.cells_sent += 1
        self._records.append(encode_cell(ts, cell, _span_ctx()))

    def send_train(self, arrivals, cells) -> None:
        self.trains_sent += 1
        self.cells_sent += len(cells)
        self._records.append(encode_train(arrivals, cells, _span_ctx()))

    @property
    def pending(self) -> int:
        return len(self._records)

    def take(self) -> Optional[bytes]:
        """Drain buffered records into one framed batch (None if empty)."""
        if not self._records:
            return None
        blob = encode_batch(self.edge.edge_id, self._records)
        self._records = []
        return blob


class InletRegistry:
    """Destination-side delivery table: edge_id -> (cell sink, train sink).

    Workers (and the shards=1 baseline context) register where each
    incoming cut edge's traffic should be delivered; :meth:`inject`
    replays a decoded batch into the local simulator in deterministic
    order.
    """

    def __init__(self, sim):
        self._sim = sim
        self._sinks: Dict[int, Tuple[Callable, Optional[Callable]]] = {}

    def register(
        self,
        edge_id: int,
        deliver_cell: Callable,
        deliver_train: Optional[Callable] = None,
    ) -> None:
        if edge_id in self._sinks:
            raise ShardError(f"inlet for edge {edge_id} already registered")
        self._sinks[edge_id] = (deliver_cell, deliver_train)

    def registered(self, edge_id: int) -> bool:
        return edge_id in self._sinks

    def edge_ids(self) -> List[int]:
        return list(self._sinks)

    def cell_sink(self, edge_id: int) -> Callable:
        """Late-bound per-cell delivery target for ``edge_id``.

        Source-side channels are built before the destination island has
        registered its inlet (islands build in index order), so the sink
        is resolved per delivery, not at bind time.
        """
        sinks = self._sinks

        def deliver(cell):
            try:
                sinks[edge_id][0](cell)
            except KeyError:
                raise ShardError(
                    f"no inlet registered for cut edge {edge_id}"
                ) from None

        return deliver

    def train_sink(self, edge_id: int) -> Callable:
        """Late-bound train delivery target for ``edge_id``."""
        sinks = self._sinks

        def deliver(train):
            entry = sinks.get(edge_id)
            if entry is None:
                raise ShardError(
                    f"no inlet registered for cut edge {edge_id}"
                )
            deliver_cell, deliver_train = entry
            if deliver_train is not None:
                deliver_train(train)
            else:
                # Train-unaware destination: expand to per-cell delivery
                # at each cell's own analytic arrival (the first cell is
                # due now; later ones are still on the wire).
                schedule_at = self._sim.schedule_callback_at
                cells = train.cells
                arrivals = train.arrivals_us
                deliver_cell(cells[0])
                for i in range(1, len(cells)):
                    schedule_at(arrivals[i], deliver_cell, cells[i])

        return deliver

    def inject(self, edge_id: int, records) -> int:
        """Schedule decoded records; returns the number of heap entries.

        When span collection is armed, each record's span context (the
        sender's global span id) is adopted: a zero-length ``xshard``
        placeholder span becomes the scheduling parent of the delivery
        chain, and the coordinator's merger later re-parents the
        placeholder onto the real remote span.
        """
        from repro.atm.link import CellTrain

        try:
            deliver_cell, deliver_train = self._sinks[edge_id]
        except KeyError:
            raise ShardError(
                f"no inlet registered for cut edge {edge_id}"
            ) from None
        schedule_at = self._sim.schedule_callback_at
        _o = _obs.active
        n = 0
        for rec_type, recs in records:
            if rec_type == REC_TRAIN and deliver_train is not None and len(recs) > 1:
                train = CellTrain([c for _, c, _ in recs], [t for t, _, _ in recs])
                t0 = train.arrivals_us[0]
                gid = recs[0][2]
                if _o is not None and gid:
                    prev = _o.current
                    ph = _o.add_complete(t0, t0, "xshard", "xshard")
                    ph.attrs = {"xshard": gid, "edge": edge_id}
                    _o.current = ph
                    schedule_at(t0, deliver_train, train)
                    _o.current = prev
                else:
                    schedule_at(t0, deliver_train, train)
                n += 1
            else:
                for ts, cell, gid in recs:
                    if _o is not None and gid:
                        prev = _o.current
                        ph = _o.add_complete(ts, ts, "xshard", "xshard")
                        ph.attrs = {"xshard": gid, "edge": edge_id}
                        _o.current = ph
                        schedule_at(ts, deliver_cell, cell)
                        _o.current = prev
                    else:
                        schedule_at(ts, deliver_cell, cell)
                    n += 1
        return n
