"""Multi-process conservative coordinator (hub-and-spoke YAWNS).

One plain :class:`~repro.sim.engine.Simulator` per worker process, each
owning a contiguous block of the scenario's *islands* (sub-topologies);
cut edges between islands owned by different workers become
:class:`BufferedChannel` outlets whose struct-packed batches flow
through the coordinator.  Synchronisation is the classic synchronous
conservative window (the YAWNS variant of Chandy-Misra-Bryant, per the
distributed-OMNeT++ line of work in PAPERS.md):

1. **inject** — the coordinator forwards every in-flight batch to its
   destination worker (sorted by edge id: deterministic tie order).
2. **report** — each worker replies with its post-injection earliest
   pending timestamp ``next_w`` (its EOT promise is ``next_w + la_w``
   where ``la_w`` is the minimum lookahead over its cross-worker
   out-edges; ``la_w`` is static and reported once at READY).
3. **grant** — the coordinator computes the global safe window
   ``safe = min_w(next_w + la_w)`` and grants it to everyone.
4. **execute** — each worker runs all events with ``t <= safe``,
   draining its outlets, and reports the produced batches.

Safety: a message emitted by an event at ``t`` on worker ``w`` carries
a delivery timestamp ``>= t + la_w >= next_w + la_w >= safe``, so
nothing a window produces can land inside that same window — every
worker sees all messages with ``ts <= safe`` before executing past
them, and ``run(until=safe)`` is exactly the single-core execution of
that time range (DESIGN.md §8 gives the full derivation).  ``safe``
grants at least ``min_w next_w``, so every round makes progress; all
``next_w == inf`` with no batch in flight terminates the run.

The hub relays batches rather than meshing workers peer-to-peer: at
the shard counts this repo targets (2-16) the pipe hop is noise next
to window execution, and a single poll loop makes worker death
detection (:class:`ShardCrashError`, no hangs) trivial.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import struct
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs as _obs
from repro.obs import metrics as _metrics
from repro.sim import engine as _engine
from repro.sim.engine import Simulator
from repro.sim.shard.channel import (
    BufferedChannel,
    Channel,
    DirectChannel,
    InletRegistry,
    decode_batch,
)
from repro.sim.shard.errors import ShardCrashError, ShardError
from repro.sim.shard.plan import CutEdge, block_owner

_INF = float("inf")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

# Round metrics are wall-clock by nature (they measure the *host's*
# synchronisation cost, not simulated time).
_wall = time.perf_counter  # simlint: disable=wall-clock

# Message type bytes (worker <-> coordinator, all via send_bytes).
_MSG_READY = 0x59   # worker: b"Y" f64 la_min, u32 n_inlets, n * u32 edge_id
_MSG_NEXT = 0x4E    # worker: b"N" f64 next
_MSG_DONE = 0x44    # worker: b"D" f64 exec_wall_s, batches, u32 obs_len, obs
_MSG_RESULT = 0x52  # worker: b"R" pickled (result, events, obs)  (cold path)
_MSG_ERR = 0x45     # worker: b"E" pickled (reason, tb, dump_path)  (cold path)
_MSG_INJECT = 0x49  # parent: b"I" batches
_MSG_GRANT = 0x47   # parent: b"G" f64 safe
_MSG_FINISH = 0x46  # parent: b"F"


def _pack_batches(batches: Sequence[bytes]) -> bytes:
    parts = [_U32.pack(len(batches))]
    for blob in batches:
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def _unpack_batches(payload: bytes, offset: int) -> tuple:
    """Decode a batch frame; returns ``(batches, end_offset)`` so
    callers can keep parsing trailing fields (the DONE obs blob)."""
    (n,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    out = []
    for _ in range(n):
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        out.append(payload[offset : offset + length])
        offset += length
    return out, offset


# --------------------------------------------------------------------------
# The builder-facing context
# --------------------------------------------------------------------------

class ShardContext:
    """What an island builder sees, identical across execution modes.

    A scenario builder receives one context per island and uses only
    this surface for anything that crosses island boundaries:

    * :meth:`register_inlet` — where traffic arriving on a cut edge
      should be delivered locally;
    * :meth:`bind_cut` — turn a local :class:`~repro.atm.link.Link`
      whose far end lives on another island into a channel outlet.

    The same builder then runs unmodified single-process (baseline),
    inline-sharded (verification), or multi-process (parallel): only
    the channel flavour behind :meth:`bind_cut` changes.
    """

    def __init__(
        self,
        sim: Simulator,
        island: int,
        n_islands: int,
        shard: int,
        n_shards: int,
        registry: InletRegistry,
    ):
        self.sim = sim
        self.island = island
        self.n_islands = n_islands
        self.shard = shard
        self.n_shards = n_shards
        self.registry = registry

    def shard_of_island(self, island: int) -> int:
        return block_owner(island, self.n_islands, self.n_shards)

    def register_inlet(
        self,
        edge: CutEdge,
        deliver_cell: Callable,
        deliver_train: Optional[Callable] = None,
    ) -> None:
        self.registry.register(edge.edge_id, deliver_cell, deliver_train)

    def bind_cut(self, link, edge: CutEdge) -> Channel:
        channel = self._make_channel(edge)
        link.bind_cut(channel)
        return channel

    # mode-specific
    def _make_channel(self, edge: CutEdge) -> Channel:
        raise NotImplementedError


class _LocalContext(ShardContext):
    """Everything in one simulator: cuts degrade to direct scheduling."""

    def _make_channel(self, edge: CutEdge) -> Channel:
        return DirectChannel(
            edge,
            self.sim,
            self.registry.cell_sink(edge.edge_id),
            self.registry.train_sink(edge.edge_id),
        )


class _InlineContext(ShardContext):
    """In-process sharded simulator: cuts go through the codec + merge."""

    def _make_channel(self, edge: CutEdge) -> Channel:
        return self.sim.open_channel(
            edge,
            self.registry.cell_sink(edge.edge_id),
            self.registry.train_sink(edge.edge_id),
        )


class _WorkerContext(ShardContext):
    """One worker's view: co-owned edges stay direct, the rest buffer."""

    def __init__(self, *args, outlets: List[BufferedChannel]):
        super().__init__(*args)
        self._outlets = outlets

    def _make_channel(self, edge: CutEdge) -> Channel:
        if edge.dst_shard == self.shard:
            return DirectChannel(
                edge,
                self.sim,
                self.registry.cell_sink(edge.edge_id),
                self.registry.train_sink(edge.edge_id),
            )
        channel = BufferedChannel(edge)
        self._outlets.append(channel)
        return channel


# --------------------------------------------------------------------------
# Single-process execution (baseline + inline verification)
# --------------------------------------------------------------------------

def _run_single(
    build_island: Callable,
    n_islands: int,
    n_shards: int,
    spec: Any,
    inline: bool,
) -> Dict[int, Any]:
    if inline:
        from repro.sim.shard.sharded import ShardedSimulator

        sim = ShardedSimulator(n_shards)
    else:
        with _engine.use_shards(1):
            sim = Simulator()
    registry = InletRegistry(sim)
    cls = _InlineContext if inline else _LocalContext
    finalizers = {}
    for island in range(n_islands):
        shard = block_owner(island, n_islands, n_shards) if inline else 0
        ctx = cls(sim, island, n_islands, shard, n_shards, registry)
        if inline:
            with sim.shard_scope(shard):
                finalizers[island] = build_island(ctx, island, spec)
        else:
            finalizers[island] = build_island(ctx, island, spec)
    sim.run()
    results: Dict[int, Any] = {island: fin() for island, fin in finalizers.items()}
    results["__coordinator__"] = {
        "rounds": 0,
        "shards": n_shards if inline else 1,
        "mode": "inline" if inline else "local",
        "events": sim.events_processed,
    }
    return results


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------

def _worker_main(
    conn,
    build_island: Callable,
    islands: Sequence[int],
    shard: int,
    n_islands: int,
    n_shards: int,
    spec: Any,
) -> None:
    try:
        # Forked workers inherit the parent's armed obs state: the same
        # collector object (now process-private) keeps accumulating, so
        # the monitored engine and every model-layer guard keep working
        # untouched.  Reset the per-run accumulators so only *worker*
        # data ships back, and stamp the shard every span will carry.
        col = _obs.active
        span_base = 0
        if col is not None:
            col.shard = shard
            col.current = None
            col.counters.clear()
            col.samples = []
            span_base = len(col.spans)
        if _metrics.active is not None:
            _metrics.active = _metrics.MetricsRegistry()

        # The worker's own simulator is a plain single timeline no
        # matter what REPRO_SIM_SHARDS says in the parent environment.
        with _engine.use_shards(1):
            sim = Simulator()
        registry = InletRegistry(sim)
        outlets: List[BufferedChannel] = []
        finalizers = {}
        for island in islands:
            ctx = _WorkerContext(
                sim, island, n_islands, shard, n_shards, registry,
                outlets=outlets,
            )
            finalizers[island] = build_island(ctx, island, spec)

        la_min = min(
            (ch.edge.lookahead_us for ch in outlets), default=_INF
        )
        inlet_ids = sorted(registry.edge_ids())
        ready = bytearray()
        ready.append(_MSG_READY)
        ready += _F64.pack(la_min)
        ready += _U32.pack(len(inlet_ids))
        for eid in inlet_ids:
            ready += _U32.pack(eid)
        conn.send_bytes(bytes(ready))

        while True:
            msg = conn.recv_bytes()
            kind = msg[0]
            if kind == _MSG_INJECT:
                blobs, _ = _unpack_batches(msg, 1)
                for blob in blobs:
                    edge_id, records = decode_batch(blob)
                    registry.inject(edge_id, records)
                conn.send_bytes(bytes([_MSG_NEXT]) + _F64.pack(sim.peek()))
            elif kind == _MSG_GRANT:
                (safe,) = _F64.unpack_from(msg, 1)
                t0_wall = _wall()
                sim.run(until=None if safe == _INF else safe)
                exec_wall = _wall() - t0_wall
                batches = []
                for ch in outlets:
                    blob = ch.take()
                    if blob is not None:
                        batches.append(blob)
                done = bytearray([_MSG_DONE])
                done += _F64.pack(exec_wall)
                done += _pack_batches(batches)
                # Ship the round's completed spans to the coordinator so
                # the merged timeline grows at round boundaries rather
                # than as one giant blob at FINISH.
                if col is not None and len(col.spans) > span_base:
                    ship = [s.to_dict() for s in col.spans[span_base:]]
                    span_base = len(col.spans)
                    blob = pickle.dumps(ship, protocol=4)
                    done += _U32.pack(len(blob))
                    done += blob
                else:
                    done += _U32.pack(0)
                conn.send_bytes(bytes(done))
            elif kind == _MSG_FINISH:
                result = {island: fin() for island, fin in finalizers.items()}
                obs_tail = None
                if col is not None:
                    _m = _metrics.active
                    obs_tail = {
                        "shard": shard,
                        "spans": [s.to_dict() for s in col.spans[span_base:]],
                        "counters": dict(col.counters),
                        "samples": list(col.samples),
                        "metrics": _m.to_state() if _m is not None else None,
                    }
                conn.send_bytes(
                    bytes([_MSG_RESULT])
                    + pickle.dumps(
                        (result, sim.events_processed, obs_tail), protocol=4
                    )
                )
                return
            else:  # pragma: no cover - protocol bug
                raise ShardError(f"worker got unknown message {kind:#x}")
    except BaseException as exc:  # surface, don't hang the coordinator
        # Post-mortem: dump the flight-recorder ring (when armed) so the
        # coordinator can hand the user a Perfetto trace of the last
        # spans this shard executed before dying.
        dump_path = ""
        col = _obs.active
        if col is not None and col.flight is not None:
            dump_path = col.flight.dump_on_trip(repr(exc), shard=shard)
        try:
            conn.send_bytes(
                bytes([_MSG_ERR])
                + pickle.dumps(
                    (repr(exc), traceback.format_exc(), dump_path), protocol=4
                )
            )
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        os._exit(1)


# --------------------------------------------------------------------------
# Coordinator side
# --------------------------------------------------------------------------

class _WorkerHandle:
    def __init__(self, shard: int, proc, conn):
        self.shard = shard
        self.proc = proc
        self.conn = conn
        self.la = _INF
        self.next = 0.0
        self.pending: List[bytes] = []


def _recv(handle: _WorkerHandle, timeout_s: float) -> bytes:
    """One message from a worker, or a typed crash — never a hang."""
    deadline_steps = max(1, int(timeout_s / 0.05))
    for _ in range(deadline_steps):
        if handle.conn.poll(0.05):
            try:
                return handle.conn.recv_bytes()
            except (EOFError, OSError) as exc:
                raise ShardCrashError(
                    handle.shard, f"pipe closed mid-protocol ({exc!r})"
                ) from exc
        if not handle.proc.is_alive():
            # Drain any parting words before declaring the crash.
            if handle.conn.poll(0):
                try:
                    return handle.conn.recv_bytes()
                except (EOFError, OSError):
                    pass
            raise ShardCrashError(
                handle.shard,
                f"worker process died (exitcode={handle.proc.exitcode})",
            )
    raise ShardCrashError(
        handle.shard, f"no protocol message within {timeout_s:.0f}s"
    )


def _expect(handle: _WorkerHandle, kind: int, timeout_s: float) -> bytes:
    msg = _recv(handle, timeout_s)
    if msg[0] == _MSG_ERR:
        payload = pickle.loads(msg[1:])
        reason, tb = payload[0], payload[1]
        dump_path = payload[2] if len(payload) > 2 else ""
        raise ShardCrashError(
            handle.shard, reason, remote_traceback=tb, dump_path=dump_path
        )
    if msg[0] != kind:
        raise ShardCrashError(
            handle.shard,
            f"protocol violation: expected {kind:#x}, got {msg[0]:#x}",
        )
    return msg


def run_partitioned(
    build_island: Callable,
    n_islands: int,
    n_shards: int,
    spec: Any = None,
    mode: str = "auto",
    timeout_s: float = 120.0,
) -> Dict[int, Any]:
    """Run a partitioned scenario; returns ``{island: finalize()}``.

    ``build_island(ctx, island, spec)`` constructs one island inside
    ``ctx.sim`` and returns a zero-argument finalizer producing that
    island's metrics once the simulation has fully drained.  Modes:

    * ``local`` — one plain simulator, cuts direct (the baseline; also
      what ``n_shards == 1`` collapses to under ``auto``);
    * ``inline`` — one in-process :class:`ShardedSimulator`, cuts
      through the codec (verification);
    * ``mp`` — one worker process per shard, conservative windows
      (``auto`` for ``n_shards > 1``).

    All three produce identical metrics; the A/B tests enforce it.
    """
    if mode not in ("auto", "local", "inline", "mp"):
        raise ValueError(f"unknown mode {mode!r}")
    if n_islands < 1:
        raise ValueError("need at least one island")
    if not 1 <= n_shards <= n_islands:
        raise ValueError(
            f"shard count must be in 1..{n_islands}, got {n_shards}"
        )
    if mode == "auto":
        mode = "local" if n_shards == 1 else "mp"
    if mode == "local":
        return _run_single(build_island, n_islands, 1, spec, inline=False)
    if mode == "inline":
        return _run_single(build_island, n_islands, n_shards, spec, inline=True)

    ctx = mp.get_context("fork")
    owned: Dict[int, List[int]] = {w: [] for w in range(n_shards)}
    for island in range(n_islands):
        owned[block_owner(island, n_islands, n_shards)].append(island)

    handles: List[_WorkerHandle] = []
    try:
        for w in range(n_shards):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn, build_island, owned[w], w,
                    n_islands, n_shards, spec,
                ),
                name=f"repro-shard-{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            handles.append(_WorkerHandle(w, proc, parent_conn))

        # READY: collect static lookaheads and the inlet ownership map.
        edge_owner: Dict[int, int] = {}
        for h in handles:
            msg = _expect(h, _MSG_READY, timeout_s)
            (h.la,) = _F64.unpack_from(msg, 1)
            (n_inlets,) = _U32.unpack_from(msg, 9)
            off = 9 + _U32.size
            for _ in range(n_inlets):
                (eid,) = _U32.unpack_from(msg, off)
                off += _U32.size
                if eid in edge_owner:
                    raise ShardError(
                        f"cut edge {eid} registered by both shard "
                        f"{edge_owner[eid]} and shard {h.shard}"
                    )
                edge_owner[eid] = h.shard

        # Cross-shard trace stitching: when obs is armed in the parent,
        # workers ship their spans at round boundaries and the merger
        # rebases them into the parent collector as they land.
        col = _obs.active
        merger = _obs.SpanMerger(col) if col is not None else None

        # Coordinator round metrics (always on: a handful of floats per
        # round).  ``stall_s[w]`` is barrier time — how long shard w's
        # round lasted beyond its own execution, i.e. waiting for the
        # slowest sibling plus pipe/coordinator overhead.
        safe_widths: List[float] = []
        null_grants = [0] * n_shards
        null_injects = [0] * n_shards
        exec_wall_s = [0.0] * n_shards
        stall_s = [0.0] * n_shards
        grant_wait_s = 0.0
        batches_routed = 0
        loop_t0 = _wall()

        rounds = 0
        while True:
            # Phase A: inject in-flight batches, collect true nexts.
            phase_a_t0 = _wall()
            for h in handles:
                if not h.pending:
                    null_injects[h.shard] += 1
                h.pending.sort(key=lambda blob: _U32.unpack_from(blob, 0)[0])
                h.conn.send_bytes(
                    bytes([_MSG_INJECT]) + _pack_batches(h.pending)
                )
                h.pending = []
            for h in handles:
                msg = _expect(h, _MSG_NEXT, timeout_s)
                (h.next,) = _F64.unpack_from(msg, 1)
            grant_wait_s += _wall() - phase_a_t0

            safe = min(
                (h.next + h.la for h in handles), default=_INF
            )
            if all(h.next == _INF for h in handles):
                break
            window_start = min(h.next for h in handles)
            if safe != _INF:
                # ``next + la`` and the sender's own timestamp arithmetic
                # round differently, so an emission can undershoot ``safe``
                # by a few ULPs.  Shave a margin far below any physical
                # lookahead but far above ULP noise; clamping at the
                # earliest pending event keeps every round productive.
                # Window placement only affects batching, never event
                # timestamps, so this cannot perturb results.
                margin = max(1e-9, abs(safe) * 1e-12)
                safe = max(safe - margin, window_start)
                safe_widths.append(safe - window_start)

            # Phase B: grant the window, collect produced batches.
            rounds += 1
            round_t0 = _wall()
            round_exec = [0.0] * n_shards
            for h in handles:
                if h.next > safe:
                    null_grants[h.shard] += 1
                h.conn.send_bytes(bytes([_MSG_GRANT]) + _F64.pack(safe))
            for h in handles:
                msg = _expect(h, _MSG_DONE, timeout_s)
                (worker_exec,) = _F64.unpack_from(msg, 1)
                round_exec[h.shard] = worker_exec
                exec_wall_s[h.shard] += worker_exec
                blobs, off = _unpack_batches(msg, 9)
                for blob in blobs:
                    (eid,) = _U32.unpack_from(blob, 0)
                    try:
                        dest = edge_owner[eid]
                    except KeyError:
                        raise ShardError(
                            f"shard {h.shard} emitted a batch for cut edge "
                            f"{eid}, which no worker registered an inlet for"
                        ) from None
                    handles[dest].pending.append(blob)
                    batches_routed += 1
                (obs_len,) = _U32.unpack_from(msg, off)
                if obs_len and merger is not None:
                    merger.merge(
                        h.shard,
                        pickle.loads(msg[off + _U32.size : off + _U32.size + obs_len]),
                    )
            round_wall = _wall() - round_t0
            for w in range(n_shards):
                stall_s[w] += max(0.0, round_wall - round_exec[w])

        results: Dict[int, Any] = {}
        events = 0
        for h in handles:
            h.conn.send_bytes(bytes([_MSG_FINISH]))
        for h in handles:
            msg = _expect(h, _MSG_RESULT, timeout_s)
            part, worker_events, obs_tail = pickle.loads(msg[1:])
            results.update(part)
            events += worker_events
            if obs_tail is not None and col is not None:
                merger.merge(h.shard, obs_tail["spans"])
                col.counters.update(obs_tail["counters"])
                col.samples.extend(
                    tuple(s) for s in obs_tail["samples"]
                )
                _m = _metrics.active
                if obs_tail["metrics"] is not None and _m is not None:
                    _m.merge_state(obs_tail["metrics"])
        loop_wall = _wall() - loop_t0
        unresolved = merger.link() if merger is not None else 0
        for h in handles:
            h.proc.join(timeout=10.0)

        exec_total = sum(exec_wall_s)
        coord = {
            "rounds": rounds,
            "shards": n_shards,
            "mode": "mp",
            "events": events,
        }
        coord["obs"] = {
            "safe_window_us": {
                "count": len(safe_widths),
                "min": min(safe_widths) if safe_widths else 0.0,
                "max": max(safe_widths) if safe_widths else 0.0,
                "mean": (
                    sum(safe_widths) / len(safe_widths) if safe_widths else 0.0
                ),
            },
            "grant_wait_s": grant_wait_s,
            "null_grants": null_grants,
            "null_injects": null_injects,
            "exec_wall_s": exec_wall_s,
            "stall_s": stall_s,
            "batches_routed": batches_routed,
            "spans_merged": merger.merged if merger is not None else 0,
            "xshard_unresolved": unresolved,
            "efficiency": {
                "loop_wall_s": loop_wall,
                "exec_wall_s_total": exec_total,
                # Fraction of the coordinator loop's worker-seconds that
                # went into simulation; the rest is barrier stall + sync.
                "parallel_efficiency": (
                    exec_total / (n_shards * loop_wall) if loop_wall > 0 else 0.0
                ),
                "bottleneck_shard": (
                    max(range(n_shards), key=lambda w: exec_wall_s[w])
                    if n_shards else 0
                ),
            },
        }
        results["__coordinator__"] = coord
        return results
    finally:
        for h in handles:
            if h.proc.is_alive():
                h.proc.terminate()
                h.proc.join(timeout=5.0)
            h.conn.close()
