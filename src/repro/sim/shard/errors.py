"""Typed failures of the sharded engine.

Everything raised by :mod:`repro.sim.shard` derives from
:class:`ShardError` so callers can catch the whole family; the two
subclasses distinguish the failures that need different handling
(a dead worker vs. a partitioning bug in model code).
"""

from __future__ import annotations


class ShardError(RuntimeError):
    """Base class for sharded-engine failures (bad plan, protocol misuse)."""


class ShardCrashError(ShardError):
    """A worker process died or errored; carries the shard and cause.

    The coordinator raises this instead of hanging: worker tracebacks
    are captured in ``remote_traceback`` and every surviving worker is
    torn down first.  When the obs flight recorder was armed in the
    dying worker, ``dump_path`` names the Perfetto post-mortem dump of
    the last spans it executed ("" otherwise).
    """

    def __init__(
        self,
        shard: int,
        reason: str,
        remote_traceback: str = "",
        dump_path: str = "",
    ):
        self.shard = shard
        self.reason = reason
        self.remote_traceback = remote_traceback
        self.dump_path = dump_path
        detail = f"\n--- shard {shard} traceback ---\n{remote_traceback}" if (
            remote_traceback
        ) else ""
        if dump_path:
            detail += f"\n--- flight recorder dump: {dump_path} ---"
        super().__init__(f"shard {shard} failed: {reason}{detail}")


class CrossShardAccessError(ShardError):
    """Direct attribute access on an object owned by another shard.

    Anything reached through a cut-edge proxy (``link.remote_peer``)
    lives in a different timeline — possibly a different OS process —
    and must be reached through the channel API, never by attribute
    access.  The ``cross-shard-state`` simlint rule flags this
    statically; this exception is the runtime backstop.
    """
