"""Shard partitioning: who owns what, and where the cut runs.

A :class:`ShardPlan` records two things about a sharded run:

* the *ownership map* — which shard owns each named simulation object
  (hosts and their NIs follow their network port; the switch of a star
  sits on shard 0).  Block partitioning keeps neighbouring ports on the
  same shard, which minimises the cut for the locality-heavy traffic
  the figures generate (the SSF netsim alignment discipline).
* the *cut registry* — every link whose two endpoints live on different
  shards, with its conservative **lookahead**: a lower bound on the gap
  between the event that emits a message into the edge and the
  timestamp of its delivery on the far side.  The coordinator's safe
  window is `min over shards of (earliest pending + min outgoing
  lookahead)` (DESIGN.md §8); a larger lookahead means wider windows
  and fewer synchronisation rounds, a *wrong* (too large) lookahead
  means causality violations — so edges register the bound their link
  model actually guarantees and the channels assert it on every send.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.shard.errors import ShardError


def block_owner(index: int, n_items: int, n_shards: int) -> int:
    """Owner shard of ``index`` under contiguous block partitioning.

    The first ``n_items % n_shards`` shards receive one extra item, and
    blocks are contiguous: item ``i`` maps to ``i * n_shards // n_items``.
    """
    if not 0 <= index < n_items:
        raise ValueError(f"index {index} out of range (0..{n_items - 1})")
    return index * n_shards // n_items


@dataclass(frozen=True)
class CutEdge:
    """One unidirectional link crossing the shard cut."""

    edge_id: int
    name: str
    src_shard: int
    dst_shard: int
    #: Guaranteed minimum gap (µs) between the emitting event and the
    #: delivery timestamp it produces.  For an analytic fast-path link
    #: this is serialization + propagation; for a per-cell (lossy) link
    #: only the propagation delay survives (the serialization end is
    #: itself an event).  See the derivation in DESIGN.md §8.
    lookahead_us: float


class ShardPlan:
    """Ownership map plus cut-edge registry for one sharded topology."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self._owners: Dict[str, int] = {}
        self._edges: List[CutEdge] = []
        self._by_name: Dict[str, CutEdge] = {}

    # -- ownership ------------------------------------------------------
    def assign(self, name: str, shard: int) -> int:
        """Record that ``name`` (a host, NI, switch...) lives on ``shard``."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard {shard} out of range (0..{self.n_shards - 1})"
            )
        prev = self._owners.get(name)
        if prev is not None and prev != shard:
            raise ShardError(
                f"{name!r} already assigned to shard {prev}, "
                f"cannot move it to shard {shard}"
            )
        self._owners[name] = shard
        return shard

    def owner(self, name: str) -> int:
        try:
            return self._owners[name]
        except KeyError:
            raise ShardError(f"{name!r} is not assigned to any shard") from None

    def owns(self, shard: int, name: str) -> bool:
        return self._owners.get(name) == shard

    @property
    def assignments(self) -> Dict[str, int]:
        return dict(self._owners)

    # -- the cut --------------------------------------------------------
    def add_edge(
        self, name: str, src_shard: int, dst_shard: int, lookahead_us: float
    ) -> CutEdge:
        """Register a cut-crossing link; returns its :class:`CutEdge`.

        ``lookahead_us`` must be the bound the link model *guarantees*,
        not a tuning knob: channels assert it per message and the mp
        coordinator builds safe windows from it.
        """
        for shard, role in ((src_shard, "src"), (dst_shard, "dst")):
            if not 0 <= shard < self.n_shards:
                raise ValueError(
                    f"{role} shard {shard} out of range "
                    f"(0..{self.n_shards - 1})"
                )
        if lookahead_us < 0:
            raise ValueError(f"negative lookahead: {lookahead_us}")
        if name in self._by_name:
            raise ShardError(f"cut edge {name!r} already registered")
        edge = CutEdge(len(self._edges), name, src_shard, dst_shard, lookahead_us)
        self._edges.append(edge)
        self._by_name[name] = edge
        return edge

    @property
    def edges(self) -> List[CutEdge]:
        return list(self._edges)

    def edge(self, edge_id: int) -> CutEdge:
        return self._edges[edge_id]

    def edge_named(self, name: str) -> CutEdge:
        return self._by_name[name]

    def min_outgoing_lookahead(self, shard: int) -> float:
        """Smallest lookahead over edges leaving ``shard`` (inf if none).

        This is the term the shard contributes to the global safe
        window: nothing it still holds can affect another shard sooner
        than ``earliest pending + this``.
        """
        best = float("inf")
        for e in self._edges:
            if e.src_shard == shard and e.lookahead_us < best:
                best = e.lookahead_us
        return best

    def describe(self) -> Dict[str, object]:
        """Summary used by tests and the bench report."""
        loads: Dict[int, int] = {s: 0 for s in range(self.n_shards)}
        for shard in self._owners.values():
            loads[shard] += 1
        return {
            "n_shards": self.n_shards,
            "owned_per_shard": [loads[s] for s in range(self.n_shards)],
            "cut_edges": len(self._edges),
            "min_lookahead_us": min(
                (e.lookahead_us for e in self._edges), default=float("inf")
            ),
        }
