"""Blocking FIFO stores and counted resources for simulated processes."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim import engine as _engine
from repro.sim.engine import Event, SimulationError, Simulator


class Store:
    """A FIFO channel between processes.

    ``put`` blocks while the store is at ``capacity``; ``get`` blocks while
    it is empty.  Both return events to be yielded from a process.  The
    non-blocking variants ``try_put``/``try_get`` never block and report
    success explicitly; they are what NI hardware models use for queues
    that *drop* on overflow instead of exerting back-pressure.
    """

    __slots__ = ("sim", "capacity", "name", "items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> Event:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"store:{self.name}", "w")
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"store:{self.name}", "w")
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._drain_putters()
        elif self._putters:
            putter, item = self._putters.popleft()
            putter.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False (drop) when full."""
        if _engine.access_hook is not None:
            _engine.access_hook(
                id(self), f"store:{self.name}", "r" if self.is_full else "w"
            )
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if len(self.items) < self.capacity:
            self.items.append(item)
            return True
        return False

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns None when empty."""
        if _engine.access_hook is not None:
            _engine.access_hook(
                id(self), f"store:{self.name}",
                "w" if (self.items or self._putters) else "r",
            )
        if self.items:
            item = self.items.popleft()
            self._drain_putters()
            return item
        if self._putters:
            putter, item = self._putters.popleft()
            putter.succeed()
            return item
        return None

    def _drain_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter.succeed()


class Resource:
    """A counted resource (CPU, DMA engine, bus) with FIFO queueing.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(cost)
        finally:
            resource.release(req)
    """

    __slots__ = ("sim", "capacity", "name", "_in_use", "_queue", "_seq")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: List[tuple] = []  # heap of (priority, seq, event)
        self._seq = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self, priority: int = 0) -> Event:
        """Request the resource; lower ``priority`` values are served
        first (interrupt-level work preempts queued process-level work,
        though never a holder mid-use)."""
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"res:{self.name}", "w")
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._seq += 1
            heapq.heappush(self._queue, (priority, self._seq, event))
        return event

    def release(self, request: Event) -> None:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"res:{self.name}", "w")
        if not request.triggered:
            # The request never got the resource; just remove it.
            entries = [e for e in self._queue if e[2] is not request]
            if len(entries) == len(self._queue):
                raise SimulationError("releasing a request that was never made")
            self._queue = entries
            heapq.heapify(self._queue)
            request.succeed()  # unblock any waiter, resource not held
            return
        self._release_held()

    def _release_held(self) -> None:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"res:{self.name}", "w")
        if self._in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        if self._queue:
            _, _, event = heapq.heappop(self._queue)
            event.succeed()
        else:
            self._in_use -= 1

    def use(self, duration: float, priority: int = 0):
        """Generator helper: hold the resource for ``duration``.

        When the resource is free the request phase is skipped entirely
        (it would succeed at the current instant anyway): one timeout is
        the only scheduled occurrence.  Contended acquisitions take the
        full FIFO request path."""
        if self._in_use < self.capacity and not self._queue:
            if _engine.access_hook is not None:
                _engine.access_hook(id(self), f"res:{self.name}", "w")
            self._in_use += 1
            try:
                yield self.sim.timeout(duration)
            finally:
                self._release_held()
        else:
            request = self.request(priority)
            yield request
            try:
                yield self.sim.timeout(duration)
            finally:
                self.release(request)
