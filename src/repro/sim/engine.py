"""Core event loop: events, timeouts, processes, and condition events.

Simulated time is a float in microseconds.  All scheduling is
deterministic: events scheduled for the same instant fire in the order
they were scheduled (a monotonically increasing sequence number breaks
ties).

Scheduler v2 (the "calendar" core).  The flat binary heap of the seed
engine is replaced by a three-tier calendar queue:

* **front slot** — the imminent entry is held in plain closure cells
  (when/seq/kind/fn/args) outside any container.  Model code dominated
  by schedule-one-pop-one chains (link deliveries, firmware polls)
  never touches the heap at all: scheduling into an empty front slot is
  five cell stores, popping it is five cell reads.
* **near heap** — entries inside the current horizon window go to a
  classic ``heapq`` binary heap (C-implemented; at the depths this
  repo's models produce it beats a bucketed ring, which is why the
  "ring of time buckets" degenerates to one sorted bucket plus the
  front slot — see DESIGN.md §5 for the measurements).
* **far list** — entries at or beyond the horizon are *appended
  unsorted* (O(1)) to an overflow list and only organized (promoted
  into the near heap) when simulated time reaches them.  Protocol
  timers milliseconds out (TCP RTO/delayed-ACK) therefore never churn
  the near heap.  The horizon window adapts: when a promotion drains
  the far list entirely the window doubles, so the split tracks the
  observed event horizon of the workload.

Entries are uniform 5-tuples ``(when, seq, kind, a, b)`` where ``kind``
discriminates the payload::

    (when, seq, None,  fn, args)     # a scheduled callback
    (when, seq, False, handle, None) # a pooled timer (cancellable)
    (when, seq, event, None, None)   # a triggered Event

``seq`` is unique, so tuple comparison never reaches the third element
and the shapes coexist safely.  Timers are :class:`TimerHandle` objects
drawn from a per-simulator free list: ``schedule_timer`` returns a
handle whose ``cancel()`` is O(1) (a flag write — no tombstone event,
no heap surgery); the entry is discarded and the handle recycled when
its timestamp is reached.

The observable contract of the seed engine is preserved exactly: same
``(time, seq)`` total order (A/B-tested against the seed heap, kept
available as the ``heap`` core), same error behaviour, same
``events_processed`` accounting, and an unchanged
``_MonitoredSimulator`` so REPRO_RACE / REPRO_OBS instrumentation keep
working.  Select the reference core with ``REPRO_SIM_CORE=heap`` or
:func:`set_core`.

The callback/timer/event dispatch logic — drifted-by-copy between the
base and monitored run loops in earlier revisions — is rendered from
the single ``_DISPATCH_TEMPLATE`` below into every loop body at import
time, so the cores cannot diverge again.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim import batch as _batch

#: Schedule-order instrumentation (installed by :mod:`repro.analysis.race`).
#: ``_monitor_factory`` builds one ShadowScheduler monitor per Simulator
#: created while armed; ``access_hook`` is called by state objects
#: (segments, rings, resources, links) on reads/writes so the race
#: detector can attribute accesses to the executing heap entry.  Both are
#: ``None`` in normal operation: unmonitored simulators carry ``self._mon
#: = None`` and the hot run loop is entirely untouched.
_monitor_factory: Optional[Callable[[], Any]] = None
access_hook: Optional[Callable[[int, str, str], None]] = None
#: True when the installed monitor can follow the in-process sharded
#: engine's multiple timelines (it exposes ``shard_view(k)`` — the obs
#: span monitor does; the race detector's shadow scheduler does not, so
#: race-monitored runs keep collapsing to one single-heap timeline).
_monitor_shard_aware: bool = False


def set_instrumentation(
    monitor_factory: Optional[Callable[[], Any]],
    access: Optional[Callable[[int, str, str], None]] = None,
    shard_aware: bool = False,
) -> None:
    """Install (or clear, with ``None``) the schedule-order monitor
    factory and the state-access hook.  Only simulators constructed
    while a factory is installed are monitored.  ``shard_aware``
    declares that the monitor supports per-shard views, letting
    ``REPRO_SIM_SHARDS > 1`` keep the sharded engine instead of
    collapsing to the single monitored timeline."""
    global _monitor_factory, access_hook, _monitor_shard_aware
    _monitor_factory = monitor_factory
    access_hook = access
    _monitor_shard_aware = shard_aware if monitor_factory is not None else False


def _batch_active() -> bool:
    """Should a run starting now use the batched calendar loops?

    Armed instrumentation (REPRO_RACE / REPRO_OBS monitors or the state
    access hook) observes individual schedule entries, so it vetoes
    batching before the :mod:`repro.sim.batch` policy is even asked."""
    if _monitor_factory is not None or access_hook is not None:
        return False
    return _batch.runtime_active()


#: Version tag of the ``snapshot()``/``restore()`` blob layout.  Bumped
#: whenever the entry encoding or the dict shape changes; checkpoint
#: cache keys incorporate it so stale blobs can never be replayed.
SNAPSHOT_SCHEMA = 1


def _check_snapshot_schema(state: Any) -> None:
    got = state.get("schema") if isinstance(state, dict) else None
    if got != SNAPSHOT_SCHEMA:
        raise SimulationError(
            f"snapshot schema mismatch: blob says {got!r}, this engine "
            f"speaks {SNAPSHOT_SCHEMA} (regenerate the checkpoint)"
        )


_SNAPSHOT_EVENT_MSG = (
    "snapshot(): the schedule holds pending Event entries (processes, "
    "timeouts, store handshakes); in-process checkpointing covers "
    "callback/timer worlds only — process worlds checkpoint via "
    "repro.bench.checkpoint's fork-based sweeps"
)


#: Available scheduler cores.  ``calendar`` is the v2 default; ``heap``
#: is the seed binary-heap engine, kept selectable as the A/B reference.
CORES = ("calendar", "heap")

_core = os.environ.get("REPRO_SIM_CORE", "calendar")
if _core not in CORES:  # pragma: no cover - env misuse
    raise ValueError(f"REPRO_SIM_CORE must be one of {CORES}, got {_core!r}")

#: Number of shard timelines new simulators partition their schedule
#: across.  1 (the default) constructs the plain single-timeline engine
#: — byte-identical code path to previous releases.  N > 1 routes
#: construction to :class:`repro.sim.shard.ShardedSimulator`, the
#: multi-timeline core with deterministic cross-shard merging (see
#: DESIGN.md §8).  Instrumentation (REPRO_RACE / REPRO_OBS) wins over
#: sharding: monitored runs always use the single heap timeline.
_shards = int(os.environ.get("REPRO_SIM_SHARDS", "1"))
if _shards < 1:  # pragma: no cover - env misuse
    raise ValueError(f"REPRO_SIM_SHARDS must be >= 1, got {_shards}")


def set_shards(n: int) -> None:
    """Select the shard count for subsequently constructed simulators.

    ``1`` restores the plain single-timeline engine.  Existing
    simulators are unaffected."""
    global _shards
    if not isinstance(n, int) or n < 1:
        raise ValueError(f"shard count must be a positive integer, got {n!r}")
    _shards = n


def shard_count() -> int:
    """Shard count new simulators will be built with."""
    return _shards


class use_shards:
    """Context manager: construct simulators with ``n`` shard timelines.

    >>> with use_shards(4):
    ...     sim = Simulator()   # 4-timeline sharded engine
    """

    def __init__(self, n: int):
        if not isinstance(n, int) or n < 1:
            raise ValueError(f"shard count must be a positive integer, got {n!r}")
        self._n = n
        self._saved: Optional[int] = None

    def __enter__(self) -> "use_shards":
        self._saved = _shards
        set_shards(self._n)
        return self

    def __exit__(self, *exc: Any) -> None:
        set_shards(self._saved or 1)


def set_core(name: str) -> None:
    """Select the scheduler core used by subsequently constructed
    simulators (``calendar`` or ``heap``).  Existing simulators are
    unaffected; monitored simulators always use the heap discipline."""
    global _core
    if name not in CORES:
        raise ValueError(f"unknown scheduler core {name!r}; choose from {CORES}")
    _core = name


def current_core() -> str:
    """Name of the core new simulators will use."""
    return _core


class use_core:
    """Context manager: run a block under a specific scheduler core.

    >>> with use_core("heap"):
    ...     sim = Simulator()   # seed binary-heap engine
    """

    def __init__(self, name: str):
        if name not in CORES:
            raise ValueError(f"unknown scheduler core {name!r}; choose from {CORES}")
        self._name = name
        self._saved: Optional[str] = None

    def __enter__(self) -> "use_core":
        self._saved = _core
        set_core(self._name)
        return self

    def __exit__(self, *exc: Any) -> None:
        set_core(self._saved or "calendar")


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (double-trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, and runs its callbacks when the simulator
    pops it off the schedule.  Events may only trigger once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    #: Class-level default; only :class:`_InterruptEvent` overrides it.
    _interrupting = False

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(
                f"cannot trigger {delay} us into the past "
                f"(causality violation at t={self.sim._now})"
            )
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every waiting process.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if delay < 0:
            raise SimulationError(
                f"cannot trigger {delay} us into the past "
                f"(causality violation at t={self.sim._now})"
            )
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    # Field init is flattened (no super().__init__ call): Timeout is the
    # single hottest Event subclass in process-based models.
    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay)


class _Initialize(Event):
    """Internal event used to kick off a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        self.sim = sim
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._defused = False
        sim._schedule(self, 0.0)


class _InterruptEvent(Event):
    """The failed event delivering an :class:`Interrupt` to a process."""

    __slots__ = ()

    _interrupting = True


class Process(Event):
    """A running generator; doubles as the event of its own termination.

    The generator yields :class:`Event` instances.  When the yielded
    event triggers, the process resumes with the event's value (or the
    exception, if the event failed).
    """

    __slots__ = ("_generator", "name", "_target", "_send", "_throw")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        # Bound send/throw cached: _resume is the single hottest method
        # in process-based models (one call per resumption).
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._ok is not None:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        event = _InterruptEvent(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.sim._schedule(event, 0.0)

    def _resume(self, event: Event) -> None:
        if self._ok is not None:
            # An interrupt can race with normal termination; it is void
            # once the process has finished.
            if event._interrupting:
                event._defused = True
            return
        self._target = None
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                # Defuse: the waiting process handles the failure.
                event._defused = True
                next_event = self._throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
            try:
                self._throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc2:
                self.fail(exc2)
            return
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current time.
            stub = Event(self.sim)
            stub._ok = next_event._ok
            stub._value = next_event._value
            stub.callbacks.append(self._resume)
            self.sim._schedule(stub, 0.0)
        else:
            next_event.callbacks.append(self._resume)


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.events and self._ok is None:
            self.succeed({})

    def _satisfied(self, n_done: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count):
            # Report only events that actually fired (were processed) by
            # the time the condition was met.
            self.succeed(
                {
                    e: e._value
                    for e in self.events
                    if (e.processed or e is event) and e._ok
                }
            )


class AnyOf(_Condition):
    """Triggers when the first of ``events`` triggers."""

    __slots__ = ()

    def _satisfied(self, n_done: int) -> bool:
        return n_done >= 1


class AllOf(_Condition):
    """Triggers when all of ``events`` have triggered."""

    __slots__ = ()

    def _satisfied(self, n_done: int) -> bool:
        return n_done == len(self.events)


class TimerHandle:
    """A cancellable, pooled timer returned by ``schedule_timer``.

    ``cancel()`` is O(1): it flips a flag and returns — no tombstone
    event is scheduled and no heap entry is removed.  The dead entry is
    discarded (and the handle recycled onto the simulator's free list)
    when simulated time reaches its timestamp.

    **Lifetime discipline**: a handle is only valid until its timer
    fires or until ``cancel()`` is called.  The engine recycles handles,
    so a holder must drop its reference when the timer fires (first
    statement of the callback) or right after cancelling; calling
    ``cancel()`` on a stale handle may cancel an unrelated, newer timer
    that reused the object.
    """

    __slots__ = ("_when", "_fn", "_args", "_alive")

    def __init__(self) -> None:
        self._when = 0.0
        self._fn: Optional[Callable] = None
        self._args: tuple = ()
        self._alive = False

    @property
    def when(self) -> float:
        """Absolute fire time this handle was armed for."""
        return self._when

    @property
    def alive(self) -> bool:
        """True while the timer is armed and not cancelled."""
        return self._alive

    def cancel(self) -> None:
        """Disarm the timer.  O(1); idempotent."""
        self._alive = False


# ---------------------------------------------------------------------------
# Run-loop codegen.
#
# The callback / timer / event dispatch below is THE single source of
# truth for what happens when a schedule entry fires.  It is rendered
# (with per-site accessor expressions) into the calendar core's run
# loops, the heap core's run loop and step(), and the monitored step(),
# so the bodies cannot drift apart by copy-editing again.
# ---------------------------------------------------------------------------

_DISPATCH_TEMPLATE = """\
x = $X$
if x is None:
$CB_PRE$
    a = $ARGS$
$CLEAR_CB$
$BATCH$
    if a:
        $CB$(*a)
    else:
        $CB$()
elif x is False:
    h = $FN$
$CLEAR_TM$
    if h._alive:
        h._alive = False
        hf = h._fn
        ha = h._args
        h._fn = None
        h._args = ()
        $POOL$.append(h)
        if ha:
            hf(*ha)
        else:
            hf()
    else:
        $POOL$.append(h)
else:
$CLEAR_EV$
    callbacks, x.callbacks = x.callbacks, None
    for callback in callbacks:
        callback(x)
    if x._ok is False and not x._defused:
        raise x._value
"""


def _render(template: str, **subs: str) -> str:
    for key, value in subs.items():
        template = template.replace(f"${key}$", value)
    return template


def _indent(src: str, pad: str) -> str:
    return "".join(pad + ln if ln.strip() else ln for ln in src.splitlines(True))


#: Batch hook rendered into the callback branch of the *batched* loop
#: variants only (``{fn}`` is the site's bound-callback expression).  By
#: this point the entry is fully popped — front cells cleared, ``a``
#: bound — so a kernel sees a consistent scheduler and may schedule
#: freely.  A kernel returning False has changed nothing and the scalar
#: call below runs as usual.  The scalar loops render ``$BATCH$`` empty
#: and stay byte-identical to the pre-batching engine.
_BATCH_HOOK = """\
bk = bkget(getattr({fn}, "__func__", None))
if bk is not None and bk(bapi, {fn}, a):
    continue
"""


def _dispatch(x: str, fn: str, args: str, pool: str, pad: str,
              batch: bool = False) -> str:
    """Render the dispatch for heap-item sites: the popped tuple owns its
    payload, so no cells need clearing and the markers expand to nothing."""
    return _indent(
        _render(
            _DISPATCH_TEMPLATE,
            X=x, FN=fn, CB=fn, ARGS=args, POOL=pool,
            CB_PRE="", CLEAR_CB="", CLEAR_TM="", CLEAR_EV="",
            BATCH=_indent(_BATCH_HOOK.format(fn=fn), "    ") if batch else "",
        ),
        pad,
    )


def _dispatch_front(pad: str, batch: bool = False) -> str:
    """Render the dispatch for the decomposed front slot.

    Each kind clears exactly the cells its fill path stored (see the
    empty-front invariant below), and every payload is bound to a local
    *before* its cell is cleared — the payload may schedule new entries,
    which refill the front slot mid-dispatch."""
    return _indent(
        _render(
            _DISPATCH_TEMPLATE,
            X="fx", FN="f3", CB="fn", ARGS="f4", POOL="pool",
            CB_PRE="    fn = f3",
            CLEAR_CB="    f3 = None\n    f4 = None",
            CLEAR_TM="    fx = None\n    f3 = None",
            CLEAR_EV="    fx = None",
            BATCH=_indent(_BATCH_HOOK.format(fn="fn"), "    ") if batch else "",
        ),
        pad,
    )


# The calendar core lives in closures over plain cells (seq, the front
# slot, the horizon) rather than instance attributes: cell access is
# measurably cheaper than slot access in the two hottest functions
# (schedule_callback and the run loop).  ``sim._now`` stays a real slot
# because model code reads ``sim.now`` mid-callback.
#
# Front-slot cells: ``fw`` (when; -1.0 = empty), ``fs`` (seq), ``fx``
# (kind: None/False/Event), ``f3``/``f4`` (payload).  Invariants:
#   * every near-heap entry has when < horizon; horizon only grows
#   * far entries are >= the horizon they were inserted under, so
#     far_min >= horizon > every near-heap entry — heap pops never
#     need a far check
#   * the front slot bypasses the horizon, so the front-pop path alone
#     must check ``far_min <= front`` (a stale front can postdate a
#     far entry scheduled later)
#   * while the front is empty (``fw < 0``) the cells ``fx``/``f3``/
#     ``f4`` are all None: each fill path stores only the cells its
#     entry kind uses, and the front dispatch clears exactly those —
#     callbacks never touch ``fx``, events never touch ``f3``/``f4``
# ``far_min`` is +inf whenever the far list is empty.

_CAL_LOOP_TEMPLATE = """\
def $NAME$($ARGS$):
    nonlocal fw, fx, f3, f4, far_min, seq
    seq0 = seq
    pend0 = (fw >= 0.0) + len(heap) + len(far)
    try:
        while True:
            w = fw
            if w >= 0.0:
                if heap:
                    h0 = heap[0]
                    hw = h0[0]
                    if hw < w or (hw == w and h0[1] < fs):
$GUARD_HEAP0$
                        item = pop(heap)
                        sim._now = hw
$DISPATCH_ITEM$
                        continue
                if far_min <= w:
                    _promote()
                    continue
$GUARD_FRONT$
                fw = -1.0
                sim._now = w
$DISPATCH_FRONT$
                continue
            if heap:
$GUARD_HEAP1$
                item = pop(heap)
                sim._now = item[0]
$DISPATCH_ITEM$
                continue
            if far_min != INF:
$GUARD_FAR$
                _promote()
                continue
            break
$TAIL$
    finally:
        pend1 = (fw >= 0.0) + len(heap) + len(far)
        sim.events_processed += (seq - seq0) + pend0 - pend1
"""

_CAL_FACTORY_TEMPLATE = '''\
def _build_calendar_core(sim, width):
    INF = float("inf")
    heap = []
    far = []
    pool = []
    sim._heap = heap
    seq = 0
    fw = -1.0
    fs = 0
    fx = None
    f3 = None
    f4 = None
    far_min = INF
    horizon = width
    pushes = 0
    spills = 0
    promotions = 0
    pool_hits = 0
    pool_misses = 0
    blim = INF
    b_batches = 0
    b_fused = 0

    def schedule_callback(delay, fn, *args):
        nonlocal seq, fw, fs, fx, f3, f4, far_min, pushes, spills
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        seq += 1
        when = sim._now + delay
        w = fw
        if w < 0.0:
            # Empty-front invariant: fx/f3/f4 are already None, so a
            # callback fill only touches the cells it uses.
            fw = when
            fs = seq
            f3 = fn
            f4 = args
            return
        if when < w:
            e = (w, fs, fx, f3, f4)
            fw = when
            fs = seq
            fx = None
            f3 = fn
            f4 = args
        else:
            e = (when, seq, None, fn, args)
        if e[0] < horizon:
            pushes += 1
            push(heap, e)
        else:
            spills += 1
            far.append(e)
            if e[0] < far_min:
                far_min = e[0]

    def schedule_callback_at(when, fn, *args):
        nonlocal seq, fw, fs, fx, f3, f4, far_min, pushes, spills
        if when < sim._now:
            raise SimulationError(
                f"callback time {when} lies in the past (now={sim._now}): "
                f"causality violation"
            )
        seq += 1
        w = fw
        if w < 0.0:
            fw = when
            fs = seq
            f3 = fn
            f4 = args
            return
        if when < w:
            e = (w, fs, fx, f3, f4)
            fw = when
            fs = seq
            fx = None
            f3 = fn
            f4 = args
        else:
            e = (when, seq, None, fn, args)
        if e[0] < horizon:
            pushes += 1
            push(heap, e)
        else:
            spills += 1
            far.append(e)
            if e[0] < far_min:
                far_min = e[0]

    def _schedule(event, delay=0.0):
        nonlocal seq, fw, fs, fx, f3, f4, far_min, pushes, spills
        seq += 1
        when = sim._now + delay
        w = fw
        if w < 0.0:
            fw = when
            fs = seq
            fx = event
            return
        if when < w:
            e = (w, fs, fx, f3, f4)
            fw = when
            fs = seq
            fx = event
            f3 = None
            f4 = None
        else:
            e = (when, seq, event, None, None)
        if e[0] < horizon:
            pushes += 1
            push(heap, e)
        else:
            spills += 1
            far.append(e)
            if e[0] < far_min:
                far_min = e[0]

    def _schedule_event_at(event, when):
        nonlocal seq, fw, fs, fx, f3, f4, far_min, pushes, spills
        if when < sim._now:
            raise SimulationError(
                f"event time {when} lies in the past (now={sim._now}): "
                f"causality violation"
            )
        seq += 1
        w = fw
        if w < 0.0:
            fw = when
            fs = seq
            fx = event
            return
        if when < w:
            e = (w, fs, fx, f3, f4)
            fw = when
            fs = seq
            fx = event
            f3 = None
            f4 = None
        else:
            e = (when, seq, event, None, None)
        if e[0] < horizon:
            pushes += 1
            push(heap, e)
        else:
            spills += 1
            far.append(e)
            if e[0] < far_min:
                far_min = e[0]

    def schedule_timer(delay, fn, *args):
        nonlocal seq, fw, fs, fx, f3, f4, far_min, pushes, spills
        nonlocal pool_hits, pool_misses
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        if pool:
            h = pool.pop()
            pool_hits += 1
        else:
            h = TimerHandle()
            pool_misses += 1
        seq += 1
        when = sim._now + delay
        h._when = when
        h._fn = fn
        h._args = args
        h._alive = True
        w = fw
        if w < 0.0:
            fw = when
            fs = seq
            fx = False
            f3 = h
            return h
        if when < w:
            e = (w, fs, fx, f3, f4)
            fw = when
            fs = seq
            fx = False
            f3 = h
            f4 = None
        else:
            e = (when, seq, False, h, None)
        if e[0] < horizon:
            pushes += 1
            push(heap, e)
        else:
            spills += 1
            far.append(e)
            if e[0] < far_min:
                far_min = e[0]
        return h

    def _promote():
        # Pull every far entry inside the next horizon window into the
        # near heap.  Called only when the far list holds the earliest
        # pending timestamp, so the new window starts at far_min.
        nonlocal far_min, horizon, width, promotions
        promotions += 1
        horizon = far_min + width
        keep = []
        for e in far:
            if e[0] < horizon:
                push(heap, e)
            else:
                keep.append(e)
        far[:] = keep
        if keep:
            m = keep[0][0]
            for e in keep:
                if e[0] < m:
                    m = e[0]
            far_min = m
        else:
            far_min = INF
            if width < 1048576.0:
                # The whole overflow fit one window: the window is
                # narrower than the observed event horizon, so widen it.
                width *= 2.0

$RUN_ALL$

$RUN_UNTIL$

$RUN_ALL_B$

$RUN_UNTIL_B$

    def _bpop_if(fn, bound=None):
        # Batch-kernel service: pop and return the next schedule entry
        # iff it is the global minimum, a callback targeting exactly
        # ``fn``, and fires no later than ``bound``/the run limit.
        # Mirrors the main loop's pop precedence (heap beats front on
        # ties by seq; far promotes first) so consuming kernels replay
        # the exact scalar order.  Never touches sim._now.
        nonlocal fw, fx, f3, f4
        limit = blim
        if bound is not None and bound < limit:
            limit = bound
        while True:
            w = fw
            if w >= 0.0:
                if heap:
                    h0 = heap[0]
                    hw = h0[0]
                    if hw < w or (hw == w and h0[1] < fs):
                        if hw > limit or h0[2] is not None or h0[3] != fn:
                            return None
                        return pop(heap)
                if far_min <= w:
                    _promote()
                    continue
                if w > limit or fx is not None or f3 != fn:
                    return None
                e = (w, fs, None, f3, f4)
                fw = -1.0
                f3 = None
                f4 = None
                return e
            if heap:
                h0 = heap[0]
                if h0[0] > limit or h0[2] is not None or h0[3] != fn:
                    return None
                return pop(heap)
            if far_min != INF:
                if far_min > limit:
                    return None
                _promote()
                continue
            return None

    def _bconsume(n):
        # Burned seqs stand in for schedule+pop pairs a kernel replayed
        # analytically; the accounting identity in the loop footers
        # counts them as processed events, matching scalar runs.
        nonlocal seq
        seq += n

    def _bset_now(t):
        sim._now = t

    def _blimit():
        return blim

    def _bfused(n):
        nonlocal b_batches, b_fused
        b_batches += 1
        b_fused += n

    bapi = BatchApi()
    bapi.sim = sim
    bapi.pop_if = _bpop_if
    bapi.consume_seq = _bconsume
    bapi.set_now = _bset_now
    bapi.limit = _blimit
    bapi.fused = _bfused

    def run(until=None):
        nonlocal blim
        if until is None:
            if bactive():
                blim = INF
                _run_all_b()
            else:
                _run_all()
            return
        if until < sim._now:
            raise ValueError(f"until ({until}) lies in the past (now={sim._now})")
        if bactive():
            blim = until
            _run_until_b(until)
        else:
            _run_until(until)

    def step():
        nonlocal fw, fx, f3, f4
        while True:
            w = fw
            if w >= 0.0:
                if heap:
                    h0 = heap[0]
                    if h0[0] < w or (h0[0] == w and h0[1] < fs):
                        item = pop(heap)
                        break
                if far_min <= w:
                    _promote()
                    continue
                item = (w, fs, fx, f3, f4)
                fw = -1.0
                fx = None
                f3 = None
                f4 = None
                break
            if heap:
                item = pop(heap)
                break
            if far_min != INF:
                _promote()
                continue
            raise SimulationError("step() on an empty schedule: nothing left to run")
        sim._now = item[0]
        sim.events_processed += 1
$DISPATCH_STEP$

    def peek():
        m = INF
        if fw >= 0.0:
            m = fw
        if heap and heap[0][0] < m:
            m = heap[0][0]
        if far_min < m:
            m = far_min
        return m

    def stats():
        return {
            "core": "calendar",
            "schedules": seq,
            "front_inserts": seq - pushes - spills,
            "near_pushes": pushes,
            "far_spills": spills,
            "promotions": promotions,
            "near_depth": len(heap) + (fw >= 0.0),
            "far_depth": len(far),
            "near_window_us": width,
            "timer_pool_hits": pool_hits,
            "timer_pool_misses": pool_misses,
            "timer_pool_size": len(pool),
            "batch_batches": b_batches,
            "batch_fused": b_fused,
        }

    def snapshot():
        # Entries in (when, seq) order; callbacks and timers only.  A
        # pending Event means a process/store handshake is in flight --
        # generator frames are not snapshot-able in-process.
        entries = []
        if fw >= 0.0:
            entries.append((fw, fs, fx, f3, f4))
        entries.extend(heap)
        entries.extend(far)
        entries.sort(key=lambda e: (e[0], e[1]))
        recs = []
        for e in entries:
            k = e[2]
            if k is None:
                recs.append((e[0], e[1], 0, e[3], e[4]))
            elif k is False:
                recs.append((e[0], e[1], 1, e[3], None))
            else:
                raise SimulationError(_SNAPSHOT_EVENT_MSG)
        return {
            "schema": SNAPSHOT_SCHEMA,
            "core": "calendar",
            "now": sim._now,
            "seq": seq,
            "events_processed": sim.events_processed,
            "width": width,
            "entries": recs,
        }

    def restore(state):
        # Replaces the whole schedule; seq continues from the snapshot
        # so the replayed suffix allocates identical (when, seq) pairs.
        # Scheduler micro-stats (pushes/spills/promotions/pool) are NOT
        # restored -- they are diagnostics of this core instance, not
        # simulation state.
        nonlocal seq, fw, fs, fx, f3, f4, far_min, horizon, width
        _check_snapshot_schema(state)
        heap.clear()
        far.clear()
        fw = -1.0
        fs = 0
        fx = None
        f3 = None
        f4 = None
        sim._now = state["now"]
        seq = state["seq"]
        sim.events_processed = state["events_processed"]
        width = state["width"]
        horizon = sim._now + width
        far_min = INF
        for when, sq, kind, a, b in state["entries"]:
            if kind == 0:
                e = (when, sq, None, a, b)
            else:
                e = (when, sq, False, a, None)
            if when < horizon:
                push(heap, e)
            else:
                far.append(e)
                if when < far_min:
                    far_min = when

    bapi.peek = peek
    bapi.schedule_callback_at = schedule_callback_at

    return (schedule_callback, schedule_callback_at, _schedule,
            _schedule_event_at, schedule_timer, run, step, peek, stats,
            snapshot, restore)
'''


def _calendar_loop(name: str, bounded: bool, batched: bool = False) -> str:
    if bounded:
        guard = "if {when} > until:\n    sim._now = until\n    return\n"
        subs = dict(
            NAME=name,
            ARGS="until",
            GUARD_HEAP0=_indent(guard.format(when="hw"), " " * 24),
            GUARD_FRONT=_indent(guard.format(when="w"), " " * 16),
            GUARD_HEAP1=_indent(guard.format(when="heap[0][0]"), " " * 16),
            GUARD_FAR=_indent(guard.format(when="far_min"), " " * 16),
            TAIL=_indent("sim._now = until\n", " " * 8),
        )
    else:
        subs = dict(
            NAME=name, ARGS="", GUARD_HEAP0="", GUARD_FRONT="",
            GUARD_HEAP1="", GUARD_FAR="", TAIL="",
        )
    src = _render(_CAL_LOOP_TEMPLATE, **subs)
    # The two DISPATCH_ITEM sites sit at different depths; render each.
    parts = src.split("$DISPATCH_ITEM$\n")
    assert len(parts) == 3, "loop template must contain two item dispatch sites"
    src = (
        parts[0]
        + _dispatch("item[2]", "item[3]", "item[4]", "pool", " " * 24, batched)
        + parts[1]
        + _dispatch("item[2]", "item[3]", "item[4]", "pool", " " * 16, batched)
        + parts[2]
    )
    src = src.replace("$DISPATCH_FRONT$\n", _dispatch_front(" " * 16, batched))
    return src


def _build_calendar_factory() -> Callable:
    # The run loops are rendered twice: the scalar pair is byte-identical
    # to the pre-batching engine (zero overhead with batching off), the
    # ``_b`` pair adds the kernel hook at every callback dispatch.  run()
    # picks a pair per call via the batch policy.
    src = _render(
        _CAL_FACTORY_TEMPLATE,
        RUN_ALL=_indent(_calendar_loop("_run_all", bounded=False), " " * 4),
        RUN_UNTIL=_indent(_calendar_loop("_run_until", bounded=True), " " * 4),
        RUN_ALL_B=_indent(
            _calendar_loop("_run_all_b", bounded=False, batched=True), " " * 4
        ),
        RUN_UNTIL_B=_indent(
            _calendar_loop("_run_until_b", bounded=True, batched=True), " " * 4
        ),
        DISPATCH_STEP=_dispatch("item[2]", "item[3]", "item[4]", "pool", " " * 8),
    )
    namespace: dict = {
        "TimerHandle": TimerHandle,
        "SimulationError": SimulationError,
        "push": heapq.heappush,
        "pop": heapq.heappop,
        "bkget": _batch._KERNELS.get,
        "bactive": _batch_active,
        "BatchApi": _batch.BatchApi,
        "SNAPSHOT_SCHEMA": SNAPSHOT_SCHEMA,
        "_check_snapshot_schema": _check_snapshot_schema,
        "_SNAPSHOT_EVENT_MSG": _SNAPSHOT_EVENT_MSG,
    }
    exec(compile(src, "<repro.sim.engine:calendar-core>", "exec"), namespace)
    return namespace["_build_calendar_core"]


# Heap-core run/step: the seed engine's loop skeleton with the shared
# dispatch rendered in.  ``$ON_EXECUTE$`` is empty for the plain heap
# core and the monitor hook for _MonitoredSimulator.

_HEAP_RUN_TEMPLATE = '''\
def _heap_run(self, until=None):
    """Run until the heap drains or simulated time reaches ``until``."""
    if until is not None and until < self._now:
        raise ValueError(f"until ({until}) lies in the past (now={self._now})")
    # Inlined step() body: one tuple pop and a branch per entry, with
    # the heap and heappop bound to locals.
    heap = self._heap
    pool = self._timer_pool
    processed = 0
    try:
        while heap:
            if until is not None and heap[0][0] > until:
                self._now = until
                return
            item = pop(heap)
            self._now = item[0]
            processed += 1
$ON_EXECUTE$
$DISPATCH$
    finally:
        self.events_processed += processed
    if until is not None:
        self._now = until
'''

_HEAP_STEP_TEMPLATE = '''\
def _heap_step(self):
    """Process the next scheduled heap entry (event, callback, timer)."""
    if not self._heap:
        raise SimulationError("step() on an empty schedule: nothing left to run")
    pool = self._timer_pool
    item = pop(self._heap)
    self._now = item[0]
    self.events_processed += 1
$ON_EXECUTE$
$DISPATCH$
'''


def _build_heap_loop(template: str, name: str, monitored: bool) -> Callable:
    hook = "self._mon.on_execute(item)\n" if monitored else ""
    src = _render(
        template,
        ON_EXECUTE=_indent(hook, " " * (12 if "while heap" in template else 4)),
        DISPATCH=_dispatch(
            "item[2]", "item[3]", "item[4]", "pool",
            " " * (12 if "while heap" in template else 4),
        ),
    )
    namespace: dict = {
        "SimulationError": SimulationError,
        "pop": heapq.heappop,
    }
    exec(compile(src, f"<repro.sim.engine:{name}>", "exec"), namespace)
    fn = namespace[template.split("(")[0].split()[-1]]
    fn.__name__ = name
    return fn


class Simulator:
    """The discrete-event scheduler (calendar core).

    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(10.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    10.0
    """

    __slots__ = (
        "_now",
        "_heap",
        "_seq",
        "events_processed",
        "_mon",
        "_timer_pool",
        # Calendar-core entry points (per-instance closures over the
        # scheduler cells; the heap/monitored subclasses use ordinary
        # methods instead and never assign these slots).
        "schedule_callback",
        "schedule_callback_at",
        "schedule_timer",
        "_schedule",
        "_schedule_event_at",
        "run",
        "step",
        "peek",
        "stats",
        "snapshot",
        "restore",
    )

    #: Default near-window width (µs) separating the near heap from the
    #: far overflow list; adapts upward per-instance (DESIGN.md §5).
    NEAR_WINDOW_US = 4096.0

    def __new__(cls) -> "Simulator":
        # When instrumentation is armed, construction routes to the
        # monitored subclass so the base class never pays a per-schedule
        # ``_mon`` check: REPRO_RACE off keeps the exact hot path.  The
        # seed heap core stays selectable for A/B reference runs, and
        # REPRO_SIM_SHARDS > 1 routes to the sharded multi-timeline
        # engine.  A shard-aware monitor (obs spans) rides along into
        # the sharded engine; a shard-blind one (the race detector's
        # shadow scheduler needs one totally-ordered container) wins
        # over sharding and collapses to the single monitored timeline.
        if cls is Simulator:
            if _monitor_factory is not None and not (
                _shards > 1 and _monitor_shard_aware
            ):
                return object.__new__(_MonitoredSimulator)
            if _shards > 1:
                from repro.sim.shard.sharded import ShardedSimulator

                return object.__new__(ShardedSimulator)
            if _core == "heap":
                return object.__new__(_HeapSimulator)
        return object.__new__(cls)

    def __init__(self):
        self._now = 0.0
        #: Total schedule entries processed (events + callbacks +
        #: timers, including cancelled timers); perf metric.
        self.events_processed = 0
        #: ShadowScheduler monitor; always None here (armed construction
        #: routes to _MonitoredSimulator before this __init__ runs).
        self._mon = None
        (
            self.schedule_callback,
            self.schedule_callback_at,
            self._schedule,
            self._schedule_event_at,
            self.schedule_timer,
            self.run,
            self.step,
            self.peek,
            self.stats,
            self.snapshot,
            self.restore,
        ) = _build_calendar_core(self, self.NEAR_WINDOW_US)

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- checkpointing ---------------------------------------------------
    # ``snapshot()`` / ``restore()`` are per-core (calendar: closures
    # assigned in __init__; heap/monitored: methods below).  Both speak
    # the same SNAPSHOT_SCHEMA dict, so a blob restores across cores —
    # the (when, seq) order is core-agnostic.  Pickling a simulator
    # pickles its snapshot; the schedule's bound callbacks drag the
    # reachable world along, so ``pickle.dumps(sim)`` checkpoints a
    # callback/timer world in one blob.  Unpickling rebuilds the core
    # under the *current* engine configuration (core/shards selection).
    def __getstate__(self) -> dict:
        return self.snapshot()

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        self.restore(state)

    # -- conservative-synchronization accounting ------------------------
    def earliest_output_time(self, lookahead_us: float = 0.0) -> float:
        """Lower bound on the timestamp of anything this timeline can
        still emit: no pending entry fires before ``peek()``, and every
        externally visible effect an entry produces is at least
        ``lookahead_us`` after the entry itself (link serialization +
        propagation + switch transit on cut edges — DESIGN.md §8).  The
        sharded coordinator exchanges this EOT as its null message;
        ``inf`` means the timeline is drained and promises nothing."""
        nxt = self.peek()
        return nxt if nxt == float("inf") else nxt + lookahead_us

    # -- event factories ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)


class _HeapSimulator(Simulator):
    """The seed binary-heap engine, kept as the A/B reference core.

    Selected with ``REPRO_SIM_CORE=heap`` / ``set_core("heap")``.  Same
    observable contract as the calendar core: identical ``(time, seq)``
    total order, identical ``events_processed``, identical errors.  Its
    dispatch body is rendered from the same template as the calendar
    core's, so the two cannot drift.
    """

    __slots__ = ()

    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self.events_processed = 0
        self._timer_pool: List[TimerHandle] = []
        self._mon = None

    # -- scheduling -----------------------------------------------------
    # Negative delays cannot reach ``_schedule``: Timeout.__init__ and
    # Event.succeed/fail validate before calling, keeping this free of
    # per-event checks.
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event, None, None))

    def schedule_callback(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, None, fn, args))

    def schedule_callback_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self._now:
            raise SimulationError(
                f"callback time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, None, fn, args))

    def _schedule_event_at(self, event: Event, when: float) -> None:
        if when < self._now:
            raise SimulationError(
                f"event time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event, None, None))

    def schedule_timer(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        pool = self._timer_pool
        h = pool.pop() if pool else TimerHandle()
        self._seq += 1
        when = self._now + delay
        h._when = when
        h._fn = fn
        h._args = args
        h._alive = True
        heapq.heappush(self._heap, (when, self._seq, False, h, None))
        return h

    run = _build_heap_loop(_HEAP_RUN_TEMPLATE, "run", monitored=False)
    step = _build_heap_loop(_HEAP_STEP_TEMPLATE, "step", monitored=False)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def stats(self) -> dict:
        return {
            "core": "heap",
            "schedules": self._seq,
            "near_depth": len(self._heap),
            "timer_pool_size": len(self._timer_pool),
        }

    def snapshot(self) -> dict:
        """Same blob layout as the calendar core's ``snapshot()``."""
        recs = []
        for e in sorted(self._heap):
            k = e[2]
            if k is None:
                recs.append((e[0], e[1], 0, e[3], e[4]))
            elif k is False:
                recs.append((e[0], e[1], 1, e[3], None))
            else:
                raise SimulationError(_SNAPSHOT_EVENT_MSG)
        return {
            "schema": SNAPSHOT_SCHEMA,
            "core": "heap",
            "now": self._now,
            "seq": self._seq,
            "events_processed": self.events_processed,
            "width": Simulator.NEAR_WINDOW_US,
            "entries": recs,
        }

    def restore(self, state: dict) -> None:
        _check_snapshot_schema(state)
        heap = []
        for when, sq, kind, a, b in state["entries"]:
            if kind == 0:
                heap.append((when, sq, None, a, b))
            else:
                heap.append((when, sq, False, a, None))
        heapq.heapify(heap)
        self._heap[:] = heap
        self._now = state["now"]
        self._seq = state["seq"]
        self.events_processed = state["events_processed"]


class _MonitoredSimulator(_HeapSimulator):
    """Simulator variant built while instrumentation is armed.

    ``Simulator()`` constructs this subclass (via ``__new__``) whenever
    ``_monitor_factory`` is set, so the ShadowScheduler sees every heap
    push and pop without the base class carrying any per-event checks.
    The monitor may replace the tie-break key (``on_schedule``) to
    perturb same-timestamp ordering; pops are reported via
    ``on_execute`` before the entry runs.  Always uses the plain heap
    discipline: perturbed keys need a single totally-ordered container.
    """

    __slots__ = ()

    def __init__(self):
        super().__init__()
        self._mon = _monitor_factory()

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, self._now + delay, event)
        heapq.heappush(self._heap, (self._now + delay, seq, event, None, None))

    def schedule_callback(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, self._now + delay, fn)
        heapq.heappush(self._heap, (self._now + delay, seq, None, fn, args))

    def schedule_callback_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self._now:
            raise SimulationError(
                f"callback time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, when, fn)
        heapq.heappush(self._heap, (when, seq, None, fn, args))

    def _schedule_event_at(self, event: Event, when: float) -> None:
        if when < self._now:
            raise SimulationError(
                f"event time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, when, event)
        heapq.heappush(self._heap, (when, seq, event, None, None))

    def schedule_timer(self, delay: float, fn: Callable, *args: Any) -> TimerHandle:
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        pool = self._timer_pool
        h = pool.pop() if pool else TimerHandle()
        self._seq += 1
        when = self._now + delay
        h._when = when
        h._fn = fn
        h._args = args
        h._alive = True
        seq = self._mon.on_schedule(self._seq, when, fn)
        heapq.heappush(self._heap, (when, seq, False, h, None))
        return h

    step = _build_heap_loop(_HEAP_STEP_TEMPLATE, "step", monitored=True)

    def run(self, until: Optional[float] = None) -> None:
        """Monitored runs go through step() so every popped entry is
        reported to the ShadowScheduler; speed is secondary here."""
        if until is not None and until < self._now:
            raise ValueError(f"until ({until}) lies in the past (now={self._now})")
        heap = self._heap
        while heap:
            if until is not None and heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = until


_build_calendar_core = _build_calendar_factory()
