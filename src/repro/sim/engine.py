"""Core event loop: events, timeouts, processes, and condition events.

Simulated time is a float in microseconds.  All scheduling is
deterministic: events scheduled for the same instant fire in the order
they were scheduled (a monotonically increasing sequence number breaks
heap ties).

Performance notes.  The event classes carry ``__slots__`` and the hot
loop in :meth:`Simulator.run` is inlined (no per-step method dispatch or
repeated attribute lookups).  For model code that only needs "call this
function later" — link delivery, firmware poll ticks, protocol timers —
:meth:`Simulator.schedule_callback` pushes a bare callable onto the heap
without allocating an :class:`Event` at all.  Heap entries are therefore
one of two tuple shapes::

    (when, seq, event)            # a triggered Event
    (when, seq, None, fn, args)   # a scheduled callback

The sequence number is unique, so tuple comparison never reaches the
third element and the two shapes coexist safely in one heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: Schedule-order instrumentation (installed by :mod:`repro.analysis.race`).
#: ``_monitor_factory`` builds one ShadowScheduler monitor per Simulator
#: created while armed; ``access_hook`` is called by state objects
#: (segments, rings, resources, links) on reads/writes so the race
#: detector can attribute accesses to the executing heap entry.  Both are
#: ``None`` in normal operation: unmonitored simulators carry ``self._mon
#: = None`` and the hot run loop is entirely untouched.
_monitor_factory: Optional[Callable[[], Any]] = None
access_hook: Optional[Callable[[int, str, str], None]] = None


def set_instrumentation(
    monitor_factory: Optional[Callable[[], Any]],
    access: Optional[Callable[[int, str, str], None]] = None,
) -> None:
    """Install (or clear, with ``None``) the schedule-order monitor
    factory and the state-access hook.  Only simulators constructed
    while a factory is installed are monitored."""
    global _monitor_factory, access_hook
    _monitor_factory = monitor_factory
    access_hook = access


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (double-trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, and runs its callbacks when the simulator
    pops it off the schedule.  Events may only trigger once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    #: Class-level default; only :class:`_InterruptEvent` overrides it.
    _interrupting = False

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None  # None = pending
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._ok is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(
                f"cannot trigger {delay} us into the past "
                f"(causality violation at t={self.sim._now})"
            )
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every waiting process.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if delay < 0:
            raise SimulationError(
                f"cannot trigger {delay} us into the past "
                f"(causality violation at t={self.sim._now})"
            )
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class _Initialize(Event):
    """Internal event used to kick off a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, 0.0)


class _InterruptEvent(Event):
    """The failed event delivering an :class:`Interrupt` to a process."""

    __slots__ = ()

    _interrupting = True


class Process(Event):
    """A running generator; doubles as the event of its own termination.

    The generator yields :class:`Event` instances.  When the yielded
    event triggers, the process resumes with the event's value (or the
    exception, if the event failed).
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        event = _InterruptEvent(self.sim)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.sim._schedule(event, 0.0)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            # An interrupt can race with normal termination; it is void
            # once the process has finished.
            if event._interrupting:
                event._defused = True
            return
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                # Defuse: the waiting process handles the failure.
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
            try:
                self._generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc2:
                self.fail(exc2)
            return
        self._target = next_event
        if next_event.callbacks is None:
            # Already processed: resume immediately at the current time.
            stub = Event(self.sim)
            stub._ok = next_event._ok
            stub._value = next_event._value
            stub.callbacks.append(self._resume)
            self.sim._schedule(stub, 0.0)
        else:
            next_event.callbacks.append(self._resume)


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        for event in self.events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        if not self.events and self._ok is None:
            self.succeed({})

    def _satisfied(self, n_done: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count):
            # Report only events that actually fired (were processed) by
            # the time the condition was met.
            self.succeed(
                {
                    e: e._value
                    for e in self.events
                    if (e.processed or e is event) and e._ok
                }
            )


class AnyOf(_Condition):
    """Triggers when the first of ``events`` triggers."""

    __slots__ = ()

    def _satisfied(self, n_done: int) -> bool:
        return n_done >= 1


class AllOf(_Condition):
    """Triggers when all of ``events`` have triggered."""

    __slots__ = ()

    def _satisfied(self, n_done: int) -> bool:
        return n_done == len(self.events)


class Simulator:
    """The discrete-event scheduler.

    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(10.0)
    ...     return sim.now
    >>> proc = sim.process(hello(sim))
    >>> sim.run()
    >>> proc.value
    10.0
    """

    __slots__ = ("_now", "_heap", "_seq", "events_processed", "_mon")

    def __new__(cls) -> "Simulator":
        # When instrumentation is armed, construction routes to the
        # monitored subclass so the base class never pays a per-schedule
        # ``_mon`` check: REPRO_RACE off keeps the seed's exact hot path.
        if cls is Simulator and _monitor_factory is not None:
            return object.__new__(_MonitoredSimulator)
        return object.__new__(cls)

    def __init__(self):
        self._now = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        #: Total heap entries processed (events + callbacks); perf metric.
        self.events_processed = 0
        #: ShadowScheduler monitor (race detection / tie-break
        #: perturbation), or None when not armed.
        self._mon = _monitor_factory() if _monitor_factory is not None else None

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- event factories ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    # Negative delays cannot reach ``_schedule``: Timeout.__init__ and
    # Event.succeed/fail validate before calling, keeping this free of
    # per-event checks.
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))

    def schedule_callback(self, delay: float, fn: Callable, *args: Any) -> None:
        """Fire ``fn(*args)`` after ``delay`` without allocating an Event.

        This is the zero-allocation fast path for model code that never
        needs to *wait* on the occurrence — link deliveries, poll ticks,
        protocol timer ticks.  Callbacks interleave deterministically
        with events (same time axis, same FIFO tie-breaking)."""
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, None, fn, args))

    def schedule_callback_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_callback`.

        Model code that derives occurrence times analytically (the link
        serialization chain) uses this so that the same float lands on
        the heap regardless of which instant the computation ran at —
        ``now + (when - now)`` is not ``when`` in float arithmetic."""
        if when < self._now:
            raise SimulationError(
                f"callback time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, None, fn, args))

    def _schedule_event_at(self, event: Event, when: float) -> None:
        """Push an already-triggered event at an absolute time."""
        if when < self._now:
            raise SimulationError(
                f"event time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, event))

    def step(self) -> None:
        """Process the next scheduled heap entry (event or callback)."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule: nothing left to run")
        item = heapq.heappop(self._heap)
        self._now = item[0]
        self.events_processed += 1
        event = item[2]
        if event is None:
            item[3](*item[4])
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled the failure: crash the simulation loudly.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until ({until}) lies in the past (now={self._now})")
        # Inlined step() body: one tuple pop and a branch per entry, with
        # the heap and heappop bound to locals.
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return
                item = pop(heap)
                self._now = item[0]
                processed += 1
                event = item[2]
                if event is None:
                    item[3](*item[4])
                    continue
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    raise event._value
        finally:
            self.events_processed += processed
        if until is not None:
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")


class _MonitoredSimulator(Simulator):
    """Simulator variant built while instrumentation is armed.

    ``Simulator()`` constructs this subclass (via ``__new__``) whenever
    ``_monitor_factory`` is set, so the ShadowScheduler sees every heap
    push and pop without the base class carrying any per-event checks.
    The monitor may replace the tie-break key (``on_schedule``) to
    perturb same-timestamp ordering; pops are reported via
    ``on_execute`` before the entry runs.
    """

    __slots__ = ()

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, self._now + delay, event)
        heapq.heappush(self._heap, (self._now + delay, seq, event))

    def schedule_callback(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, self._now + delay, fn)
        heapq.heappush(self._heap, (self._now + delay, seq, None, fn, args))

    def schedule_callback_at(self, when: float, fn: Callable, *args: Any) -> None:
        if when < self._now:
            raise SimulationError(
                f"callback time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, when, fn)
        heapq.heappush(self._heap, (when, seq, None, fn, args))

    def _schedule_event_at(self, event: Event, when: float) -> None:
        if when < self._now:
            raise SimulationError(
                f"event time {when} lies in the past (now={self._now}): "
                f"causality violation"
            )
        self._seq += 1
        seq = self._mon.on_schedule(self._seq, when, event)
        heapq.heappush(self._heap, (when, seq, event))

    def step(self) -> None:
        if not self._heap:
            raise SimulationError("step() on an empty schedule: nothing left to run")
        item = heapq.heappop(self._heap)
        self._now = item[0]
        self.events_processed += 1
        self._mon.on_execute(item)
        event = item[2]
        if event is None:
            item[3](*item[4])
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Monitored runs go through step() so every popped entry is
        reported to the ShadowScheduler; speed is secondary here."""
        if until is not None and until < self._now:
            raise ValueError(f"until ({until}) lies in the past (now={self._now})")
        heap = self._heap
        while heap:
            if until is not None and heap[0][0] > until:
                break
            self.step()
        if until is not None:
            self._now = until
