"""Locate and parse the committed perf report for profile consumers.

``benchmarks/bench_perf.py`` writes ``BENCH_perf.json`` at the repo
root; the ``obs.engine_profile`` section (PR 5/6) records the dynamic
event mix of the profiled run -- executed callback/event counts and
per-kind wall time.  simcost joins its static costs against that mix,
so the loader lives here in the bench layer next to the writer: if the
report schema moves, both sides move together.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Tuple

#: file name bench_perf.py commits at the repo root.
PERF_REPORT = "BENCH_perf.json"

#: keys the engine_profile section must carry to be usable as a profile.
ENGINE_PROFILE_KEYS = ("executed_callbacks", "executed_events", "wall_s_by_kind")


def find_perf_report(start: Optional[str] = None) -> Optional[Path]:
    """Walk up from ``start`` (default: cwd) looking for the report."""
    here = Path(start) if start is not None else Path.cwd()
    for directory in (here, *here.parents):
        candidate = directory / PERF_REPORT
        if candidate.is_file():
            return candidate
    return None


def load_engine_profile(
    path: Optional[str] = None,
) -> Optional[Tuple[dict, str]]:
    """The ``obs.engine_profile`` section of a perf report.

    Returns ``(section, source_path)`` or ``None`` when no report can
    be found, it fails to parse, or the section is missing/older-schema
    (callers fall back to static-only ranking -- never an error).
    """
    report_path = Path(path) if path is not None else find_perf_report()
    if report_path is None or not report_path.is_file():
        return None
    try:
        report = json.loads(report_path.read_text())
    except (OSError, ValueError):
        return None
    section = report.get("obs", {}).get("engine_profile")
    if not isinstance(section, dict):
        return None
    if any(key not in section for key in ENGINE_PROFILE_KEYS):
        return None  # older schema: predates the per-kind wall split
    return section, str(report_path)
