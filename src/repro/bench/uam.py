"""The four UAM micro-benchmarks of §5.2.

1. single-cell round-trip time (0-32 bytes of data),
2. block-transfer round-trip time (store N, peer stores N back),
3. block store bandwidth (repeated stores in a loop),
4. block get bandwidth (a series of gets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.am import UAM, UamConfig
from repro.bench.micro import _build_pair
from repro.sim import StatSeries

H_ECHO = 1
H_DONE = 2
H_XFER_DONE = 3
H_GET_DONE = 4


@dataclass
class UamRttResult:
    size: int
    mean_us: float
    samples: List[float]


@dataclass
class UamBandwidthResult:
    size: int
    bytes_per_second: float
    blocks: int
    retransmissions: int


def _build_uam_pair(window: int = 8, mhz: float = 60.0):
    sim, cluster, sa, sb, ch_a, ch_b = _build_pair("sba200", mhz)
    cfg = UamConfig(window=window)
    ua, ub = UAM(sa, cfg), UAM(sb, cfg)
    return sim, cluster, ua, ub, ch_a, ch_b


def _responder_loop(uam, stop):
    """Generic UAM server loop: poll until told to stop."""
    while not stop.get("done"):
        yield from uam.poll_wait(timeout_us=500.0)


def uam_single_cell_rtt(size: int = 32, n: int = 8, window: int = 8) -> UamRttResult:
    """§5.2 benchmark 1: request with 0-32 bytes, handler replies with an
    identical message.  Paper: starts at 71 us (~6 us over raw U-Net)."""
    if size > 32:
        raise ValueError("single-cell benchmark uses 0-32 bytes of data")
    sim, cluster, ua, ub, ch_a, ch_b = _build_uam_pair(window)
    stats = StatSeries(f"uam-rtt-{size}")
    payload = bytes(size)
    state = {"replies": 0}
    stop = {}

    def echo(uam, ch, msg):
        yield from uam.reply(H_DONE, msg.payload)

    def done(uam, ch, msg):
        assert msg.payload == payload
        state["replies"] += 1
        return
        yield

    ub.register_handler(H_ECHO, echo)
    ua.register_handler(H_DONE, done)

    def requester():
        yield from ua.open_channel(ch_a.ident)
        for i in range(n):
            t0 = sim.now
            yield from ua.request(ch_a.ident, H_ECHO, payload)
            while state["replies"] <= i:
                yield from ua.poll_wait()
            stats.add(sim.now - t0)
        stop["done"] = True

    def responder():
        yield from ub.open_channel(ch_b.ident)
        yield from _responder_loop(ub, stop)

    sim.process(requester())
    sim.process(responder())
    sim.run(until=1e9)
    if len(stats) != n:
        raise RuntimeError("UAM ping-pong stalled")
    return UamRttResult(size=size, mean_us=stats.mean, samples=stats.samples)


def uam_xfer_rtt(size: int, n: int = 6, window: int = 8) -> UamRttResult:
    """§5.2 benchmark 2: N-byte block transfers back and forth.
    Paper: roughly 135 us + N * 0.2 us."""
    sim, cluster, ua, ub, ch_a, ch_b = _build_uam_pair(window)
    stats = StatSeries(f"uam-xfer-{size}")
    data = bytes(i % 253 for i in range(size))
    state = {"got_back": 0, "bounce": 0}
    stop = {}

    def bounce_done(uam, ch, msg):
        state["bounce"] += 1
        return
        yield

    def back_done(uam, ch, msg):
        state["got_back"] += 1
        return
        yield

    ub.register_handler(H_XFER_DONE, bounce_done)
    ua.register_handler(H_DONE, back_done)

    def requester():
        yield from ua.open_channel(ch_a.ident)
        for i in range(n):
            t0 = sim.now
            yield from ua.store(ch_a.ident, data, remote_addr=0, handler=H_XFER_DONE)
            while state["got_back"] <= i:
                yield from ua.poll_wait()
            assert bytes(ua.memory[4096 : 4096 + size]) == data
            stats.add(sim.now - t0)
        stop["done"] = True

    def responder():
        yield from ub.open_channel(ch_b.ident)
        sent_back = 0
        while not stop.get("done"):
            yield from ub.poll_wait(timeout_us=500.0)
            if state["bounce"] > sent_back:
                sent_back += 1
                block = bytes(ub.memory[0:size])
                yield from ub.store(ch_b.ident, block, remote_addr=4096, handler=H_DONE)

    sim.process(requester())
    sim.process(responder())
    sim.run(until=1e9)
    if len(stats) != n:
        raise RuntimeError(f"UAM xfer ping-pong stalled at {size} bytes")
    return UamRttResult(size=size, mean_us=stats.mean, samples=stats.samples)


def uam_store_bandwidth(
    size: int, blocks: Optional[int] = None, window: int = 8
) -> UamBandwidthResult:
    """§5.2 benchmark 3: 'repeatedly storing a block of a specified size
    to a remote node in a loop'.  Paper: 80% of the AAL-5 limit at
    ~2 KB blocks, peaking at 14.8 MB/s, with a dip where a block no
    longer fits one 4160-byte buffer."""
    if blocks is None:
        blocks = max(20, min(150, 300_000 // max(size, 100)))
    sim, cluster, ua, ub, ch_a, ch_b = _build_uam_pair(window)
    data = bytes(i % 251 for i in range(size))
    state = {"completed": 0}
    stop = {}
    times = {}

    def store_done(uam, ch, msg):
        state["completed"] += 1
        if state["completed"] == blocks:
            times["t1"] = uam.sim.now
        return
        yield

    ub.register_handler(H_XFER_DONE, store_done)

    def sender():
        yield from ua.open_channel(ch_a.ident)
        times["t0"] = sim.now
        for _ in range(blocks):
            yield from ua.store(ch_a.ident, data, remote_addr=0, handler=H_XFER_DONE)
        while state["completed"] < blocks:
            yield from ua.poll_wait()
        stop["done"] = True

    def receiver():
        yield from ub.open_channel(ch_b.ident)
        yield from _responder_loop(ub, stop)

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=1e10)
    if "t1" not in times:
        raise RuntimeError(f"UAM store stream stalled at {size} bytes")
    elapsed = times["t1"] - times["t0"]
    return UamBandwidthResult(
        size=size,
        bytes_per_second=blocks * size / (elapsed / 1e6),
        blocks=blocks,
        retransmissions=ua.retransmissions + ub.retransmissions,
    )


def uam_get_bandwidth(
    size: int, blocks: Optional[int] = None, window: int = 8
) -> UamBandwidthResult:
    """§5.2 benchmark 4: 'sending a series of requests to a remote node
    to fetch a block of specified size'.  Paper: nearly identical to
    block store."""
    if blocks is None:
        blocks = max(20, min(150, 300_000 // max(size, 100)))
    sim, cluster, ua, ub, ch_a, ch_b = _build_uam_pair(window)
    state = {"completed": 0}
    stop = {}
    times = {}

    def get_done(uam, ch, msg):
        state["completed"] += 1
        if state["completed"] == blocks:
            times["t1"] = uam.sim.now
        return
        yield

    ua.register_handler(H_GET_DONE, get_done)

    def requester():
        yield from ua.open_channel(ch_a.ident)
        ua.memory[0:size] = bytes(size)
        times["t0"] = sim.now
        for _ in range(blocks):
            yield from ua.get(
                ch_a.ident, remote_addr=0, local_addr=0, length=size,
                handler=H_GET_DONE,
            )
        while state["completed"] < blocks:
            yield from ua.poll_wait()
        stop["done"] = True

    def responder():
        yield from ub.open_channel(ch_b.ident)
        ub.memory[0:size] = bytes(i % 247 for i in range(size))
        yield from _responder_loop(ub, stop)

    sim.process(requester())
    sim.process(responder())
    sim.run(until=1e10)
    if "t1" not in times:
        raise RuntimeError(f"UAM get stream stalled at {size} bytes")
    elapsed = times["t1"] - times["t0"]
    return UamBandwidthResult(
        size=size,
        bytes_per_second=blocks * size / (elapsed / 1e6),
        blocks=blocks,
        retransmissions=ua.retransmissions + ub.retransmissions,
    )
