"""IP-suite benchmarks behind Figures 6-9 and Table 3's UDP/TCP rows.

Four configurations:

* ``unet`` -- user-level stack over U-Net on the SBA-200 (the paper's
  contribution),
* ``kernel-atm`` -- SunOS stack + Fore driver + vendor firmware,
* ``kernel-eth`` -- SunOS stack over 10 Mbit/s Ethernet (Figure 6's
  reference point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import UNetCluster
from repro.ip.ethernet import EthernetLan
from repro.ip.kernel import (
    AtmKernelDevice,
    EthernetKernelDevice,
    KernelCosts,
    KernelStack,
)
from repro.ip.tcp import TcpConfig
from repro.ip.unet import UnetIpStack
from repro.sim import Simulator, StatSeries


@dataclass
class IpRttResult:
    size: int
    mean_us: float


@dataclass
class UdpBandwidthResult:
    size: int
    send_rate: float  # bytes/sec perceived at the sender
    recv_rate: float  # bytes/sec actually received
    sent: int
    received: int
    drops: int


@dataclass
class TcpBandwidthResult:
    write_size: int
    window: int
    bytes_per_second: float
    retransmits: int


# ----------------------------------------------------------------- builders
def build_unet_pair():
    sim = Simulator()
    cluster = UNetCluster.pair(sim)
    kwargs = dict(segment_size=1024 * 1024, send_ring=48, recv_ring=192, free_ring=192)
    sa = cluster.open_session("alice", "ipa", **kwargs)
    sb = cluster.open_session("bob", "ipb", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    # §7.3: "the resources of the actual recipient ... become the main
    # control factor and this can be tuned to meet application needs" --
    # the U-Net benchmarks give the receiver ample buffers and lose
    # nothing; the kernel path cannot be tuned this way.
    stack_a = UnetIpStack(sa, addr=1, recv_buffers=110)
    stack_b = UnetIpStack(sb, addr=2, recv_buffers=110)
    stack_a.add_peer(2, ch_a.ident)
    stack_b.add_peer(1, ch_b.ident)

    def boot():
        yield from stack_a.start()
        yield from stack_b.start()

    sim.process(boot(), name="boot")
    # let both stacks finish posting receive buffers before any traffic
    sim.run(until=5000.0)
    return sim, cluster, stack_a, stack_b


def build_kernel_atm_pair():
    sim = Simulator()
    cluster = UNetCluster.pair(sim, ni_kind="fore")
    # the vendor firmware interface has a short transmit queue: once it
    # and the 46-packet device queue fill, SunOS drops (§7.4)
    kwargs = dict(segment_size=512 * 1024, send_ring=12, recv_ring=128, free_ring=128)
    sa = cluster.open_session("alice", "<kernel>", **kwargs)
    sb = cluster.open_session("bob", "<kernel>", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    dev_a = AtmKernelDevice(sa, ch_a.ident, costs=KernelCosts())
    dev_b = AtmKernelDevice(sb, ch_b.ident, costs=KernelCosts())
    stack_a = KernelStack(cluster.hosts["alice"], dev_a, addr=1)
    stack_b = KernelStack(cluster.hosts["bob"], dev_b, addr=2)

    def boot():
        yield from stack_a.start()
        yield from stack_b.start()

    sim.process(boot(), name="boot")
    # let both stacks finish posting receive buffers before any traffic
    sim.run(until=5000.0)
    return sim, cluster, stack_a, stack_b


def build_kernel_eth_pair():
    sim = Simulator()
    from repro.host import Workstation
    from repro.ip.kernel import KernelCosts

    host_a = Workstation(sim, "alice", mhz=60.0)
    host_b = Workstation(sim, "bob", mhz=60.0)
    lan = EthernetLan(sim)
    port_a = lan.attach(1)
    port_b = lan.attach(2)
    dev_a = EthernetKernelDevice(host_a, port_a, peer=2, costs=KernelCosts())
    dev_b = EthernetKernelDevice(host_b, port_b, peer=1, costs=KernelCosts())
    stack_a = KernelStack(host_a, dev_a, addr=1)
    stack_b = KernelStack(host_b, dev_b, addr=2)

    def boot():
        yield from stack_a.start()
        yield from stack_b.start()

    sim.process(boot(), name="boot")
    # let both stacks finish posting receive buffers before any traffic
    sim.run(until=5000.0)
    return sim, lan, stack_a, stack_b


_BUILDERS = {
    "unet": build_unet_pair,
    "kernel-atm": build_kernel_atm_pair,
    "kernel-eth": build_kernel_eth_pair,
}


# ----------------------------------------------------------------- UDP RTT
def udp_rtt(size: int, kind: str = "unet", n: int = 5) -> IpRttResult:
    """UDP request/response round trip (Figures 6 and 9)."""
    sim, _net, stack_a, stack_b = _BUILDERS[kind]()
    sock_a = stack_a.udp_socket(5000)
    sock_b = stack_b.udp_socket(6000)
    stats = StatSeries(f"udp-rtt-{kind}-{size}")
    payload = bytes(size)

    def client():
        for _ in range(n):
            t0 = sim.now
            yield from sock_a.sendto(payload, (2, 6000))
            data, _src = yield from sock_a.recvfrom()
            stats.add(sim.now - t0)
            assert data == payload

    def server():
        for _ in range(n):
            data, (src, port) = yield from sock_b.recvfrom()
            yield from sock_b.sendto(data, (src, port))

    sim.process(client())
    sim.process(server())
    sim.run(until=1e9)
    if len(stats) != n:
        raise RuntimeError(f"UDP ping-pong stalled ({kind}, {size}B)")
    return IpRttResult(size=size, mean_us=stats.mean)


# ----------------------------------------------------------------- TCP RTT
def tcp_rtt(size: int, kind: str = "unet", n: int = 5,
            config: Optional[TcpConfig] = None) -> IpRttResult:
    """TCP request/response round trip on an established connection."""
    sim, _net, stack_a, stack_b = _BUILDERS[kind]()
    stats = StatSeries(f"tcp-rtt-{kind}-{size}")
    payload = bytes(max(1, size))
    server_conn = stack_b.tcp_listen(7000, peer_addr=1, config=config)

    def client():
        conn = yield from stack_a.tcp_connect(2, 7000, config=config)
        for _ in range(n):
            t0 = sim.now
            yield from conn.send(payload)
            got = b""
            while len(got) < len(payload):
                chunk = yield from conn.recv(len(payload) - len(got))
                got += chunk
            stats.add(sim.now - t0)

    def server():
        yield from server_conn.wait_established()
        for _ in range(n):
            got = b""
            while len(got) < len(payload):
                chunk = yield from server_conn.recv(len(payload) - len(got))
                got += chunk
            yield from server_conn.send(got)

    sim.process(client())
    sim.process(server())
    sim.run(until=1e10)
    if len(stats) != n:
        raise RuntimeError(f"TCP ping-pong stalled ({kind}, {size}B)")
    return IpRttResult(size=size, mean_us=stats.mean)


# ------------------------------------------------------------ UDP bandwidth
def udp_bandwidth(size: int, kind: str = "unet", n: Optional[int] = None,
                  pace_us: float = 0.0) -> UdpBandwidthResult:
    """One-way UDP stream (Figure 7).

    The sender blasts datagrams as fast as the stack lets it; U-Net UDP
    loses nothing (receiver resources govern, §7.3), the kernel path
    drops at the device output queue and the 52 KB socket buffer.
    """
    world = _BUILDERS[kind]()
    return udp_bandwidth_on(world, size, n=n, pace_us=pace_us)


def udp_bandwidth_on(
    world, size: int, n: Optional[int] = None, pace_us: float = 0.0
) -> UdpBandwidthResult:
    """:func:`udp_bandwidth`'s measurement phase on a booted world.

    ``world`` is what a ``_BUILDERS`` entry returns: both stacks booted
    and quiescent.  Checkpointed sweeps build the world once and fork a
    clone per point; see :mod:`repro.bench.checkpoint`.
    """
    if n is None:
        n = max(150, min(800, 1_600_000 // max(size, 200)))
    sim, _net, stack_a, stack_b = world
    sock_a = stack_a.udp_socket(5000)
    sock_b = stack_b.udp_socket(6000)
    payload = bytes(size)
    times = {}

    def sender():
        times["t0"] = sim.now
        for _ in range(n):
            yield from sock_a.sendto(payload, (2, 6000))
            if pace_us:
                yield sim.timeout(pace_us)
        times["t_send_done"] = sim.now

    def receiver():
        while True:
            data, _src = yield from sock_b.recvfrom()
            times["t_last_recv"] = sim.now

    sim.process(sender())
    sim.process(receiver())
    sim.run(until=sim.now + 5e7)
    elapsed_send = times["t_send_done"] - times["t0"]
    # measure delivered goodput over the whole session, so receivers that
    # starve early (heavy loss) do not report inflated rates
    elapsed_recv = (
        max(times.get("t_last_recv", 0.0), times["t_send_done"]) - times["t0"]
    )
    received = sock_b.received
    return UdpBandwidthResult(
        size=size,
        send_rate=n * size / (elapsed_send / 1e6) if elapsed_send else 0.0,
        recv_rate=received * size / (elapsed_recv / 1e6) if elapsed_recv else 0.0,
        sent=n,
        received=received,
        drops=n - received,
    )


def _drops_of(stack):
    return getattr(stack, "device", None)


# ------------------------------------------------------------ TCP bandwidth
def tcp_bandwidth(
    write_size: int,
    kind: str = "unet",
    window: Optional[int] = None,
    total_bytes: Optional[int] = None,
    mss: Optional[int] = None,
    delayed_ack: Optional[bool] = None,
) -> TcpBandwidthResult:
    """One-way TCP stream (Figure 8): the application writes
    ``write_size``-byte buffers as fast as the stack accepts them."""
    world = _BUILDERS[kind]()
    return tcp_bandwidth_on(
        world, write_size, kind=kind, window=window,
        total_bytes=total_bytes, mss=mss, delayed_ack=delayed_ack,
    )


def tcp_bandwidth_on(
    world,
    write_size: int,
    kind: str = "unet",
    window: Optional[int] = None,
    total_bytes: Optional[int] = None,
    mss: Optional[int] = None,
    delayed_ack: Optional[bool] = None,
) -> TcpBandwidthResult:
    """:func:`tcp_bandwidth`'s measurement phase on a booted world.

    ``kind`` still selects the config flavour (the kernel stack derives
    its window from its socket-buffer model); it must match the builder
    that produced ``world``.
    """
    if total_bytes is None:
        total_bytes = 600_000
    sim, _net, stack_a, stack_b = world
    if kind == "unet":
        config = TcpConfig(window=window or 8192)
    else:
        config = stack_b.tcp_config(window=window or 52 * 1024)
    if mss:
        config.mss = mss
    if delayed_ack is not None:
        config.delayed_ack = delayed_ack
    server_conn = stack_b.tcp_listen(7000, peer_addr=1, config=config)
    payload = bytes(write_size)
    writes = max(1, total_bytes // write_size)
    times = {}
    state = {"received": 0}

    def client():
        conn = yield from stack_a.tcp_connect(2, 7000, config=config)
        times["t0"] = sim.now
        for _ in range(writes):
            yield from conn.send(payload)

    def server():
        yield from server_conn.wait_established()
        goal = writes * write_size
        while state["received"] < goal:
            chunk = yield from server_conn.recv(1 << 20)
            if not chunk:
                break
            state["received"] += len(chunk)
        times["t1"] = sim.now

    sim.process(client())
    sim.process(server())
    sim.run(until=sim.now + 1e10)
    if "t1" not in times:
        raise RuntimeError(
            f"TCP stream stalled ({kind}, write={write_size}, "
            f"got {state['received']})"
        )
    elapsed = times["t1"] - times["t0"]
    return TcpBandwidthResult(
        write_size=write_size,
        window=config.window,
        bytes_per_second=state["received"] / (elapsed / 1e6),
        retransmits=server_conn.retransmits,
    )
