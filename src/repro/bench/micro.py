"""Raw U-Net micro-benchmarks (the measurements behind §4 and Table 1).

These run against any of the three NI models and use the U-Net
interface "directly" the way the paper's raw benchmarks do: the
ping-pong echoes messages straight out of the receive buffers (true
zero copy, §3.4) and the streaming benchmark sends repeatedly from one
composed buffer under credit-based flow control.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.obs import metrics as _metrics
from repro.core import SINGLE_CELL_MAX, SendDescriptor, UNetCluster, UNetSession
from repro.core.upcall import UpcallCondition, register_upcall
from repro.sim import Simulator, StatSeries
from repro.sim import batch as _batch


@dataclass
class RttResult:
    size: int
    mean_us: float
    min_us: float
    samples: List[float] = field(default_factory=list)


@dataclass
class BandwidthResult:
    size: int
    bytes_per_second: float
    messages: int
    losses: int


def _build_pair(ni_kind: str, mhz: float, single_cell_optimization: bool = True):
    sim = Simulator()
    cluster = UNetCluster.pair(sim, mhz=mhz, ni_kind=ni_kind)
    if not single_cell_optimization:
        for host in cluster.hosts.values():
            if hasattr(host.ni, "single_cell_optimization"):
                host.ni.single_cell_optimization = False
    kwargs = dict(
        segment_size=512 * 1024, send_ring=128, recv_ring=128, free_ring=128
    )
    sa = cluster.open_session("alice", "bench-a", **kwargs)
    sb = cluster.open_session("bob", "bench-b", **kwargs)
    ch_a, ch_b = cluster.connect_sessions(sa, sb)
    return sim, cluster, sa, sb, ch_a, ch_b


def _echo_one(session: UNetSession, channel_id: int, desc):
    """Echo a received message without copying: inline messages go back
    inline, buffered messages are sent straight from the receive buffers
    and the buffers recycled after injection."""
    if desc.is_inline:
        send = SendDescriptor(channel=channel_id, inline=desc.inline)
        yield from session.send(send)
    else:
        send = SendDescriptor(channel=channel_id, bufs=desc.bufs)
        yield from session.send(send)
        yield session.endpoint.wait_send_complete(send)
        yield from session.repost_free(desc)


def raw_rtt(
    size: int,
    n: int = 8,
    ni_kind: str = "sba200",
    mhz: float = 60.0,
    signal_wakeup: bool = False,
    single_cell_optimization: bool = True,
) -> RttResult:
    """Round-trip time of a ``size``-byte message (Figure 3, 'Raw U-Net').

    ``signal_wakeup`` switches the *receive* notification on both ends
    from polling to a UNIX-signal upcall, the ablation of §4.2.3
    ("approximately another 30 us on each end").
    """
    sim, cluster, sa, sb, ch_a, ch_b = _build_pair(
        ni_kind, mhz, single_cell_optimization
    )
    stats = StatSeries(name=f"rtt-{size}")
    payload = bytes((i * 7 + 3) % 256 for i in range(size))

    def pinger():
        yield from sa.provide_receive_buffers(8)
        if size <= SINGLE_CELL_MAX:
            make = lambda: SendDescriptor(channel=ch_a.ident, inline=payload)
        else:
            offset = sa.alloc(size)
            try:
                yield from sa.write_segment(offset, payload)
            except Exception:
                sa.free(offset, size)
                raise
            make = lambda: SendDescriptor(
                channel=ch_a.ident, bufs=((offset, size),)
            )
        for i in range(n):
            t0 = sim.now
            _o = obs.active
            _sp = (
                _o.begin(t0, "roundtrip", "bench", host="alice")
                if _o is not None
                else None
            )
            yield from sa.send(make())
            desc = yield from sa.recv()
            if signal_wakeup:
                # Signal delivery interposes before the app sees the message.
                yield from sa.host.signal_delivery()
            stats.add(sim.now - t0)
            _m = _metrics.active
            if _m is not None:
                _m.observe("rtt_us", sim.now - t0)
            if _sp is not None:
                _o.annotate(_sp, i=i, bytes=size)
                _o.end(_sp, sim.now)
            assert sa.peek_payload(desc) == payload
            if not desc.is_inline:
                yield from sa.repost_free(desc)

    def ponger():
        yield from sb.provide_receive_buffers(8)
        for _ in range(n):
            desc = yield from sb.recv()
            if signal_wakeup:
                yield from sb.host.signal_delivery()
            yield from _echo_one(sb, ch_b.ident, desc)

    sim.process(pinger(), name="pinger")
    sim.process(ponger(), name="ponger")
    sim.run(until=1e9)
    _o = obs.active
    if _o is not None and cluster.tracer.records_dropped:
        # Surface silent tracer truncation so the report can warn: a
        # clipped ring means per-layer attribution is undercounting.
        _o.bump("tracer.records_dropped", cluster.tracer.records_dropped)
    if len(stats) != n:
        raise RuntimeError(
            f"ping-pong stalled: only {len(stats)}/{n} round trips completed"
        )
    return RttResult(
        size=size, mean_us=stats.mean, min_us=stats.minimum, samples=stats.samples
    )


def rtt_point_on(world, size: int, n: int = 4) -> RttResult:
    """``n`` ping-pongs at ``size`` bytes against an existing pair.

    The measurement phase of :func:`raw_rtt`, split out so checkpointed
    sweeps can run many points against one warmed world.  Processes are
    spawned fresh per call; the world must be quiescent (a previous
    call's processes completed) when this is invoked.
    """
    sim, cluster, sa, sb, ch_a, ch_b = world
    stats = StatSeries(name=f"rtt-{size}")
    payload = bytes((i * 7 + 3) % 256 for i in range(size))

    def pinger():
        yield from sa.provide_receive_buffers(8)
        if size <= SINGLE_CELL_MAX:
            make = lambda: SendDescriptor(channel=ch_a.ident, inline=payload)
        else:
            offset = sa.alloc(size)
            try:
                yield from sa.write_segment(offset, payload)
            except Exception:
                sa.free(offset, size)
                raise
            make = lambda: SendDescriptor(
                channel=ch_a.ident, bufs=((offset, size),)
            )
        for _ in range(n):
            t0 = sim.now
            yield from sa.send(make())
            desc = yield from sa.recv()
            stats.add(sim.now - t0)
            _m = _metrics.active
            if _m is not None:
                _m.observe("rtt_us", sim.now - t0)
            assert sa.peek_payload(desc) == payload
            if not desc.is_inline:
                yield from sa.repost_free(desc)

    def ponger():
        yield from sb.provide_receive_buffers(8)
        for _ in range(n):
            desc = yield from sb.recv()
            yield from _echo_one(sb, ch_b.ident, desc)

    sim.process(pinger(), name="pinger")
    sim.process(ponger(), name="ponger")
    sim.run(until=sim.now + 1e9)
    if len(stats) != n:
        raise RuntimeError(
            f"ping-pong stalled: only {len(stats)}/{n} round trips completed"
        )
    return RttResult(
        size=size, mean_us=stats.mean, min_us=stats.minimum,
        samples=stats.samples,
    )


def warm_rtt_world(
    warmup: int = 200,
    size: int = 32,
    ni_kind: str = "sba200",
    mhz: float = 60.0,
):
    """Build a session pair and run ``warmup`` ping-pongs on it.

    The returned world is the shared warmup prefix for a checkpointed
    fig3-style sweep: every point forks a copy-on-write clone and runs
    its own short measurement via :func:`rtt_point_on`.
    """
    world = _build_pair(ni_kind, mhz, True)
    if warmup:
        rtt_point_on(world, size, n=warmup)
    return world


def mixed_rtt(
    n: int = 200,
    sizes=(0, 16, 32, 48, 128, 256, 512, 1024),
    jitter_us=(0.0, 11.0),
    seed: int = 7,
    ni_kind: str = "sba200",
    mhz: float = 60.0,
) -> RttResult:
    """Mixed-size, jittered-arrival fig3 variant for tail statistics.

    :func:`raw_rtt` pings one size back to back, so every sample lands
    in the same histogram bucket and the reported percentiles
    degenerate to p50 == p99 == p999 — a tail report with no tail.
    This variant cycles through the fig3 size classes (single-cell
    through 22-cell) with a seeded random think time between pings, so
    the ``rtt_us`` distribution genuinely spreads and p999 > p50 is a
    meaningful model property the perf gate can assert.
    """
    import random

    rng = random.Random(seed)
    order = [sizes[i % len(sizes)] for i in range(n)]
    gaps = [rng.uniform(*jitter_us) for _ in range(n)]
    sim, cluster, sa, sb, ch_a, ch_b = _build_pair(ni_kind, mhz, True)
    stats = StatSeries(name="rtt-mixed")
    payloads = {s: bytes((i * 7 + 3) % 256 for i in range(s)) for s in sizes}

    def pinger():
        yield from sa.provide_receive_buffers(8)
        offsets = {}
        for s in sorted({x for x in order if x > SINGLE_CELL_MAX}):
            offset = sa.alloc(s)
            try:
                yield from sa.write_segment(offset, payloads[s])
            except Exception:
                sa.free(offset, s)
                raise
            offsets[s] = offset
        for i, s in enumerate(order):
            if gaps[i]:
                yield sim.timeout(gaps[i])
            t0 = sim.now
            if s <= SINGLE_CELL_MAX:
                desc_out = SendDescriptor(channel=ch_a.ident, inline=payloads[s])
            else:
                desc_out = SendDescriptor(
                    channel=ch_a.ident, bufs=((offsets[s], s),)
                )
            yield from sa.send(desc_out)
            desc = yield from sa.recv()
            stats.add(sim.now - t0)
            _m = _metrics.active
            if _m is not None:
                _m.observe("rtt_us", sim.now - t0)
            assert sa.peek_payload(desc) == payloads[s]
            if not desc.is_inline:
                yield from sa.repost_free(desc)

    def ponger():
        yield from sb.provide_receive_buffers(8)
        for _ in range(n):
            desc = yield from sb.recv()
            yield from _echo_one(sb, ch_b.ident, desc)

    sim.process(pinger(), name="pinger")
    sim.process(ponger(), name="ponger")
    sim.run(until=1e9)
    if len(stats) != n:
        raise RuntimeError(
            f"mixed ping-pong stalled: only {len(stats)}/{n} completed"
        )
    return RttResult(
        size=-1, mean_us=stats.mean, min_us=stats.minimum,
        samples=stats.samples,
    )


def raw_bandwidth(
    size: int,
    n: Optional[int] = None,
    window: int = 32,
    ni_kind: str = "sba200",
    mhz: float = 60.0,
) -> BandwidthResult:
    """Streaming payload bandwidth at one message size (Figure 4).

    Credit-based flow control: the receiver grants ``window//2``-message
    credits on a single-cell reverse message, so no PDU is lost to
    receive-buffer exhaustion and the measurement reflects the pipeline
    bottleneck (i960 per-packet cost vs. wire time).
    """
    world = _build_pair(ni_kind, mhz, True)
    return raw_bandwidth_on(world, size, n=n, window=window)


def raw_bandwidth_on(
    world, size: int, n: Optional[int] = None, window: int = 32
) -> BandwidthResult:
    """:func:`raw_bandwidth`'s measurement phase against an existing pair.

    ``world`` is the tuple :func:`_build_pair` returns.  Splitting the
    build from the measurement lets checkpointed sweeps
    (:mod:`repro.bench.checkpoint`) construct the cluster once and run
    every sweep point against a fork-cloned copy.
    """
    if size <= 0:
        raise ValueError("message size must be positive")
    if n is None:
        # Enough messages that fixed start-up costs are amortized.
        n = max(60, min(400, 200_000 // max(size, 40)))
    sim, cluster, sa, sb, ch_a, ch_b = world
    payload = bytes((i * 13 + 5) % 256 for i in range(size))
    # Large messages span several 4160-byte receive buffers; shrink the
    # window so the outstanding data always has buffers waiting and the
    # outstanding cells cannot overrun the NI's input FIFO.
    from repro.atm.aal5 import cells_for_pdu

    bufs_per_msg = max(1, -(-size // 4160))
    cells_per_msg = cells_for_pdu(size)
    window = max(2, min(window, 100 // bufs_per_msg, 256 // cells_per_msg))
    grant = max(1, window // 2)
    done = {}

    def sender():
        yield from sa.provide_receive_buffers(4)
        credits = window
        if size <= SINGLE_CELL_MAX:
            make = lambda: SendDescriptor(channel=ch_a.ident, inline=payload)
        else:
            offset = sa.alloc(size)
            try:
                yield from sa.write_segment(offset, payload)
            except Exception:
                sa.free(offset, size)
                raise
            make = lambda: SendDescriptor(channel=ch_a.ident, bufs=((offset, size),))
        done["t0"] = sim.now
        for _ in range(n):
            while credits == 0:
                desc = yield from sa.recv()
                credits += grant
                if not desc.is_inline:
                    yield from sa.repost_free(desc)
            yield from sa.send(make())
            credits -= 1
            # Drain any credit that arrived while sending.
            while True:
                desc = sa.recv_poll()
                if desc is None:
                    break
                credits += grant
                if not desc.is_inline:
                    yield from sa.repost_free(desc)

    def receiver():
        n_buffers = min(120, window * bufs_per_msg + 8)
        yield from sb.provide_receive_buffers(n_buffers)
        received = 0
        while received < n:
            desc = yield from sb.recv()
            assert desc.length == size
            received += 1
            if not desc.is_inline:
                yield from sb.repost_free(desc)
            if received % grant == 0 and received < n:
                credit = SendDescriptor(channel=ch_b.ident, inline=b"crdt")
                yield from sb.send(credit)
        done["t1"] = sim.now

    sim.process(sender(), name="sender")
    sim.process(receiver(), name="receiver")
    sim.run(until=sim.now + 1e10)
    if "t1" not in done:
        raise RuntimeError(f"bandwidth run stalled at size {size}")
    elapsed_us = done["t1"] - done["t0"]
    losses = (
        sb.endpoint.no_buffer_drops
        + sb.endpoint.receive_drops
        + cluster.hosts["bob"].ni.input_fifo_drops
    )
    return BandwidthResult(
        size=size,
        bytes_per_second=n * size / (elapsed_us / 1e6),
        messages=n,
        losses=losses,
    )


def sba100_cost_breakup() -> dict:
    """Table 1: the single-cell cost breakdown on the SBA-100.

    Returns both the analytic decomposition (from the cost table plus
    wire times) and the measured end-to-end round trip / 1 KB bandwidth.
    """
    from repro.core.ni.costs import Sba100Costs

    costs = Sba100Costs()
    sim = Simulator()
    cluster = UNetCluster.pair(sim, ni_kind="sba100")
    wire_us = _one_way_wire_us(cluster)
    send_aal5 = costs.aal5_send_per_cell_us + costs.crc_us_per_byte * 48
    recv_aal5 = costs.aal5_recv_per_cell_us + costs.crc_us_per_byte * 48
    trap_level = costs.send_trap_us + wire_us + costs.recv_trap_us
    rtt = raw_rtt(32, n=6, ni_kind="sba100")
    bw = raw_bandwidth(1024, ni_kind="sba100")
    return {
        "trap_level_one_way_us": trap_level,
        "send_overhead_aal5_us": send_aal5,
        "recv_overhead_aal5_us": recv_aal5,
        "total_one_way_us": trap_level + send_aal5 + recv_aal5,
        "send_crc_fraction": costs.crc_us_per_byte * 48 / send_aal5,
        "recv_crc_fraction": costs.crc_us_per_byte * 48 / recv_aal5,
        "measured_rtt_us": rtt.mean_us,
        "measured_bw_1k_bytes_per_s": bw.bytes_per_second,
    }


def fore_interface_stats() -> dict:
    """§4.2.1: the vendor-firmware baseline (~160 us RTT, ~13 MB/s @4 KB)."""
    rtt = raw_rtt(32, n=6, ni_kind="fore")
    bw = raw_bandwidth(4096, ni_kind="fore")
    return {
        "rtt_us": rtt.mean_us,
        "bw_4k_bytes_per_s": bw.bytes_per_second,
    }


def _one_way_wire_us(cluster: UNetCluster) -> float:
    """Fiber + switch latency for a single cell, one way."""
    network = cluster.network
    cell_us = network.cell_time_us()
    out_link = network.switch.output_links[0]
    return (
        cell_us  # host -> switch serialization
        + out_link.propagation_us
        + network.switch.switching_latency_us
        + cell_us  # switch -> host serialization
        + out_link.propagation_us
    )


# ------------------------------------------------- batched delivery pipeline
class _RxCollector:
    """Minimal NI-shaped receive sink: a cell FIFO and a drop counter.

    Shaped exactly like :class:`~repro.core.ni.base.NetworkInterface`'s
    receive side so the bulk-extend batch kernel applies; used by the
    fig4-class pipeline benchmark where real firmware processes would
    only obscure the delivery-path cost being measured.
    """

    __slots__ = ("input_fifo", "input_fifo_drops", "tracer", "_k_rxfifo_drop")

    def __init__(self, sim, capacity: float):
        from repro.sim import Store, Tracer

        self.input_fifo = Store(sim, capacity=capacity, name="collector.rxfifo")
        self.input_fifo_drops = 0
        self.tracer = Tracer()
        self._k_rxfifo_drop = "collector.rxfifo_drop"

    def _rx_sink(self, cell) -> None:
        accepted = self.input_fifo.try_put(cell)
        if not accepted:
            self.input_fifo_drops += 1
            self.tracer.count(self._k_rxfifo_drop)


def build_train_pipeline(
    n_trains: int = 300,
    cells_per_train: int = 12,
    gap_us: Optional[float] = None,
):
    """A fig4-class delivery pipeline: tx link -> switch -> rx FIFO.

    A driver callback pumps ``cells_per_train``-cell trains through a
    2-port switch into an unbounded receive FIFO, with enough idle
    between trains that each train's receive/forward/deliver cascade is
    the only work in its window — the shape on which the homogeneous
    batch kernels (train expansion, fused receives, bulk delivery) all
    engage.  Returns ``(sim, collector)`` unrun, so callers wall-clock
    ``sim.run()`` themselves under batching on/off.
    """
    from repro.atm.cell import Cell
    from repro.atm.link import Link
    from repro.atm.switch import Switch
    from repro.sim import Simulator

    sim = Simulator()
    tx = Link(sim, name="pipeline.tx")
    switch = Switch(sim, 2)
    tx.connect(switch.input_sink(0), train_sink=switch.input_train_sink(0))
    switch.add_route(0, 32, 1, 32)
    collector = _RxCollector(sim, capacity=float("inf"))
    switch.output_links[1].connect(collector._rx_sink)
    cells = [Cell(32, bytes(48), seq=i) for i in range(cells_per_train)]
    if gap_us is None:
        # Past the train's full serialization span, so one train's
        # cascade is always alone in its window.
        gap_us = cells_per_train * tx.cell_time_us(cells[0].wire_bytes) + 60.0

    def pump(i: int) -> None:
        tx.put_train(cells)
        if i + 1 < n_trains:
            sim.schedule_callback(gap_us, pump, i + 1)

    sim.schedule_callback(0.0, pump, 0)
    return sim, collector


# The collector's receive path is deliberately straight-line (see the
# ``unbatched-candidate`` lint rule), so bulk delivery may replace it.
_batch.register_rx_extend(_RxCollector._rx_sink)
