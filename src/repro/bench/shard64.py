"""64-host ring/incast fabric: the sharded engine's scaling scenario.

The paper's figures stop at the eight-node testbed of §4.2; this
scenario shows the simulator scaling past it.  Four islands of sixteen
workstations each hang off their own ASX-200-style switch, and the four
switches form a unidirectional trunk ring (clockwise, deterministic
source routing).  Two traffic phases:

* **ring** — every host streams cells to its global neighbour
  ``(h + 1) mod 64``; border flows cross one trunk.
* **incast** — at a fixed simulated instant every other host targets
  host 0, collapsing onto the trunks into island 0 and host 0's single
  output fiber (the hot-spot pattern §7.8 worries about, scaled up).

The island is the shard grain: each island builds identically under
one plain simulator (baseline), the in-process sharded engine
(verification) or one worker process per shard (parallel), with the
trunks as the only cut edges — built through the
:class:`~repro.sim.shard.ShardContext` API in every mode so the
baseline pays the same per-delivery event cost the sharded runs do.

Metrics are deliberately *tie-insensitive*: per-host arrival-time
multisets (count / ``math.fsum`` over the sorted list / max) and
per-link cell counters.  Same-instant contention for one output fiber
makes *which cell* serializes first an engine-internal tie, but the
multiset of claim instants — and therefore every metric below — is
invariant, so all three modes must agree bit for bit (enforced in
``tests/sim/shard/``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.atm.cell import Cell
from repro.atm.link import Link
from repro.atm.switch import Switch
from repro.sim.shard.coordinator import ShardContext, run_partitioned
from repro.sim.shard.plan import CutEdge, block_owner

#: Ring flow of global host ``g`` uses VCI ``RING_VCI_BASE + g``; the
#: incast flow uses ``INCAST_VCI_BASE + g``.  Globally unique VCIs keep
#: multi-switch route tables collision-free without translation.
RING_VCI_BASE = 32
INCAST_VCI_BASE = 32 + 256


@dataclass(frozen=True)
class Ring64Spec:
    """Scenario parameters (defaults: the BENCH_perf configuration)."""

    n_islands: int = 4
    hosts_per_island: int = 16
    ring_cells: int = 64
    incast_cells: int = 32
    incast_at_us: float = 500.0
    bandwidth_bps: float = 140_000_000.0
    propagation_us: float = 0.3
    switching_latency_us: float = 2.0
    #: Host TX queues are small so ``put`` paces senders to the wire.
    tx_queue_cells: int = 8
    #: Switch output queues absorb the incast hot spot without drops:
    #: drop *order* under same-instant contention is an engine tie, so
    #: a lossless fabric keeps every metric tie-insensitive.
    switch_queue_cells: int = 1_000_000

    @property
    def n_hosts(self) -> int:
        return self.n_islands * self.hosts_per_island


def _trunk_edges(spec: Ring64Spec, n_shards: int, lookahead_us: float):
    """The ring's cut edges, numbered identically by every builder:
    edge ``i`` is the trunk from island ``i`` to island ``(i+1) % N``."""
    edges = []
    for i in range(spec.n_islands):
        edges.append(
            CutEdge(
                edge_id=i,
                name=f"trunk{i}-{(i + 1) % spec.n_islands}",
                src_shard=block_owner(i, spec.n_islands, n_shards),
                dst_shard=block_owner(
                    (i + 1) % spec.n_islands, spec.n_islands, n_shards
                ),
                lookahead_us=lookahead_us,
            )
        )
    return edges


def _route_hops(src_island: int, dst_island: int, n_islands: int) -> List[int]:
    """Clockwise island sequence from source to destination, inclusive."""
    hops = [src_island]
    j = src_island
    while j != dst_island:
        j = (j + 1) % n_islands
        hops.append(j)
    return hops


def _flows(spec: Ring64Spec):
    """(src_host, dst_host, vci) for every flow in the scenario."""
    n = spec.n_hosts
    flows = [(g, (g + 1) % n, RING_VCI_BASE + g) for g in range(n)]
    if spec.incast_cells:
        flows += [(g, 0, INCAST_VCI_BASE + g) for g in range(1, n)]
    return flows


def _driver(sim, tx: Link, g: int, spec: Ring64Spec):
    """One host's traffic: stream to the ring neighbour, then incast."""
    payload = bytes((g % 251,)) * 48
    last = spec.ring_cells - 1
    for i in range(spec.ring_cells):
        yield tx.put(
            Cell(vci=RING_VCI_BASE + g, payload=payload, last=i == last, seq=i)
        )
    if g != 0 and spec.incast_cells:
        wait = spec.incast_at_us - sim.now
        if wait > 0:
            yield sim.timeout(wait)
        last = spec.incast_cells - 1
        for i in range(spec.incast_cells):
            yield tx.put(
                Cell(
                    vci=INCAST_VCI_BASE + g, payload=payload,
                    last=i == last, seq=i,
                )
            )


def build_island(ctx: ShardContext, island: int, spec: Ring64Spec):
    """Construct island ``island`` inside ``ctx.sim``; returns finalize."""
    sim = ctx.sim
    h = spec.hosts_per_island
    trunk_port = h
    multi = spec.n_islands > 1
    switch = Switch(
        sim,
        n_ports=h + (1 if multi else 0),
        bandwidth_bps=spec.bandwidth_bps,
        switching_latency_us=spec.switching_latency_us,
        output_queue_cells=spec.switch_queue_cells,
        propagation_us=spec.propagation_us,
        name=f"sw{island}",
    )

    if multi:
        lookahead = switch.output_links[trunk_port].cut_lookahead_us()
        edges = _trunk_edges(spec, ctx.n_shards, lookahead)
        inbound = edges[(island - 1) % spec.n_islands]
        ctx.register_inlet(inbound, *switch.trunk_inlet(trunk_port))
        switch.bind_trunk_cut(trunk_port, ctx, edges[island])

    # Routes: every flow whose clockwise path crosses this switch.
    for src, dst, vci in _flows(spec):
        src_island, dst_island = src // h, dst // h
        hops = _route_hops(src_island, dst_island, spec.n_islands)
        if island not in hops:
            continue
        in_port = src % h if island == src_island else trunk_port
        out_port = dst % h if island == dst_island else trunk_port
        switch.add_route(in_port, vci, out_port, vci)

    # Hosts: a paced TX fiber, an arrival-recording RX tap, one driver.
    tx_links: List[Link] = []
    arrivals: List[List[float]] = []
    for p in range(h):
        g = island * h + p
        tx = Link(
            sim,
            bandwidth_bps=spec.bandwidth_bps,
            propagation_us=spec.propagation_us,
            name=f"h{g}.tx",
            queue_cells=spec.tx_queue_cells,
        )
        tx.connect(switch.input_sink(p), train_sink=switch.input_train_sink(p))
        seen: List[float] = []

        def rx_sink(cell, _seen=seen, _sim=sim):
            _seen.append(_sim.now)

        switch.output_links[p].connect(rx_sink)
        sim.process(_driver(sim, tx, g, spec), name=f"h{g}")
        tx_links.append(tx)
        arrivals.append(seen)

    def finalize() -> Dict[str, object]:
        hosts = []
        for seen in arrivals:
            ordered = sorted(seen)
            hosts.append(
                {
                    "rx": len(ordered),
                    "ts_sum": math.fsum(ordered).hex(),
                    "ts_max": ordered[-1].hex() if ordered else "empty",
                }
            )
        return {
            "hosts": hosts,
            "switched": switch.cells_switched,
            "unrouted": switch.cells_unrouted,
            "trunk_cells": (
                switch.output_links[trunk_port].cells_sent if multi else 0
            ),
            "tx_cells": [tx.cells_sent for tx in tx_links],
            "tx_dropped": [tx.cells_dropped for tx in tx_links],
        }

    return finalize


def run(
    n_shards: int = 1,
    mode: str = "auto",
    spec: Ring64Spec = None,
    timeout_s: float = 300.0,
) -> Dict[str, object]:
    """Run the scenario; returns ``{"islands": {...}, "coordinator": {...}}``.

    The ``islands`` sub-dict is the A/B comparison surface: identical
    across every ``(n_shards, mode)`` combination.
    """
    spec = spec if spec is not None else Ring64Spec()
    results = run_partitioned(
        build_island,
        spec.n_islands,
        n_shards,
        spec=spec,
        mode=mode,
        timeout_s=timeout_s,
    )
    meta = results.pop("__coordinator__", {"rounds": 0, "shards": n_shards})
    return {"islands": results, "coordinator": meta}
