"""Command-line experiment runner: ``python -m repro.bench.cli [name]``.

Regenerates the paper's tables and figures from the simulated stack and
prints them (optionally writing a combined report file).  Names:

    table1 fore fig3 fig4 table2 fig5 fig6 fig7 fig8 fig9 table3 all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.atm.aal5 import aal5_limit_bandwidth
from repro.bench import (
    Series,
    Table,
    fore_interface_stats,
    raw_bandwidth,
    raw_rtt,
    sba100_cost_breakup,
)
from repro.bench.ip import tcp_bandwidth, tcp_rtt, udp_bandwidth, udp_rtt
from repro.bench.report import print_figure
from repro.bench.uam import (
    uam_get_bandwidth,
    uam_single_cell_rtt,
    uam_store_bandwidth,
    uam_xfer_rtt,
)


def run_table1() -> str:
    r = sba100_cost_breakup()
    table = Table("Table 1: SBA-100 single-cell cost breakup",
                  ["Operation", "Paper (us)", "Measured (us)"])
    table.add_row("1-way send+rcv across switch (trap level)", 21,
                  f"{r['trap_level_one_way_us']:.1f}")
    table.add_row("Send overhead (AAL5)", 7, f"{r['send_overhead_aal5_us']:.1f}")
    table.add_row("Receive overhead (AAL5)", 5, f"{r['recv_overhead_aal5_us']:.1f}")
    table.add_row("Total (one-way)", 33, f"{r['total_one_way_us']:.1f}")
    return str(table)


def run_fore() -> str:
    r = fore_interface_stats()
    table = Table("Fore firmware baseline (§4.2.1)", ["Metric", "Paper", "Measured"])
    table.add_row("round trip", "~160 us", f"{r['rtt_us']:.1f} us")
    table.add_row("bandwidth @4KB", "13 MB/s",
                  f"{r['bw_4k_bytes_per_s'] / 1e6:.1f} MB/s")
    return str(table)


def run_fig3() -> str:
    raw = Series("Raw U-Net")
    for size in (0, 16, 32, 40, 48, 192, 512, 1024):
        raw.add(size, raw_rtt(size, n=4).mean_us)
    uam = Series("UAM")
    for size in (0, 16, 32):
        uam.add(size, uam_single_cell_rtt(size, n=4).mean_us)
    xfer = Series("UAM xfer")
    for size in (48, 256, 1024):
        xfer.add(size, uam_xfer_rtt(size, n=4).mean_us)
    return print_figure("Figure 3: round-trip times (us)", [raw, uam, xfer],
                        "bytes", "us")


def run_fig4() -> str:
    limit = Series("AAL-5 limit")
    raw = Series("Raw U-Net")
    store = Series("UAM store")
    for size in (96, 384, 800, 2048, 4096):
        limit.add(size, aal5_limit_bandwidth(size, 140e6) / 1e6)
        raw.add(size, raw_bandwidth(size).bytes_per_second / 1e6)
    for size in (1024, 2048, 4096):
        store.add(size, uam_store_bandwidth(size).bytes_per_second / 1e6)
    return print_figure("Figure 4: bandwidth (MB/s)", [limit, raw, store],
                        "bytes", "MB/s")


def run_table2() -> str:
    from repro.splitc.machines import ALL_MACHINES

    table = Table("Table 2: machine characteristics",
                  ["Machine", "overhead", "round-trip", "bandwidth"])
    for m in ALL_MACHINES:
        table.add_row(m.name, f"{m.overhead_us:.0f} us",
                      f"{m.round_trip_us:.0f} us",
                      f"{m.bandwidth_bps / 1e6:.0f} MB/s")
    return str(table)


def run_fig5() -> str:
    from repro.splitc.apps import FIGURE5_SUITE
    from repro.splitc.harness import run_on_machine
    from repro.splitc.machines import ATM_CLUSTER, CM5, MEIKO_CS2

    table = Table("Figure 5: Split-C benchmarks normalized to the CM-5",
                  ["Benchmark", "CM-5", "U-Net ATM", "Meiko CS-2"])
    for label, app, params in FIGURE5_SUITE:
        row = {}
        for machine in (CM5, ATM_CLUSTER, MEIKO_CS2):
            result = run_on_machine(machine, app, nprocs=8, label=label, **params)
            if not result.verified:
                raise RuntimeError(f"{label} wrong on {machine.name}")
            row[machine.name] = result.total_us
        cm5 = row["CM-5"]
        table.add_row(label, "1.00", f"{row['U-Net ATM'] / cm5:.2f}",
                      f"{row['Meiko CS-2'] / cm5:.2f}")
    return str(table)


def run_fig6() -> str:
    curves = []
    for kind, net in (("kernel-atm", "ATM"), ("kernel-eth", "Ethernet")):
        s = Series(f"kernel UDP / {net}")
        for size in (16, 256, 1024, 4096):
            s.add(size, udp_rtt(size, kind=kind, n=3).mean_us)
        curves.append(s)
    return print_figure("Figure 6: kernel UDP latency, ATM vs Ethernet (us)",
                        curves, "bytes", "us")


def run_fig7() -> str:
    k_send = Series("kernel UDP (sent)")
    k_recv = Series("kernel UDP (received)")
    unet = Series("U-Net UDP")
    for size in (1000, 2048, 4096, 8000):
        r = udp_bandwidth(size, kind="kernel-atm")
        k_send.add(size, r.send_rate / 1e6)
        k_recv.add(size, r.recv_rate / 1e6)
        unet.add(size, udp_bandwidth(size, kind="unet").recv_rate / 1e6)
    return print_figure("Figure 7: UDP bandwidth (MB/s)",
                        [k_send, k_recv, unet], "bytes", "MB/s")


def run_fig8() -> str:
    curves = []
    for kind, window, label in (("unet", 8192, "U-Net TCP 8K"),
                                ("kernel-atm", 65535, "kernel TCP 64K")):
        s = Series(label)
        for ws in (2048, 4096, 8192):
            s.add(ws, tcp_bandwidth(ws, kind=kind, window=window).bytes_per_second / 1e6)
        curves.append(s)
    return print_figure("Figure 8: TCP bandwidth (MB/s)", curves,
                        "write bytes", "MB/s")


def run_fig9() -> str:
    curves = []
    for label, fn, kind in (("U-Net UDP", udp_rtt, "unet"),
                            ("U-Net TCP", tcp_rtt, "unet"),
                            ("kernel UDP", udp_rtt, "kernel-atm")):
        s = Series(label)
        for size in (8, 64, 1024):
            s.add(size, fn(size, kind=kind, n=3).mean_us)
        curves.append(s)
    return print_figure("Figure 9: UDP/TCP round-trip latency (us)", curves,
                        "bytes", "us")


def run_table3() -> str:
    table = Table("Table 3: U-Net summary",
                  ["Protocol", "RTT (us)", "BW @4KB (Mbit/s)"])
    table.add_row("Raw AAL5", f"{raw_rtt(32, n=4).mean_us:.0f}",
                  f"{raw_bandwidth(4096).bytes_per_second * 8 / 1e6:.0f}")
    table.add_row("Active Messages", f"{uam_single_cell_rtt(32, n=4).mean_us:.0f}",
                  f"{uam_store_bandwidth(4096).bytes_per_second * 8 / 1e6:.0f}")
    table.add_row("UDP", f"{udp_rtt(64, kind='unet', n=4).mean_us:.0f}",
                  f"{udp_bandwidth(4096, kind='unet').recv_rate * 8 / 1e6:.0f}")
    table.add_row("TCP", f"{tcp_rtt(8, kind='unet', n=4).mean_us:.0f}",
                  f"{tcp_bandwidth(4096, kind='unet').bytes_per_second * 8 / 1e6:.0f}")
    table.add_row("Split-C store (via UAM)",
                  f"{uam_single_cell_rtt(31, n=4).mean_us:.0f}",
                  f"{uam_get_bandwidth(4096).bytes_per_second * 8 / 1e6:.0f}")
    return str(table)


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": run_table1,
    "fore": run_fore,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "table2": run_table2,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table3": run_table3,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.cli",
        description="Regenerate the U-Net paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=["all"],
        help=f"which to run: {', '.join(EXPERIMENTS)} or 'all'",
    )
    parser.add_argument("-o", "--output", help="also write the report to a file")
    args = parser.parse_args(argv)
    names = list(EXPERIMENTS) if args.experiments in ([], ["all"]) else args.experiments
    sections = []
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}")
        print(f"== running {name} ==", flush=True)
        text = EXPERIMENTS[name]()
        print(text)
        print()
        sections.append(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write("\n\n".join(sections) + "\n")
        print(f"report written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
