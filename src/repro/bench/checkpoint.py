"""Phase-boundary checkpointing for sweeps that share a warmup prefix.

:mod:`repro.bench.cache` memoizes *whole* sweep points; this module
splits a point into two phases so the expensive half is computed once:

* a **warmup prefix** shared by every point of the sweep — building the
  cluster, booting protocol stacks, running warmup traffic until the
  world is in steady state;
* a per-point **suffix** — the short measurement that actually differs.

Two mechanisms, picked by what the warmed world contains:

* :func:`sweep` — **fork-based cloning** for arbitrary worlds.  The
  warm world is built once in-process and each point runs in a forked
  child against a copy-on-write clone; results come back over a pipe.
  This handles process/generator worlds (whose pending
  :class:`~repro.sim.Event` entries cannot be snapshotted) and costs no
  serialization.  Falls back to rebuilding the warmup per point — with
  bit-identical results, the A/B tests rely on it — when ``os.fork`` is
  unavailable or ``REPRO_SIM_CHECKPOINT=0``.
* :func:`store_snapshot` / :func:`load_snapshot` — **persistent
  snapshots** for callback/timer-only worlds.  The whole warmed
  :class:`~repro.sim.Simulator` (pickling it drags the reachable model
  world along through the bound methods in its calendar) is stored
  content-addressed under the bench-cache directory, keyed like a cache
  entry: parameters, source digest, engine configuration and
  :data:`CHECKPOINT_SCHEMA`.  Editing any model source orphans every
  stored snapshot; bumping the schema retires old layouts in one
  stroke.

Known unsoundness (documented, not defended): a snapshot taken while a
timer is outstanding restores the *same* :class:`TimerHandle` objects,
so restoring twice into the same process aliases their cancellation
state; micro-statistics (near/far push counters) are not part of the
snapshot and restart from zero; and the restored world re-reads engine
configuration (core, batching) from the restoring process, which is a
feature for A/B work and a foot-gun otherwise.  See DESIGN.md §12.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, TypeVar

from repro.bench import cache, parallel

W = TypeVar("W")
T = TypeVar("T")
R = TypeVar("R")

#: Version of the snapshot/checkpoint layout.  Part of every snapshot
#: key *and* of the whole-run cache key (:func:`repro.bench.cache
#: .cache_key`), so a layout change invalidates both kinds of entry.
CHECKPOINT_SCHEMA = 1

#: process-wide counters, reported by benchmarks/bench_perf.py
forked_points = 0
rebuilt_points = 0


def enabled() -> bool:
    """True unless ``REPRO_SIM_CHECKPOINT=0`` disables fork cloning."""
    return os.environ.get("REPRO_SIM_CHECKPOINT", "1") != "0"


def _run_forked(world: W, run_point: Callable[[W, T], R], point: T) -> R:
    """Run one point in a forked child; the parent never sees the
    child's mutations, so ``world`` stays pristine for the next fork."""
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process, exits below
        os.close(read_fd)
        status = 1
        try:
            payload = pickle.dumps(
                run_point(world, point), protocol=pickle.HIGHEST_PROTOCOL
            )
            with os.fdopen(write_fd, "wb") as fh:
                fh.write(payload)
            status = 0
        finally:
            # never fall through to the parent's control flow
            os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as fh:
        payload = fh.read()
    _, wait_status = os.waitpid(pid, 0)
    if wait_status != 0 or not payload:
        raise RuntimeError(
            f"checkpoint child for point {point!r} failed "
            f"(wait status {wait_status}, {len(payload)} bytes)"
        )
    return pickle.loads(payload)


def sweep(
    build_warm: Callable[[], W],
    run_point: Callable[[W, T], R],
    points: Iterable[T],
    use_fork: Optional[bool] = None,
) -> List[R]:
    """Run every point against a warmed world, cloning when possible.

    ``build_warm`` must be deterministic and ``run_point`` must not
    depend on anything outside ``world`` and ``point``: the contract is
    that *fork-clone-then-measure* and *rebuild-then-measure* produce
    identical results, which the A/B tests assert literally.  Results
    are returned in input order.
    """
    global forked_points, rebuilt_points
    points = list(points)
    if not points:
        return []
    if use_fork is None:
        use_fork = enabled() and parallel.fork_available()
    if use_fork:
        world = build_warm()
        results = [_run_forked(world, run_point, point) for point in points]
        forked_points += len(points)
        return results
    # Serial fallback: the warmup re-runs per point.  Slow but exactly
    # equivalent — each point still sees a freshly-warmed world.
    results = [run_point(build_warm(), point) for point in points]
    rebuilt_points += len(points)
    return results


# ------------------------------------------------------- persistent snapshots
def snapshot_dir() -> Path:
    return cache.cache_dir() / "checkpoints"


def snapshot_key(tag: str, params: Any) -> str:
    """Content address of a warm snapshot.

    Keyed exactly like a whole-run cache entry — warmup parameters,
    model sources, engine configuration — plus :data:`CHECKPOINT_SCHEMA`
    so old snapshot layouts are never deserialized by new code.
    """
    from repro.sim import batch, engine

    h = hashlib.sha256()
    h.update(tag.encode())
    h.update(b"\0")
    h.update(cache._canonical(params).encode())
    h.update(b"\0")
    h.update(cache.source_digest().encode())
    h.update(b"\0")
    h.update(engine.current_core().encode())
    h.update(b"\0shards=%d" % engine.shard_count())
    h.update(b"\0")
    h.update(batch.cache_tag().encode())
    h.update(b"\0ckpt=%d" % CHECKPOINT_SCHEMA)
    return h.hexdigest()


def store_snapshot(key: str, sim: Any) -> bool:
    """Pickle a warmed simulator (world included) under ``key``.

    Atomic rename, best-effort like the result cache: a snapshot store
    that cannot *write* is just a slow snapshot store.  A world with
    pending :class:`~repro.sim.Event` entries is a caller bug, not a
    storage hiccup — the engine's typed ``SimulationError`` propagates
    (use :func:`sweep`'s fork path for process worlds).
    """
    directory = snapshot_dir()
    tmp = None
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(sim, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, directory / f"{key}.pkl")
        return True
    except (OSError, pickle.PickleError):
        return False
    finally:
        if tmp is not None and tmp.exists():
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load_snapshot(key: str) -> Any:
    """Return the warmed simulator stored under ``key``, or ``None``.

    Corrupt entries are unlinked and treated as a miss, mirroring
    :func:`repro.bench.cache.lookup`.
    """
    path = snapshot_dir() / f"{key}.pkl"
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except FileNotFoundError:
        return None
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        try:
            os.unlink(path)
        except OSError:
            pass
        return None


def warm_world(
    tag: str,
    params: Any,
    build: Callable[[], Any],
    use_store: Optional[bool] = None,
) -> Any:
    """Build-or-load a warmed callback-only world.

    ``build`` constructs and warms the world, returning its simulator;
    the result is persisted so later *processes* (not just later points)
    skip the warmup.  Falls back to plain ``build()`` when the snapshot
    cannot be stored or checkpointing is disabled.
    """
    if use_store is None:
        use_store = enabled() and cache.enabled()
    if not use_store:
        return build()
    key = snapshot_key(tag, params)
    sim = load_snapshot(key)
    if sim is None:
        sim = build()
        store_snapshot(key, sim)
    return sim


def reset_counters() -> None:
    global forked_points, rebuilt_points
    forked_points = rebuilt_points = 0
