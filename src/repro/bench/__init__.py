"""Benchmark harness shared by the ``benchmarks/`` directory.

* :mod:`repro.bench.micro` -- raw U-Net micro-benchmarks (ping-pong
  latency, windowed streaming bandwidth) against any NI model.
* :mod:`repro.bench.report` -- table/series formatting helpers so every
  benchmark prints rows in the shape the paper reports.
* :mod:`repro.bench.parallel` -- fan independent sweep points out across
  a process pool (results stay bit-identical to a serial run).
"""

from repro.bench.micro import (
    fore_interface_stats,
    raw_bandwidth,
    raw_rtt,
    sba100_cost_breakup,
)
from repro.bench.parallel import parallel_map, sweep_workers
from repro.bench.report import Series, Table, format_bandwidth, format_us

__all__ = [
    "Series",
    "Table",
    "fore_interface_stats",
    "format_bandwidth",
    "format_us",
    "parallel_map",
    "raw_bandwidth",
    "raw_rtt",
    "sba100_cost_breakup",
    "sweep_workers",
]
