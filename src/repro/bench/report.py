"""Row/series formatting so benchmarks print paper-shaped output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


def format_us(value: float) -> str:
    return f"{value:8.1f} us"


def format_bandwidth(bytes_per_second: float) -> str:
    mbytes = bytes_per_second / 1e6
    mbits = bytes_per_second * 8 / 1e6
    return f"{mbytes:6.2f} MB/s ({mbits:6.1f} Mbit/s)"


@dataclass
class Table:
    """A printable table mirroring one of the paper's tables."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def __str__(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(row[i]) for row in cells)) if cells else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(str(h).ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


@dataclass
class Series:
    """One curve of a figure: (x, y) pairs plus a label."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x: float) -> float:
        """Exact-x lookup (benchmarks sweep fixed grids)."""
        return self.ys[self.xs.index(x)]

    def __str__(self) -> str:
        lines = [f"series: {self.label}"]
        for x, y in zip(self.xs, self.ys):
            lines.append(f"  {x:10.1f}  {y:12.3f}")
        return "\n".join(lines)


def ascii_chart(
    series: Sequence[Series], width: int = 64, height: int = 16,
    log_x: bool = False,
) -> str:
    """Render curves as an ASCII scatter chart (one marker per series)."""
    import math

    points = [(s, x, y) for s in series for x, y in zip(s.xs, s.ys)]
    if not points:
        return "(no data)"
    xs = [math.log10(x) if log_x and x > 0 else x for _, x, _ in points]
    ys = [y for _, _, y in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    x_span = (x1 - x0) or 1.0
    y_span = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for index, s in enumerate(series):
        mark = markers[index % len(markers)]
        for x, y in zip(s.xs, s.ys):
            gx = math.log10(x) if log_x and x > 0 else x
            col = int((gx - x0) / x_span * (width - 1))
            row = int((y - y0) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    for i, row in enumerate(grid):
        label = f"{y1 - i * y_span / (height - 1):10.1f} |" if height > 1 else "|"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x0:<10.4g}" + " " * max(0, width - 20) + f"{x1:>10.4g}"
        + ("  (log x)" if log_x else "")
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def print_figure(
    title: str, series: Sequence[Series], x_name: str, y_name: str,
    chart: bool = True,
) -> str:
    lines = [title, "=" * len(title), f"x = {x_name}, y = {y_name}"]
    for s in series:
        lines.append(str(s))
    if chart and any(s.xs for s in series):
        lines.append("")
        lines.append(ascii_chart(series))
    return "\n".join(lines)
