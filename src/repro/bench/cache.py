"""Content-addressed result cache for sweep points.

Every figure sweep is a pure function of (a) the scenario parameters
and (b) the simulator + model source code: the simulation is
deterministic, so re-running an unchanged point is pure waste.  This
module gives :func:`repro.bench.parallel.parallel_map` a persistent
memo keyed by *content*, not by time:

``key = sha256(fn identity || canonical(params) || source digest ||
core || shards || batch tag || checkpoint schema)``

* **fn identity** -- module + qualname of the sweep-point function.
* **canonical(params)** -- a stable rendering of the point's arguments
  (dict keys sorted, floats in hex so ``0.1`` never drifts through a
  repr round-trip).
* **source digest** -- one hash over every ``.py`` file under
  ``repro/`` *and* the benchmark module that defines ``fn``.  Editing
  any model source invalidates every cached point; nothing is ever
  served stale.
* **core** -- the active scheduler core (``calendar``/``heap``), so A/B
  comparisons never read each other's entries.

Entries are pickle files under ``.bench_cache/`` at the repository
root (override with ``REPRO_BENCH_CACHE_DIR``; disable entirely with
``REPRO_BENCH_CACHE=0``).  The cache declines to serve hits while
simulator instrumentation (REPRO_RACE / REPRO_OBS) is active, because
a cached result would skip the monitor side effects the run exists to
observe.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

#: package directory whose sources participate in the digest
_PKG_ROOT = Path(__file__).resolve().parents[1]
#: repository root (…/src/repro/bench/cache.py -> three levels up)
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: process-wide counters, reported by benchmarks/bench_perf.py
hits = 0
misses = 0
stores = 0

_source_digest: Optional[str] = None

#: memoized writability probes, keyed by cache directory path — a
#: read-only or otherwise broken cache location downgrades the cache
#: to a no-op instead of raising on every sweep point.
_writable_probe: dict = {}


def _writable(directory: Path) -> bool:
    key = str(directory)
    cached = _writable_probe.get(key)
    if cached is not None:
        return cached
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe = directory / f".probe.{os.getpid()}.tmp"
        with open(probe, "wb") as fh:
            fh.write(b"ok")
        os.unlink(probe)
        ok = True
    except OSError:
        ok = False
    _writable_probe[key] = ok
    return ok


def enabled() -> bool:
    """True unless ``REPRO_BENCH_CACHE=0``, instrumentation is live, or
    the cache directory cannot be written (declined, never an error)."""
    if os.environ.get("REPRO_BENCH_CACHE", "1") == "0":
        return False
    from repro.sim import engine

    if engine._monitor_factory is not None:
        return False
    return _writable(cache_dir())


def cache_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_CACHE_DIR")
    return Path(override) if override else _REPO_ROOT / ".bench_cache"


def _iter_sources():
    for path in sorted(_PKG_ROOT.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def source_digest() -> str:
    """Digest of every source file under ``repro/`` (memoized)."""
    global _source_digest
    if _source_digest is None:
        h = hashlib.sha256()
        for path in _iter_sources():
            h.update(str(path.relative_to(_PKG_ROOT)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _source_digest = h.hexdigest()
    return _source_digest


def invalidate_source_digest() -> None:
    """Forget the memoized digest (sources changed underneath us)."""
    global _source_digest
    _source_digest = None


def _canonical(value: Any) -> str:
    """Stable, recursive rendering of a scenario parameter value."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (int, str, bytes, bool)) or value is None:
        return repr(value)
    if isinstance(value, (list, tuple)):
        inner = ",".join(_canonical(v) for v in value)
        return f"[{inner}]" if isinstance(value, list) else f"({inner})"
    if isinstance(value, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(value[k])}" for k in sorted(value)
        )
        return f"{{{inner}}}"
    return repr(value)  # dataclass reprs etc.; stable for our params


def _fn_source_digest(fn: Callable) -> str:
    """Hash the file defining ``fn`` when it lives outside ``repro/``
    (the ``benchmarks/bench_fig*.py`` modules)."""
    module = sys.modules.get(fn.__module__)
    path = getattr(module, "__file__", None)
    if path is None:
        return ""
    path = Path(path)
    try:
        path.relative_to(_PKG_ROOT)
        return ""  # already covered by source_digest()
    except ValueError:
        pass
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return ""


def cache_key(fn: Callable, item: Any) -> str:
    from repro.bench import checkpoint
    from repro.sim import batch, engine

    h = hashlib.sha256()
    h.update(f"{fn.__module__}.{fn.__qualname__}".encode())
    h.update(b"\0")
    h.update(_canonical(item).encode())
    h.update(b"\0")
    h.update(source_digest().encode())
    h.update(_fn_source_digest(fn).encode())
    h.update(engine.current_core().encode())
    # Shard count is part of the execution configuration for the same
    # reason the scheduler core is: results are bit-identical across
    # shard counts *by design*, and a cache hit that crossed the
    # boundary would quietly hide the very divergence the A/B runs
    # exist to catch.
    h.update(b"\0shards=%d" % engine.shard_count())
    # Batch mode and the numpy version it kernels against are execution
    # configuration for the same reason, and the checkpoint schema
    # version retires every entry written under an older snapshot
    # layout in one stroke.
    h.update(b"\0")
    h.update(batch.cache_tag().encode())
    h.update(b"\0ckpt=%d" % checkpoint.CHECKPOINT_SCHEMA)
    return h.hexdigest()


def lookup(key: str) -> Tuple[bool, Any]:
    """Return ``(hit, value)``; never raises on a corrupt entry.

    A truncated or unpicklable entry (e.g. a writer killed before the
    atomic rename ever happened, leaving a stale full-size file from an
    older format) is treated as a miss *and* unlinked, so the sweep
    recomputes and overwrites it instead of tripping on it every run.
    """
    global hits, misses
    path = cache_dir() / f"{key}.pkl"
    try:
        with open(path, "rb") as fh:
            value = pickle.load(fh)
    except FileNotFoundError:
        misses += 1
        return False, None
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        return False, None
    hits += 1
    return True, value


def store(key: str, value: Any) -> None:
    """Persist a result; atomic rename so readers never see a torn file."""
    global stores
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / f".{key}.{os.getpid()}.tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, directory / f"{key}.pkl")
        stores += 1
    except (OSError, pickle.PickleError):
        pass  # a cache that cannot write is just a slow cache


def clear() -> int:
    """Delete all cache entries; returns the number removed."""
    _writable_probe.clear()
    removed = 0
    directory = cache_dir()
    if directory.is_dir():
        for path in directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def reset_counters() -> None:
    global hits, misses, stores
    hits = misses = stores = 0
