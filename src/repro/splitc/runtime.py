"""The Split-C runtime (§6).

One :class:`SplitC` instance per processor.  Global arrays are numpy
arrays registered under names (registration order fixes the ids, so it
must match across ranks -- just like static globals in real Split-C).
Dereferencing a global pointer becomes a request/reply Active Message
exchange; bulk operations map onto AM bulk transfers; ``barrier`` is a
counter at rank 0.

Timing instrumentation follows the paper's benchmarks: the time spent
blocked in communication operations is accounted separately from the
(modelled) local computation, giving Figure 5's comm/comp breakdown.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim import Event

K_READ_REQ = 1
K_READ_REP = 2
K_WRITE_REQ = 3
K_WRITE_ACK = 4
K_BULK_PUT = 5
K_GET_REQ = 6
K_GET_REP = 7
K_BARRIER_ARRIVE = 8
K_BARRIER_GO = 9
K_STORE2 = 10

_READ_REQ = struct.Struct(">BIHI")
_READ_REP = struct.Struct(">BI8s")
_WRITE_REQ = struct.Struct(">BIHI8s")
_ACK = struct.Struct(">BI")
_BULK_PUT = struct.Struct(">BIHI")  # + data
_GET_REQ = struct.Struct(">BIHII")
_GET_REP = struct.Struct(">BI")  # + data
_BARRIER = struct.Struct(">BI")
#: two packed (index, value) stores -- the §6 sample sort "packs two
#: values per message during the permutation phase"; 31 bytes = 1 cell.
_STORE2 = struct.Struct(">BHI8sI8s")


class SplitCTimings:
    """Per-rank execution time breakdown (Figure 5's bars)."""

    def __init__(self):
        self.compute_us = 0.0
        self.comm_us = 0.0
        self.total_us = 0.0
        self.messages = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_us": self.total_us,
            "compute_us": self.compute_us,
            "comm_us": self.comm_us,
        }


class SplitC:
    """One Split-C thread of control."""

    def __init__(self, transport, rank: int):
        self.transport = transport
        self.sim = transport.sim
        self.rank = rank
        self.nprocs = transport.nprocs
        self._arrays: List[np.ndarray] = []
        self._names: Dict[str, int] = {}
        self._futures: Dict[int, Event] = {}
        self._next_req = 1
        self._puts_outstanding = 0
        self._put_drain: List[Event] = []
        self._barrier_epoch = 0
        self._barrier_arrivals: Dict[int, int] = {}
        self._barrier_go: Dict[int, Event] = {}
        self._barrier_done: set = set()
        self.timings = SplitCTimings()
        transport.attach(rank, self._on_message)

    # ------------------------------------------------------------ memory
    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Register this rank's part of a global array.

        Must be called in the same order on every rank."""
        if name in self._names:
            raise ValueError(f"array {name!r} already allocated")
        array = np.zeros(shape, dtype=dtype)
        self._names[name] = len(self._arrays)
        self._arrays.append(array)
        return array

    def local(self, name: str) -> np.ndarray:
        return self._arrays[self._names[name]]

    def _name_id(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            raise KeyError(f"global array {name!r} not allocated") from None

    # ------------------------------------------------------------ helpers
    def _new_future(self) -> Tuple[int, Event]:
        req_id = self._next_req
        self._next_req += 1
        event = Event(self.sim)
        self._futures[req_id] = event
        return req_id, event

    def _comm(self, start: float) -> None:
        self.timings.comm_us += self.sim.now - start
        self.timings.messages += 1

    # ------------------------------------------------------------ scalar ops
    def read(self, pe: int, name: str, index: int):
        """Dereference a global pointer: request/reply exchange."""
        array = self.local(name)
        if pe == self.rank:
            return array.flat[index]
        t0 = self.sim.now
        req_id, future = self._new_future()
        msg = _READ_REQ.pack(K_READ_REQ, req_id, self._name_id(name), index)
        yield from self.transport.send(self.rank, pe, msg)
        raw = yield future
        self._comm(t0)
        return np.frombuffer(raw, dtype=array.dtype, count=1)[0]

    def read_async(self, pe: int, name: str, index: int):
        """Split-phase read: returns a future; resolve with read_wait.
        Pipelining these is how real Split-C hides latency."""
        array = self.local(name)
        if pe == self.rank:
            future = Event(self.sim)
            future.succeed(array.flat[index].tobytes())
            return future
        req_id, future = self._new_future()
        msg = _READ_REQ.pack(K_READ_REQ, req_id, self._name_id(name), index)
        yield from self.transport.send(self.rank, pe, msg)
        return future

    def read_wait(self, future, name: str):
        """Wait for a read_async future and decode the value."""
        t0 = self.sim.now
        raw = yield future
        self._comm(t0)
        return np.frombuffer(raw, dtype=self.local(name).dtype, count=1)[0]

    def write(self, pe: int, name: str, index: int, value):
        """Remote scalar write with acknowledgment."""
        array = self.local(name)
        if pe == self.rank:
            array.flat[index] = value
            return
        t0 = self.sim.now
        req_id, future = self._new_future()
        raw_value = np.asarray(value, dtype=array.dtype).tobytes()
        msg = _WRITE_REQ.pack(
            K_WRITE_REQ, req_id, self._name_id(name), index, raw_value
        )
        yield from self.transport.send(self.rank, pe, msg)
        yield future
        self._comm(t0)

    # ------------------------------------------------------------ bulk ops
    def put_bulk(self, pe: int, name: str, start: int, values: np.ndarray):
        """Bulk store into pe's part of the array (async; see sync())."""
        array = self.local(name)
        values = np.ascontiguousarray(values, dtype=array.dtype)
        if pe == self.rank:
            flat = array.reshape(-1)
            flat[start : start + values.size] = values.reshape(-1)
            return
        t0 = self.sim.now
        req_id, _ = self._new_future()
        del self._futures[req_id]  # acked via counter, not future
        header = _BULK_PUT.pack(K_BULK_PUT, req_id, self._name_id(name), start)
        self._puts_outstanding += 1
        yield from self.transport.send_bulk(
            self.rank, pe, header + values.tobytes()
        )
        self._comm(t0)

    def store_scalar2(self, pe: int, name: str, idx1: int, v1, idx2=None, v2=None):
        """Asynchronous one-way store of one or two scalars (Split-C's
        split-phase := assignment); completion via sync()."""
        array = self.local(name)
        if pe == self.rank:
            array.flat[idx1] = v1
            if idx2 is not None:
                array.flat[idx2] = v2
            return
        t0 = self.sim.now
        if idx2 is None:
            idx2, v2 = idx1, v1  # duplicate write is idempotent
        msg = _STORE2.pack(
            K_STORE2, self._name_id(name),
            idx1, np.asarray(v1, dtype=array.dtype).tobytes(),
            idx2, np.asarray(v2, dtype=array.dtype).tobytes(),
        )
        self._puts_outstanding += 1
        yield from self.transport.send(self.rank, pe, msg)
        self._comm(t0)

    def sync(self):
        """Wait until all outstanding bulk puts are acknowledged
        (Split-C's all_store_sync)."""
        t0 = self.sim.now
        while self._puts_outstanding > 0:
            event = Event(self.sim)
            self._put_drain.append(event)
            yield event
        self.timings.comm_us += self.sim.now - t0

    def get_bulk(self, pe: int, name: str, start: int, count: int):
        """Bulk fetch from pe's part of the array."""
        array = self.local(name)
        if pe == self.rank:
            flat = array.reshape(-1)
            return flat[start : start + count].copy()
        t0 = self.sim.now
        req_id, future = self._new_future()
        msg = _GET_REQ.pack(
            K_GET_REQ, req_id, self._name_id(name), start, count
        )
        yield from self.transport.send(self.rank, pe, msg)
        raw = yield future
        self._comm(t0)
        return np.frombuffer(raw, dtype=array.dtype, count=count).copy()

    # ------------------------------------------------------------ barrier
    def barrier(self):
        """All ranks rendezvous (counter at rank 0)."""
        t0 = self.sim.now
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        if self.rank == 0:
            while self._barrier_arrivals.get(epoch, 0) < self.nprocs - 1:
                event = Event(self.sim)
                self._barrier_go[epoch] = event
                yield event
            self._barrier_arrivals.pop(epoch, None)
            go = _BARRIER.pack(K_BARRIER_GO, epoch)
            for pe in range(1, self.nprocs):
                yield from self.transport.send(self.rank, pe, go)
        else:
            arrive = _BARRIER.pack(K_BARRIER_ARRIVE, epoch)
            yield from self.transport.send(self.rank, 0, arrive)
            if epoch not in self._barrier_done:
                event = Event(self.sim)
                self._barrier_go[epoch] = event
                yield event
            self._barrier_done.discard(epoch)
        self.timings.comm_us += self.sim.now - t0

    # ------------------------------------------------------------ collectives
    def allreduce_sum(self, name: str, value: float):
        """Global sum: partials gathered at rank 0, total broadcast.

        ``name`` must identify an array of at least nprocs + 1 slots
        allocated identically on every rank (slot i holds rank i's
        partial; slot nprocs carries the broadcast total).
        """
        array = self.local(name)
        if array.size < self.nprocs + 1:
            raise ValueError(
                f"allreduce array {name!r} needs {self.nprocs + 1} slots"
            )
        yield from self.write(0, name, self.rank, value)
        yield from self.sync()
        yield from self.barrier()
        if self.rank == 0:
            total = float(array[: self.nprocs].sum())
            for pe in range(self.nprocs):
                yield from self.write(pe, name, self.nprocs, total)
            yield from self.sync()
        yield from self.barrier()
        return float(array[self.nprocs])

    def broadcast(self, name: str, root: int = 0):
        """Broadcast root's copy of the whole array to every rank."""
        array = self.local(name)
        if self.rank == root:
            for pe in range(self.nprocs):
                if pe != root:
                    yield from self.put_bulk(pe, name, 0, array)
            yield from self.sync()
        yield from self.barrier()
        return self.local(name)

    # ------------------------------------------------------------ compute
    def compute(self, cm5_us: float):
        """Charge modelled local computation (CM-5-node microseconds,
        scaled by the machine's CPU factor)."""
        t0 = self.sim.now
        yield from self.transport.compute(self.rank, cm5_us)
        self.timings.compute_us += self.sim.now - t0

    # ------------------------------------------------------------ handlers
    def _on_message(self, src: int, raw: bytes):
        kind = raw[0]
        if kind == K_READ_REQ:
            _, req_id, name_id, index = _READ_REQ.unpack(raw)
            value = self._arrays[name_id].flat[index]
            reply = _READ_REP.pack(K_READ_REP, req_id, value.tobytes())
            yield from self.transport.send(self.rank, src, reply)
        elif kind == K_READ_REP:
            _, req_id, value = _READ_REP.unpack(raw)
            self._resolve(req_id, value)
        elif kind == K_WRITE_REQ:
            _, req_id, name_id, index, raw_value = _WRITE_REQ.unpack(raw)
            array = self._arrays[name_id]
            array.flat[index] = np.frombuffer(raw_value, dtype=array.dtype)[0]
            yield from self.transport.send(
                self.rank, src, _ACK.pack(K_WRITE_ACK, req_id)
            )
        elif kind == K_WRITE_ACK:
            _, req_id = _ACK.unpack(raw)
            if req_id in self._futures:
                self._resolve(req_id, None)  # scalar write completion
            else:
                # bulk put acknowledgment: counter-based (all_store_sync)
                self._puts_outstanding -= 1
                if self._puts_outstanding == 0:
                    waiters, self._put_drain = self._put_drain, []
                    for event in waiters:
                        event.succeed()
        elif kind == K_BULK_PUT:
            _, req_id, name_id, start = _BULK_PUT.unpack(raw[: _BULK_PUT.size])
            array = self._arrays[name_id]
            values = np.frombuffer(raw[_BULK_PUT.size :], dtype=array.dtype)
            array.reshape(-1)[start : start + values.size] = values
            yield from self.transport.send(
                self.rank, src, _ACK.pack(K_WRITE_ACK, req_id)
            )
        elif kind == K_GET_REQ:
            _, req_id, name_id, start, count = _GET_REQ.unpack(raw)
            flat = self._arrays[name_id].reshape(-1)
            data = flat[start : start + count].tobytes()
            reply = _GET_REP.pack(K_GET_REP, req_id) + data
            yield from self.transport.send_bulk(self.rank, src, reply)
        elif kind == K_GET_REP:
            _, req_id = _GET_REP.unpack(raw[: _GET_REP.size])
            self._resolve(req_id, raw[_GET_REP.size :])
        elif kind == K_BARRIER_ARRIVE:
            _, epoch = _BARRIER.unpack(raw)
            self._barrier_arrivals[epoch] = self._barrier_arrivals.get(epoch, 0) + 1
            if (
                self._barrier_arrivals[epoch] >= self.nprocs - 1
                and epoch in self._barrier_go
            ):
                self._barrier_go.pop(epoch).succeed()
        elif kind == K_STORE2:
            _, name_id, idx1, v1, idx2, v2 = _STORE2.unpack(raw)
            array = self._arrays[name_id]
            array.flat[idx1] = np.frombuffer(v1, dtype=array.dtype)[0]
            array.flat[idx2] = np.frombuffer(v2, dtype=array.dtype)[0]
            yield from self.transport.send(
                self.rank, src, _ACK.pack(K_WRITE_ACK, 0)
            )
        elif kind == K_BARRIER_GO:
            _, epoch = _BARRIER.unpack(raw)
            if epoch in self._barrier_go:
                self._barrier_go.pop(epoch).succeed()
            else:
                self._barrier_done.add(epoch)

    def _resolve(self, req_id: int, value) -> None:
        future = self._futures.pop(req_id, None)
        if future is not None and not future.triggered:
            future.succeed(value)
