"""Machine models -- Table 2 of the paper.

| Machine    | CPU                | overhead | round-trip | bandwidth |
|------------|--------------------|----------|------------|-----------|
| CM-5       | 33 MHz Sparc-2     | 3 us     | 12 us      | 10 MB/s   |
| Meiko CS-2 | 40 MHz SuperSparc  | 11 us    | 25 us      | 39 MB/s   |
| U-Net ATM  | 50/60 MHz SuperSparc | 6 us   | 71 us      | 14 MB/s   |

``cpu_factor`` is local-computation speed relative to the CM-5's
Sparc-2 (a SuperSPARC retires roughly twice the work per cycle).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineSpec:
    name: str
    #: local computation speed relative to the CM-5 node
    cpu_factor: float
    #: per-message send/receive processing overhead (us)
    overhead_us: float
    #: small-message round-trip latency (us)
    round_trip_us: float
    #: bulk network bandwidth (bytes/sec)
    bandwidth_bps: float

    @property
    def one_way_wire_us(self) -> float:
        """Network one-way latency excluding the two endpoint overheads."""
        return max(1.0, (self.round_trip_us - 2 * self.overhead_us) / 2)

    def compute_us(self, cm5_us: float) -> float:
        """Convert CM-5-node compute time into this machine's time."""
        return cm5_us / self.cpu_factor

    def bulk_wire_us(self, nbytes: int) -> float:
        return nbytes / self.bandwidth_bps * 1e6


CM5 = MachineSpec(
    name="CM-5",
    cpu_factor=1.0,  # 33 MHz Sparc-2
    overhead_us=3.0,
    round_trip_us=12.0,
    bandwidth_bps=10e6,
)

MEIKO_CS2 = MachineSpec(
    name="Meiko CS-2",
    cpu_factor=2.4,  # 40 MHz SuperSparc
    overhead_us=11.0,
    round_trip_us=25.0,
    bandwidth_bps=39e6,
)

ATM_CLUSTER = MachineSpec(
    name="U-Net ATM",
    cpu_factor=3.2,  # 50/60 MHz SuperSparc mix
    overhead_us=6.0,
    round_trip_us=71.0,
    bandwidth_bps=14e6,
)

ALL_MACHINES = (CM5, ATM_CLUSTER, MEIKO_CS2)
