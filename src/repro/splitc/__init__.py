"""Split-C runtime and the seven §6 application benchmarks.

Split-C programs are one thread of control per processor interacting
through reads/writes on global pointers; dereferencing a global pointer
becomes an Active Messages request/reply exchange, and bulk transfers
map onto AM bulk stores/gets (§6).

Two transports implement the communication layer:

* :class:`~repro.splitc.transport.ModelTransport` -- a LogP-style
  machine model parameterized by Table 2 (CPU speed, per-message
  overhead, round-trip latency, network bandwidth).  This is how the
  CM-5 and Meiko CS-2 columns of Figure 5 are produced, and -- with the
  U-Net ATM parameters -- the fast path for the ATM cluster column.
* :class:`~repro.splitc.transport.UNetTransport` -- the real thing:
  Split-C over U-Net Active Messages over the simulated ATM cluster.
  Used to validate that the model transport agrees with the full stack.

The applications compute on real data (numpy) while simulated time is
charged from per-operation cost models, so results are verifiable and
timings faithful.
"""

from repro.splitc.machines import ATM_CLUSTER, CM5, MEIKO_CS2, MachineSpec
from repro.splitc.runtime import SplitC, SplitCTimings
from repro.splitc.transport import ModelTransport, UNetTransport

__all__ = [
    "ATM_CLUSTER",
    "CM5",
    "MEIKO_CS2",
    "MachineSpec",
    "ModelTransport",
    "SplitC",
    "SplitCTimings",
    "UNetTransport",
]
