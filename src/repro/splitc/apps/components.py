"""Connected components (§6, citing Krishnamurthy et al.).

Distributed label propagation on a random undirected graph: each rank
owns a contiguous block of vertices and iterates local sweeps; labels
across cut edges are fetched with scalar global reads (small-message
bound, where the CM-5's low per-message overhead wins) and improvements
are pushed with asynchronous stores.  Runs until a global fixed point.
"""

from __future__ import annotations

import numpy as np

from repro.splitc.apps.costs import MEM_OP_US


def _build_graph(n_total: int, degree: int, seed: int, locality: float = 0.85):
    """Random graph with locality: most edges connect nearby vertices
    (which land on the same rank under the block distribution), a
    fraction are long-range -- the mix the DIMACS inputs exhibit."""
    rng = np.random.default_rng(seed)
    n_edges = n_total * degree // 2
    u = rng.integers(0, n_total, n_edges)
    local = rng.random(n_edges) < locality
    offsets = rng.integers(1, 16, n_edges)
    v_local = (u + offsets) % n_total
    v_far = rng.integers(0, n_total, n_edges)
    v = np.where(local, v_local, v_far)
    mask = u != v
    return np.stack([u[mask], v[mask]], axis=1)


def _serial_components(n_total: int, edges) -> np.ndarray:
    parent = np.arange(n_total)

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    return np.array([find(x) for x in range(n_total)])


def connected_components(
    sc, n_per_proc: int = 1024, degree: int = 3, seed: int = 31,
    max_rounds: int = 30,
):
    nprocs, rank = sc.nprocs, sc.rank
    n_total = n_per_proc * nprocs
    edges = _build_graph(n_total, degree, seed)  # same graph everywhere
    labels = sc.alloc("labels", n_per_proc, dtype=np.int64)
    changed_flags = sc.alloc("changed", nprocs + 1, dtype=np.int64)
    labels[:] = rank * n_per_proc + np.arange(n_per_proc)
    lo, hi = rank * n_per_proc, (rank + 1) * n_per_proc
    # edges touching my vertices
    mine = edges[((edges[:, 0] >= lo) & (edges[:, 0] < hi))
                 | ((edges[:, 1] >= lo) & (edges[:, 1] < hi))]
    local_mask = (
        (mine[:, 0] >= lo) & (mine[:, 0] < hi)
        & (mine[:, 1] >= lo) & (mine[:, 1] < hi)
    )
    local_edges = mine[local_mask]
    cut_edges = mine[~local_mask]
    yield from sc.barrier()

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        changed = False
        # local sweep to a local fixed point (pure computation)
        sweeps = 0
        while True:
            sweeps += 1
            before = labels.copy()
            for a, b in local_edges:
                la, lb = labels[a - lo], labels[b - lo]
                if la != lb:
                    m = min(la, lb)
                    labels[a - lo] = m
                    labels[b - lo] = m
            if np.array_equal(before, labels):
                break
        yield from sc.compute(max(1, sweeps) * len(local_edges) * 3 * MEM_OP_US)
        # cut edges: pipelined split-phase reads of the remote labels
        # (real Split-C overlaps these gets to hide latency)
        batch = []
        for a, b in cut_edges:
            if lo <= a < hi:
                local_v, remote_v = a, b
            else:
                local_v, remote_v = b, a
            pe = int(remote_v // n_per_proc)
            fut = yield from sc.read_async(
                pe, "labels", int(remote_v - lo_of(pe, n_per_proc))
            )
            batch.append((local_v, fut))
        for local_v, fut in batch:
            remote_label = yield from sc.read_wait(fut, "labels")
            my_label = labels[local_v - lo]
            yield from sc.compute(3 * MEM_OP_US)
            # pull-only min: every cut edge appears on both sides, so
            # each owner lowers its own label -- monotone, race-free
            if remote_label < my_label:
                labels[local_v - lo] = remote_label
                changed = True
        yield from sc.sync()
        # global convergence check
        yield from sc.write(0, "changed", rank, 1 if changed else 0)
        yield from sc.sync()
        yield from sc.barrier()
        if rank == 0:
            total = int(changed_flags[:nprocs].sum())
            for pe in range(nprocs):
                yield from sc.write(pe, "changed", nprocs, total)
            yield from sc.sync()
        yield from sc.barrier()
        if int(changed_flags[nprocs]) == 0:
            break
    yield from sc.barrier()

    # verification against serial union-find
    expected = _serial_components(n_total, edges)
    verified = bool(np.array_equal(labels[:], expected[lo:hi]))
    return {"verified": verified, "rounds": rounds}


def lo_of(pe: int, n_per_proc: int) -> int:
    return pe * n_per_proc
