"""The seven Split-C benchmarks of §6 / Figure 5.

Each app is a generator ``app(sc, **params)`` executed once per rank;
it computes on real numpy data (results are verified against a serial
ground truth) while charging modelled CM-5-node compute time, which the
transport scales by the machine's CPU factor.

* blocked matrix multiply,
* sample sort (small-message) and sample sort (bulk),
* radix sort (small-message) and radix sort (bulk),
* connected components,
* conjugate gradient.
"""

from repro.splitc.apps.cg import conjugate_gradient
from repro.splitc.apps.components import connected_components
from repro.splitc.apps.costs import FLOP_US, KEY_OP_US, MEM_OP_US
from repro.splitc.apps.matmul import blocked_matmul
from repro.splitc.apps.radix_sort import radix_sort
from repro.splitc.apps.sample_sort import sample_sort

#: Figure 5's benchmark suite: (label, app, params)
FIGURE5_SUITE = [
    ("matmul", blocked_matmul, {}),
    ("sample sort (small msg)", sample_sort, {"bulk": False}),
    ("sample sort (bulk)", sample_sort, {"bulk": True}),
    ("radix sort (small msg)", radix_sort, {"bulk": False}),
    ("radix sort (bulk)", radix_sort, {"bulk": True}),
    ("connected components", connected_components, {}),
    ("conjugate gradient", conjugate_gradient, {}),
]

__all__ = [
    "FIGURE5_SUITE",
    "FLOP_US",
    "KEY_OP_US",
    "MEM_OP_US",
    "blocked_matmul",
    "conjugate_gradient",
    "connected_components",
    "radix_sort",
    "sample_sort",
]
