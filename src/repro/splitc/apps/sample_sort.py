"""Sample sort (§6): "first samples the keys, then permutes all keys,
and finally sorts the local keys on each processor."

Two variants, as in Figure 5:

* small-message -- the permutation phase sends keys "two values per
  message" with asynchronous stores (the per-message overhead dominates:
  the CM-5 wins this one);
* bulk -- keys are presorted by destination and each rank sends exactly
  one bulk message to every other rank (bandwidth dominates: the ATM
  cluster and Meiko win).
"""

from __future__ import annotations

import numpy as np

from repro.splitc.apps.costs import KEY_OP_US, MEM_OP_US

OVERSAMPLE = 8


def sample_sort(sc, n_per_proc: int = 4096, bulk: bool = False, seed: int = 11):
    nprocs, rank = sc.nprocs, sc.rank
    rng = np.random.default_rng(seed + rank)
    keys = sc.alloc("keys", n_per_proc, dtype=np.int64)
    keys[:] = rng.integers(0, 2**31, n_per_proc)
    splitters = sc.alloc("splitters", max(1, nprocs - 1), dtype=np.int64)
    samples = sc.alloc("samples", nprocs * OVERSAMPLE, dtype=np.int64)
    # destination buffer: a region per sender, sized for the worst skew
    region = 3 * n_per_proc
    recv = sc.alloc("recv", nprocs * region, dtype=np.int64)
    recv_counts = sc.alloc("recv_counts", nprocs, dtype=np.int64)
    # verification arrays: allocated up front (allocation order must be
    # identical on every rank, and must precede any communication)
    counts = sc.alloc("final_counts", nprocs, dtype=np.int64)
    final = sc.alloc("final", nprocs * region, dtype=np.int64)
    recv_counts[:] = -1
    all_keys_before = None
    if rank == 0:
        # rank 0 keeps the global multiset for verification
        parts = [
            np.random.default_rng(seed + r).integers(0, 2**31, n_per_proc)
            for r in range(nprocs)
        ]
        all_keys_before = np.sort(np.concatenate(parts))
    yield from sc.barrier()

    # --- phase 1: sample ------------------------------------------------
    local_sample = rng.choice(keys, OVERSAMPLE, replace=False)
    yield from sc.compute(OVERSAMPLE * KEY_OP_US)
    yield from sc.put_bulk(0, "samples", rank * OVERSAMPLE, local_sample)
    yield from sc.sync()
    yield from sc.barrier()
    if rank == 0:
        pool = np.sort(samples[:])
        yield from sc.compute(len(pool) * np.log2(max(2, len(pool))) * KEY_OP_US)
        chosen = pool[OVERSAMPLE::OVERSAMPLE][: nprocs - 1]
        for pe in range(nprocs):
            yield from sc.put_bulk(pe, "splitters", 0, chosen)
        yield from sc.sync()
    yield from sc.barrier()

    # --- phase 2: permute -------------------------------------------------
    split = splitters[: nprocs - 1]
    dest = np.searchsorted(split, keys, side="right")
    yield from sc.compute(n_per_proc * np.log2(max(2, nprocs)) * KEY_OP_US)
    if bulk:
        # presort local values so each rank sends exactly one message to
        # every other processor
        order = np.argsort(dest, kind="stable")
        yield from sc.compute(n_per_proc * np.log2(n_per_proc) * KEY_OP_US)
        sorted_dest = dest[order]
        sorted_keys = keys[order]
        for pe in range(nprocs):
            lo = np.searchsorted(sorted_dest, pe, side="left")
            hi = np.searchsorted(sorted_dest, pe, side="right")
            chunk = sorted_keys[lo:hi]
            yield from sc.put_bulk(pe, "recv", rank * region, chunk)
            yield from sc.write(pe, "recv_counts", rank, len(chunk))
        yield from sc.sync()
    else:
        # two keys per message, pipelined one-way stores
        cursors = np.zeros(nprocs, dtype=np.int64)
        pending = {}
        for value, pe in zip(keys, dest):
            yield from sc.compute(2 * MEM_OP_US)
            if pe in pending:
                idx1, v1 = pending.pop(pe)
                idx2 = rank * region + cursors[pe]
                cursors[pe] += 1
                yield from sc.store_scalar2(
                    pe, "recv", idx1, v1, idx2, int(value)
                )
            else:
                idx = rank * region + cursors[pe]
                cursors[pe] += 1
                pending[pe] = (idx, int(value))
        for pe, (idx, value) in pending.items():
            yield from sc.store_scalar2(pe, "recv", idx, value)
        yield from sc.sync()
        for pe in range(nprocs):
            yield from sc.write(pe, "recv_counts", rank, int(cursors[pe]))
        yield from sc.sync()
    yield from sc.barrier()

    # --- phase 3: local sort -----------------------------------------------
    parts = [
        recv[r * region : r * region + int(recv_counts[r])]
        for r in range(nprocs)
    ]
    mine = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
    result = np.sort(mine)
    m = max(2, len(mine))
    yield from sc.compute(m * np.log2(m) * KEY_OP_US)
    yield from sc.barrier()

    # --- verification ------------------------------------------------------
    yield from sc.write(0, "final_counts", rank, len(result))
    yield from sc.put_bulk(0, "final", rank * region, result)
    yield from sc.sync()
    yield from sc.barrier()
    verified = True
    if rank == 0:
        gathered = np.concatenate(
            [final[r * region : r * region + int(counts[r])] for r in range(nprocs)]
        )
        boundaries_ok = all(
            final[r * region + int(counts[r]) - 1] <= final[(r + 1) * region]
            for r in range(nprocs - 1)
            if counts[r] > 0 and counts[r + 1] > 0
        )
        verified = bool(
            len(gathered) == nprocs * n_per_proc
            and np.array_equal(np.sort(gathered), all_keys_before)
            and boundaries_ok
        )
    return {"verified": verified}
