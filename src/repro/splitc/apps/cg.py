"""Conjugate gradient solver (§6).

Solves the 2-D Laplacian (5-point stencil) system A x = b on an
m x m grid, distributed in contiguous row strips.  Each iteration:

* halo exchange of boundary rows with the two neighbours (bulk puts),
* local sparse matrix-vector product (5 flops per point),
* two global dot products (partial sums reduced at rank 0, result
  broadcast) and three AXPYs.

The mix of latency-bound reductions and bandwidth-bound halos makes it
a balanced entry in Figure 5.
"""

from __future__ import annotations

import numpy as np

from repro.splitc.apps.costs import FLOP_US


def _laplacian_matvec(p_with_halo, m, rows):
    """5-point stencil on `rows` interior rows (halo rows attached)."""
    center = p_with_halo[1 : rows + 1]
    up = p_with_halo[0:rows]
    down = p_with_halo[2 : rows + 2]
    left = np.zeros_like(center)
    left[:, 1:] = center[:, :-1]
    right = np.zeros_like(center)
    right[:, :-1] = center[:, 1:]
    return 4.0 * center - up - down - left - right


def conjugate_gradient(sc, m: int = 64, iterations: int = 12, seed: int = 41):
    nprocs, rank = sc.nprocs, sc.rank
    if m % nprocs:
        raise ValueError("grid rows must divide evenly across ranks")
    rows = m // nprocs
    rng = np.random.default_rng(seed)  # identical b everywhere
    b_full = rng.standard_normal((m, m))
    b = b_full[rank * rows : (rank + 1) * rows]

    x = np.zeros((rows, m))
    r = b.copy()
    p = sc.alloc("p", (rows + 2, m))  # rows 0 and rows+1 are halo
    sc.alloc("cg_reduce", nprocs + 1)
    p[1 : rows + 1] = r
    yield from sc.barrier()

    def allreduce_sum(value):
        result = yield from sc.allreduce_sum("cg_reduce", float(value))
        return result

    def halo_exchange():
        if rank > 0:
            yield from sc.put_bulk(rank - 1, "p", (rows + 1) * m, p[1])
        if rank < nprocs - 1:
            yield from sc.put_bulk(rank + 1, "p", 0, p[rows])
        yield from sc.sync()
        yield from sc.barrier()
        if rank == 0:
            p[0] = 0.0
        if rank == nprocs - 1:
            p[rows + 1] = 0.0

    residuals = []
    rz = float((r * r).sum())
    yield from sc.compute(2 * rows * m * FLOP_US)
    rz = yield from allreduce_sum(rz)
    for it in range(iterations):
        yield from halo_exchange()
        ap = _laplacian_matvec(p, m, rows)
        yield from sc.compute(5 * rows * m * FLOP_US)
        p_ap = float((p[1 : rows + 1] * ap).sum())
        yield from sc.compute(2 * rows * m * FLOP_US)
        p_ap = yield from allreduce_sum(p_ap)
        alpha = rz / p_ap
        x += alpha * p[1 : rows + 1]
        r -= alpha * ap
        yield from sc.compute(4 * rows * m * FLOP_US)
        rz_new = float((r * r).sum())
        yield from sc.compute(2 * rows * m * FLOP_US)
        rz_new = yield from allreduce_sum(rz_new)
        beta = rz_new / rz
        p[1 : rows + 1] = r + beta * p[1 : rows + 1]
        yield from sc.compute(2 * rows * m * FLOP_US)
        rz = rz_new
        residuals.append(rz)
    yield from sc.barrier()

    # verification: CG on the (ill-conditioned) Laplacian must still cut
    # the residual substantially within the fixed iteration budget
    verified = bool(residuals[-1] < residuals[0] * 0.5)
    return {"verified": verified, "residuals": residuals}
