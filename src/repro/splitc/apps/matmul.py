"""Blocked matrix multiply (§6): "matrices of 4 by 4 blocks ... The main
loop multiplies two blocks while it prefetches the two blocks needed in
the next iteration."

Blocks are distributed round-robin over the ranks.  For each owned C
block the rank walks k, fetching A[i,k] and B[k,j] with bulk gets --
issuing the *next* iteration's gets before multiplying, exactly the
prefetch structure of the paper -- and charges 2*b^3 flops per block
multiply.  This is bandwidth- and CPU-bound: the CM-5 loses on both
(Figure 5's matmul bars).
"""

from __future__ import annotations

import numpy as np

from repro.splitc.apps.costs import FLOP_US


def _owner(bi: int, bj: int, n_blocks: int, nprocs: int) -> int:
    return (bi * n_blocks + bj) % nprocs


def blocked_matmul(sc, n_blocks: int = 4, block: int = 48, seed: int = 7):
    """Returns {'verified': bool}; C is checked against numpy."""
    nprocs = sc.nprocs
    rank = sc.rank
    rng = np.random.default_rng(seed)  # same seed: same global matrices
    n = n_blocks * block
    full_a = rng.standard_normal((n, n))
    full_b = rng.standard_normal((n, n))

    def block_of(m, bi, bj):
        return m[bi * block : (bi + 1) * block, bj * block : (bj + 1) * block]

    # Each rank owns the blocks assigned to it, stored in one flat array
    # per matrix: slot s holds the s-th owned block.
    owned = [
        (bi, bj)
        for bi in range(n_blocks)
        for bj in range(n_blocks)
        if _owner(bi, bj, n_blocks, nprocs) == rank
    ]
    slots = {pair: i for i, pair in enumerate(owned)}
    a = sc.alloc("A", (max(1, len(owned)), block, block))
    b = sc.alloc("B", (max(1, len(owned)), block, block))
    c = sc.alloc("C", (max(1, len(owned)), block, block))
    for s, (bi, bj) in enumerate(owned):
        a[s] = block_of(full_a, bi, bj)
        b[s] = block_of(full_b, bi, bj)
    yield from sc.barrier()

    block_elems = block * block

    def fetch(name, bi, bj):
        owner = _owner(bi, bj, n_blocks, nprocs)
        slot = ((bi * n_blocks + bj) - owner) // nprocs
        # owned blocks are laid out in row-major owned order; compute the
        # slot index the same way the owner did
        idx = sum(
            1
            for pi in range(n_blocks)
            for pj in range(n_blocks)
            if _owner(pi, pj, n_blocks, nprocs) == owner
            and (pi, pj) < (bi, bj)
        )
        data = yield from sc.get_bulk(owner, name, idx * block_elems, block_elems)
        return data.reshape(block, block)

    for s, (bi, bj) in enumerate(owned):
        acc = np.zeros((block, block))
        # prefetch the k=0 operands
        next_a = yield from fetch("A", bi, 0)
        next_b = yield from fetch("B", 0, bj)
        for k in range(n_blocks):
            cur_a, cur_b = next_a, next_b
            if k + 1 < n_blocks:
                # prefetch next iteration's blocks before multiplying
                next_a = yield from fetch("A", bi, k + 1)
                next_b = yield from fetch("B", k + 1, bj)
            acc += cur_a @ cur_b
            yield from sc.compute(2.0 * block * block * block * FLOP_US)
        c[s] = acc
    yield from sc.barrier()

    # verification against the serial product
    expected = full_a @ full_b
    verified = all(
        np.allclose(c[s], block_of(expected, bi, bj)) for s, (bi, bj) in enumerate(owned)
    )
    return {"verified": bool(verified)}
