"""Local computation cost constants, in CM-5-node microseconds.

The 33 MHz Sparc-2 CM-5 node (no vector units used here) sustains
roughly 4 MFLOPS on dense kernels and ~10M simple integer/memory
operations per second.  The transport divides by each machine's
``cpu_factor``, so a SuperSPARC ATM-cluster node runs the same work
~3.2x faster -- which is exactly the CPU edge Figure 5 shows for the
ATM cluster and Meiko over the CM-5.
"""

#: one double-precision floating-point operation
FLOP_US = 0.25
#: one sort-kernel inner-loop operation (compare/move of a key)
KEY_OP_US = 0.12
#: one simple memory/integer operation
MEM_OP_US = 0.08
