"""Radix sort (§6), small-message and bulk variants.

Each pass sorts on one digit: local histogram, a global histogram
exchange to compute every key's destination position, then the
permutation -- pipelined two-key stores (small) or one presorted bulk
message per destination (bulk).  Keys are dealt across ranks by global
rank order between passes, so after the last pass the keys are globally
sorted.
"""

from __future__ import annotations

import numpy as np

from repro.splitc.apps.costs import KEY_OP_US, MEM_OP_US

RADIX_BITS = 8
RADIX = 1 << RADIX_BITS


def radix_sort(
    sc, n_per_proc: int = 4096, key_bits: int = 16, bulk: bool = False,
    seed: int = 23,
):
    nprocs, rank = sc.nprocs, sc.rank
    passes = (key_bits + RADIX_BITS - 1) // RADIX_BITS
    rng = np.random.default_rng(seed + rank)
    n_total = n_per_proc * nprocs
    region = 3 * n_per_proc

    keys = sc.alloc("rkeys", region, dtype=np.int64)
    count = sc.alloc("rcount", 1, dtype=np.int64)
    hist = sc.alloc("rhist", nprocs * RADIX, dtype=np.int64)
    recv = sc.alloc("rrecv", nprocs * region, dtype=np.int64)
    recv_counts = sc.alloc("rrecv_counts", nprocs, dtype=np.int64)
    final = sc.alloc("rfinal", n_total, dtype=np.int64)

    initial = rng.integers(0, 1 << key_bits, n_per_proc)
    keys[:n_per_proc] = initial
    count[0] = n_per_proc
    ground_truth = None
    if rank == 0:
        parts = [
            np.random.default_rng(seed + r).integers(0, 1 << key_bits, n_per_proc)
            for r in range(nprocs)
        ]
        ground_truth = np.sort(np.concatenate(parts))
    yield from sc.barrier()

    for p in range(passes):
        shift = p * RADIX_BITS
        mine = keys[: int(count[0])]
        digits = (mine >> shift) & (RADIX - 1)
        local_hist = np.bincount(digits, minlength=RADIX).astype(np.int64)
        yield from sc.compute(len(mine) * MEM_OP_US)
        # global histogram exchange: every rank publishes its histogram
        # to every other rank
        for pe in range(nprocs):
            yield from sc.put_bulk(pe, "rhist", rank * RADIX, local_hist)
        yield from sc.sync()
        yield from sc.barrier()
        # compute each (digit, src-rank) bucket's global starting position
        table = hist[:].reshape(nprocs, RADIX)  # [src, digit]
        # order: digit-major, then source rank (stable by rank)
        bucket_sizes = table.T.reshape(-1)  # [digit*nprocs + src]
        starts = np.concatenate(([0], np.cumsum(bucket_sizes)[:-1]))
        yield from sc.compute(RADIX * nprocs * MEM_OP_US)
        my_starts = starts.reshape(RADIX, nprocs)[:, rank]
        # keys are dealt to ranks in equal n_per_proc chunks by global
        # position; send each key to its destination
        order = np.argsort(digits, kind="stable")
        yield from sc.compute(len(mine) * KEY_OP_US)
        sorted_keys = mine[order]
        sorted_digits = digits[order]
        global_pos = np.empty(len(mine), dtype=np.int64)
        offset_in_digit = np.zeros(RADIX, dtype=np.int64)
        for i, d in enumerate(sorted_digits):
            global_pos[i] = my_starts[d] + offset_in_digit[d]
            offset_in_digit[d] += 1
        dest_rank = np.minimum(global_pos // n_per_proc, nprocs - 1)
        dest_idx = global_pos - dest_rank * n_per_proc
        yield from sc.compute(len(mine) * MEM_OP_US)

        if bulk:
            for pe in range(nprocs):
                mask = dest_rank == pe
                chunk = sorted_keys[mask]
                # send as (position, value) pairs packed in one bulk
                # message per destination
                idxs = dest_idx[mask]
                packed = np.empty(2 * len(chunk), dtype=np.int64)
                packed[0::2] = idxs
                packed[1::2] = chunk
                yield from sc.put_bulk(pe, "rrecv", rank * region, packed)
                yield from sc.write(pe, "rrecv_counts", rank, len(chunk))
            yield from sc.sync()
        else:
            # one (position, value) message per key -- two values packed
            # in a single-cell asynchronous store
            sent = np.zeros(nprocs, dtype=np.int64)
            for value, pe, idx in zip(sorted_keys, dest_rank, dest_idx):
                yield from sc.compute(2 * MEM_OP_US)
                addr = rank * region + int(sent[pe]) * 2
                sent[pe] += 1
                yield from sc.store_scalar2(
                    int(pe), "rrecv", addr, int(idx), addr + 1, int(value)
                )
            yield from sc.sync()
            for pe in range(nprocs):
                yield from sc.write(pe, "rrecv_counts", rank, int(sent[pe]))
            yield from sc.sync()
        yield from sc.barrier()

        # unpack received (position, value) pairs into the new local keys
        new_keys = np.zeros(n_per_proc, dtype=np.int64)
        got = 0
        for r in range(nprocs):
            cnt = int(recv_counts[r])
            pairs = recv[r * region : r * region + 2 * cnt]
            positions = pairs[0::2]
            values = pairs[1::2]
            new_keys[positions] = values
            got += cnt
        yield from sc.compute(got * MEM_OP_US)
        keys[:n_per_proc] = new_keys
        count[0] = got
        yield from sc.barrier()

    # verification: concatenation across ranks must equal the sorted keys
    yield from sc.put_bulk(0, "rfinal", rank * n_per_proc, keys[:n_per_proc])
    yield from sc.sync()
    yield from sc.barrier()
    verified = True
    if rank == 0:
        verified = bool(np.array_equal(final[:], ground_truth))
    return {"verified": verified}
