"""AM transports for the Split-C runtime.

Both transports move *bytes* produced by the runtime's codec and hand
them to a per-rank message callback.  The callback runs in the
receiving rank's context (its CPU time is charged there) and may itself
send messages.
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim import AnyOf, Event, Resource, Simulator, Store
from repro.splitc.machines import MachineSpec

#: message callback: (src_rank, raw_bytes) -> generator
MessageHandler = Callable[[int, bytes], object]


class ModelTransport:
    """LogP-style transport parameterized by a Table 2 machine spec.

    Per message: the sender's CPU is busy for ``overhead_us``; the
    sender's NIC serializes bulk data at ``bandwidth_bps``; after the
    one-way wire latency the receiver's CPU is busy for ``overhead_us``
    and the handler runs.  Message order is preserved per source.

    Messages from *different* sources that arrive at the same instant
    are delivered in fixed-priority order (lowest source rank first,
    then send order).  The arbitration happens at schedule time: the
    wire latency is strictly positive, so every message landing at
    instant T registers with the receiver's arrival batch before T, and
    a single drain event per (receiver, T) plays the batch back in
    sorted order.  Without this the delivery order — and therefore the
    receive-overhead serialization on the destination CPU — would be an
    accident of heap insertion order, which the schedule-order race
    detector flags and the tie-break perturbation harness confirms as
    metric divergence.
    """

    def __init__(self, sim: Simulator, machine: MachineSpec, nprocs: int):
        if nprocs < 1:
            raise ValueError("need at least one processor")
        self.sim = sim
        self.machine = machine
        self.nprocs = nprocs
        self.cpus = [Resource(sim, 1, name=f"pe{r}.cpu") for r in range(nprocs)]
        self._nic_out: List[Store] = [Store(sim) for _ in range(nprocs)]
        self._handlers: Dict[int, MessageHandler] = {}
        #: per-receiver: arrival instant -> [(src, send seq, data), ...]
        self._arrivals: List[Dict[float, List[Tuple[int, int, bytes]]]] = [
            dict() for _ in range(nprocs)
        ]
        self._arrival_seq = 0
        self.messages = 0
        self.bulk_bytes = 0
        for rank in range(nprocs):
            sim.process(self._nic_pump(rank), name=f"pe{rank}.nic")

    def attach(self, rank: int, handler: MessageHandler) -> None:
        self._handlers[rank] = handler

    # -- sending (generators, called from app/handler context) -----------
    def send(self, src: int, dst: int, data: bytes):
        """Small Active Message: sender busy for one overhead."""
        yield from self.cpus[src].use(self.machine.overhead_us)
        self.messages += 1
        self._nic_out[src].try_put((dst, data, 0))

    def send_bulk(self, src: int, dst: int, data: bytes):
        """Bulk transfer: sender overhead, then the NIC streams it."""
        yield from self.cpus[src].use(self.machine.overhead_us)
        self.messages += 1
        self.bulk_bytes += len(data)
        self._nic_out[src].try_put((dst, data, len(data)))

    # -- internals ---------------------------------------------------------
    def _nic_pump(self, rank: int):
        while True:
            dst, data, bulk_bytes = yield self._nic_out[rank].get()
            if bulk_bytes:
                # serialization onto the network at machine bandwidth
                yield self.sim.timeout(self.machine.bulk_wire_us(bulk_bytes))
            self._post(rank, dst, data)

    def _post(self, src: int, dst: int, data: bytes) -> None:
        """Register an arrival one wire latency from now.

        The first message landing at an instant schedules that instant's
        drain; later same-instant messages only join the batch, so the
        drain sees the complete set (registration strictly precedes the
        arrival instant because ``one_way_wire_us`` > 0)."""
        arrival = self.sim.now + self.machine.one_way_wire_us
        self._arrival_seq += 1
        batch = self._arrivals[dst].get(arrival)
        if batch is None:
            self._arrivals[dst][arrival] = [(src, self._arrival_seq, data)]
            self.sim.schedule_callback_at(arrival, self._drain, dst, arrival)
        else:
            batch.append((src, self._arrival_seq, data))

    def _drain(self, dst: int, arrival: float) -> None:
        batch = self._arrivals[dst].pop(arrival)
        batch.sort()
        self.sim.process(self._deliver_batch(dst, batch))

    def _deliver_batch(self, dst: int, batch: List[Tuple[int, int, bytes]]):
        for src, _seq, data in batch:
            # receive overhead holds the CPU; the handler body runs
            # outside the hold (its own sends re-acquire the CPU)
            yield from self.cpus[dst].use(self.machine.overhead_us)
            handler = self._handlers.get(dst)
            if handler is not None:
                yield from handler(src, data)

    # -- compute charging for the runtime -------------------------------
    def compute(self, rank: int, cm5_us: float):
        """Charge local computation, scaled by the machine's CPU speed."""
        yield from self.cpus[rank].use(self.machine.compute_us(cm5_us))


class UNetTransport:
    """Split-C over real U-Net Active Messages on the simulated cluster.

    Each rank is one workstation running a UAM instance, with channels
    to every other rank.  A single per-rank driver process owns the UAM
    object: it flushes the rank's outbox and polls, so handler execution
    is single-threaded per rank exactly as in the real library.
    """

    SMALL_HANDLER = 1
    BULK_HANDLER = 2
    #: staging region in each peer's UAM memory, per source rank
    STAGE_BYTES = 96 * 1024

    def __init__(self, cluster, nprocs: int, window: int = 8):
        from repro.am import UAM, UamConfig

        self.sim = cluster.sim
        self.cluster = cluster
        self.nprocs = nprocs
        names = cluster.host_names[:nprocs]
        if len(names) < nprocs:
            raise ValueError("cluster has too few hosts")
        self.sessions = []
        self.uams: List = []
        self._handlers: Dict[int, MessageHandler] = {}
        self._outbox: List[Deque[Tuple[int, bytes, bool]]] = [
            deque() for _ in range(nprocs)
        ]
        self._outbox_events: List[List[Event]] = [[] for _ in range(nprocs)]
        self._stage_slot = [[0] * nprocs for _ in range(nprocs)]
        self._rank_of_channel: List[Dict[int, int]] = [dict() for _ in range(nprocs)]
        self._channel_to: List[Dict[int, int]] = [dict() for _ in range(nprocs)]
        cfg = UamConfig(window=window, memory_size=(nprocs + 1) * self.STAGE_BYTES)
        for rank, name in enumerate(names):
            session = cluster.open_session(
                name, f"splitc-{rank}", segment_size=512 * 1024,
                send_ring=128, recv_ring=128, free_ring=128,
            )
            self.sessions.append(session)
            self.uams.append(UAM(session, cfg))
        self._connect_all()
        for rank in range(nprocs):
            self._install_handlers(rank)
        self.started = False

    def _connect_all(self) -> None:
        for a in range(self.nprocs):
            for b in range(a + 1, self.nprocs):
                ch_a, ch_b = self.cluster.connect_sessions(
                    self.sessions[a], self.sessions[b]
                )
                self._channel_to[a][b] = ch_a.ident
                self._channel_to[b][a] = ch_b.ident
                self._rank_of_channel[a][ch_a.ident] = b
                self._rank_of_channel[b][ch_b.ident] = a

    def start(self):
        """Open all UAM channels and launch the drivers; run once."""
        if self.started:
            return
        self.started = True
        for rank in range(self.nprocs):
            for peer, channel in self._channel_to[rank].items():
                yield from self.uams[rank].open_channel(channel)
        for rank in range(self.nprocs):
            self.sim.process(self._driver(rank), name=f"splitc.drv{rank}")

    def attach(self, rank: int, handler: MessageHandler) -> None:
        self._handlers[rank] = handler

    def _install_handlers(self, rank: int) -> None:
        uam = self.uams[rank]

        def small(uam_obj, channel_id, msg, _rank=rank):
            src = self._rank_of_channel[_rank].get(channel_id)
            handler = self._handlers.get(_rank)
            if src is not None and handler is not None:
                yield from handler(src, msg.payload)

        def bulk(uam_obj, channel_id, msg, _rank=rank):
            src = self._rank_of_channel[_rank].get(channel_id)
            handler = self._handlers.get(_rank)
            if src is None or handler is None:
                return
            raw = bytes(uam_obj.memory[msg.base : msg.base + msg.total])
            yield from handler(src, raw)

        uam.register_handler(self.SMALL_HANDLER, small)
        uam.register_handler(self.BULK_HANDLER, bulk)

    # -- sending ------------------------------------------------------------
    def send(self, src: int, dst: int, data: bytes):
        """Queue a small message; the driver transmits it."""
        self._enqueue(src, dst, data, bulk=len(data) > 36)
        return
        yield  # pragma: no cover

    def send_bulk(self, src: int, dst: int, data: bytes):
        self._enqueue(src, dst, data, bulk=True)
        return
        yield  # pragma: no cover

    def _enqueue(self, src: int, dst: int, data: bytes, bulk: bool) -> None:
        self._outbox[src].append((dst, data, bulk))
        waiters, self._outbox_events[src] = self._outbox_events[src], []
        for event in waiters:
            event.succeed()

    def _stage_addr(self, src: int, dst: int) -> int:
        """Rotating staging slots in dst's memory for bulk from src."""
        slot = self._stage_slot[src][dst]
        self._stage_slot[src][dst] = (slot + 1) % 4
        return src * self.STAGE_BYTES + slot * (self.STAGE_BYTES // 4)

    def _driver(self, rank: int):
        uam = self.uams[rank]
        outbox = self._outbox[rank]
        while True:
            while outbox:
                dst, data, bulk = outbox.popleft()
                channel = self._channel_to[rank][dst]
                if bulk:
                    addr = self._stage_addr(rank, dst)
                    yield from uam.store(
                        channel, data, remote_addr=addr,
                        handler=self.BULK_HANDLER,
                    )
                else:
                    yield from uam.request(channel, self.SMALL_HANDLER, data)
            progressed = yield from uam.poll()
            if progressed or outbox:
                continue
            wakeup = Event(self.sim)
            self._outbox_events[rank].append(wakeup)
            recv = uam.session.endpoint.wait_recv(uam.session.caller)
            # arm the retransmission timer only while something is
            # actually outstanding: idle drivers must be quiescent
            needs_timer = any(
                peer.unacked or peer.ack_owed for peer in uam._peers.values()
            )
            if needs_timer:
                timer = self.sim.timeout(uam.cfg.rto_us)
                yield AnyOf(self.sim, [wakeup, recv, timer])
                if timer.triggered and not (wakeup.triggered or recv.triggered):
                    yield from uam.poll_wait(timeout_us=1.0)
            else:
                yield AnyOf(self.sim, [wakeup, recv])

    # -- compute charging -------------------------------------------------
    def compute(self, rank: int, cm5_us: float):
        """Charge local computation on the rank's real host CPU (the ATM
        cluster machines are ~3.2x a CM-5 node)."""
        from repro.splitc.machines import ATM_CLUSTER

        host = self.sessions[rank].host
        yield from host.cpu.compute_raw(cm5_us / ATM_CLUSTER.cpu_factor)
