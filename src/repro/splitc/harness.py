"""Execution harness for the Split-C benchmarks (Figure 5).

``run_on_machine`` runs an app on a LogP machine model;
``run_on_unet_cluster`` runs the same app over the full simulated U-Net
stack.  Both return an :class:`AppResult` with the execution-time
breakdown and the app's self-verification verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.sim import Simulator
from repro.splitc.machines import MachineSpec
from repro.splitc.runtime import SplitC
from repro.splitc.transport import ModelTransport, UNetTransport


@dataclass
class AppResult:
    machine: str
    app: str
    total_us: float
    compute_us: float  # mean across ranks
    comm_us: float  # mean across ranks
    verified: bool
    per_rank: List[Dict] = field(default_factory=list)

    @property
    def comm_fraction(self) -> float:
        busy = self.compute_us + self.comm_us
        return self.comm_us / busy if busy else 0.0


def _execute(sim, transport, app: Callable, nprocs: int, label: str,
             machine_name: str, start=None, **params) -> AppResult:
    scs = [SplitC(transport, r) for r in range(nprocs)]
    results: Dict[int, Dict] = {}
    t_window = {}

    def wrapped(sc):
        yield from sc.barrier()
        t_window.setdefault("t0", sc.sim.now)
        t_start = sc.sim.now
        # Generic dispatch into the app body, once per PE for the whole run.
        out = yield from app(sc, **params)  # simcost: disable=cost-kwargs-call
        yield from sc.barrier()
        sc.timings.total_us = sc.sim.now - t_start
        t_window["t1"] = sc.sim.now
        results[sc.rank] = out or {}

    pe_names = [f"{label}.pe{sc.rank}" for sc in scs]

    def boot():
        if start is not None:
            yield from start()
        for sc, pe_name in zip(scs, pe_names):
            sim.process(wrapped(sc), name=pe_name)

    sim.process(boot(), name=f"{label}.boot")
    sim.run(until=1e12)
    if len(results) != nprocs:
        raise RuntimeError(
            f"{label} on {machine_name}: only {len(results)}/{nprocs} ranks finished"
        )
    verified = all(r.get("verified", True) for r in results.values())
    return AppResult(
        machine=machine_name,
        app=label,
        total_us=t_window["t1"] - t_window["t0"],
        compute_us=sum(sc.timings.compute_us for sc in scs) / nprocs,
        comm_us=sum(sc.timings.comm_us for sc in scs) / nprocs,
        verified=verified,
        per_rank=[results[r] for r in range(nprocs)],
    )


def run_on_machine(
    machine: MachineSpec, app: Callable, nprocs: int = 8, label: str = "",
    **params,
) -> AppResult:
    """Run ``app`` on a Table 2 machine model."""
    sim = Simulator()
    transport = ModelTransport(sim, machine, nprocs)
    return _execute(
        sim, transport, app, nprocs,
        label or app.__name__, machine.name, **params,
    )


def run_on_unet_cluster(
    app: Callable, nprocs: int = 8, label: str = "", cluster=None, **params
) -> AppResult:
    """Run ``app`` over real UAM on the simulated ATM cluster."""
    from repro.core import UNetCluster

    if cluster is None:
        sim = Simulator()
        cluster = UNetCluster(
            sim, [(f"node{i}", 60.0 if i < 5 else 50.0) for i in range(nprocs)]
        )
    sim = cluster.sim
    transport = UNetTransport(cluster, nprocs)
    return _execute(
        sim, transport, app, nprocs,
        label or app.__name__, "U-Net ATM (full stack)",
        start=transport.start, **params,
    )
