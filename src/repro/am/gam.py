"""The UAM library: reliable request/reply and bulk transfer (§5.1).

Every ``UAM`` instance wraps one :class:`~repro.core.api.UNetSession`
and exposes:

* ``register_handler(index, fn)`` -- install a handler; handlers are
  generators ``fn(uam, channel_id, msg)`` and may call
  ``yield from uam.reply(...)`` when handling a *request*.
* ``request(channel, handler, payload)`` -- send a request (<= 36 bytes
  rides in a single cell).
* ``store(channel, data, remote_addr, handler)`` -- reliable bulk store
  into the peer's exposed memory, fragmented into 4160-byte buffers.
* ``get(channel, remote_addr, local_addr, length, handler)`` -- fetch
  remote memory.
* ``poll()`` / ``poll_wait()`` -- the explicit-polling receive model
  the paper's UAM uses (§5.1.2).

Reliability is a fixed-window, go-back-N scheme with cumulative
acknowledgments piggybacked on every message and explicit ACKs for
one-way traffic, exactly as §5.1.1 describes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.am import wire
from repro.am.wire import (
    MSG_ACK,
    MSG_GET,
    MSG_REPLY,
    MSG_REQUEST,
    MSG_XFER,
    MSG_XFER_REPLY,
    SMALL_PAYLOAD_MAX,
    XFER_CHUNK,
    Message,
)
from repro import obs
from repro.obs import metrics as _metrics
from repro.core import SendDescriptor, UNetSession
from repro.core.errors import UNetError
from repro.sim import AnyOf


class UamError(UNetError):
    """Misuse of the Active Messages layer (bad handler, reply rules...)."""


@dataclass
class UamConfig:
    """Tunables of the UAM layer, defaults per §5.1."""

    #: Fixed flow-control window w; 4w buffers are preallocated.
    window: int = 8
    #: Transmit/receive buffer size: 4160 data bytes (§5.2).
    buffer_size: int = wire.XFER_BUFFER
    #: Retransmission timeout. The 1995 library used ~1 ms user timers.
    rto_us: float = 1000.0
    #: Library overhead on each send operation.
    send_overhead_us: float = 1.3
    #: Handler dispatch overhead per received message.
    dispatch_overhead_us: float = 1.2
    #: Size of the memory region exposed to bulk store/get.
    memory_size: int = 1 << 20


class _Peer:
    """Per-channel reliability state."""

    def __init__(self, channel_id: int, window: int):
        self.channel_id = channel_id
        self.window = window
        self.next_seq = 0
        self.expected = 0
        self.ack_owed = False
        self.ack_urgent = False
        self.rx_since_ack = 0
        # go-back-N retransmission store: (seq, type, handler, payload,
        # base, offset, total)
        self.unacked: Deque[Tuple] = deque()
        self.tx_slots: List[int] = []  # w preallocated buffer offsets

    @property
    def window_free(self) -> bool:
        return len(self.unacked) < self.window

    @property
    def last_ack(self) -> int:
        return (self.expected - 1) & 0xFF


class UAM:
    """U-Net Active Messages over one endpoint session."""

    def __init__(self, session: UNetSession, config: Optional[UamConfig] = None):
        self.session = session
        self.cfg = config if config is not None else UamConfig()
        if self.cfg.window >= 128:
            raise UamError("window must be < 128 (8-bit sequence space)")
        self.host = session.host
        self.sim = session.host.sim
        self.handlers: Dict[int, Callable] = {}
        #: Memory region remote peers can store into / get from.
        self.memory = bytearray(self.cfg.memory_size)
        self._peers: Dict[int, _Peer] = {}
        self._outbox: Deque[Tuple] = deque()
        self._in_handler: Optional[Message] = None
        self._xfers_in: Dict[Tuple[int, int, int], int] = {}
        # statistics (§7.4: all protocol state is visible to the app)
        self.retransmissions = 0
        self.acks_sent = 0
        self.duplicates = 0
        self.out_of_order_drops = 0
        self.requests_sent = 0
        self.replies_sent = 0
        self.xfer_bytes_in = 0
        self.memory_range_errors = 0
        # Per-endpoint metric keys, precomputed off the hot path.
        self._mk_tx = f"am.{self.host.name}.tx"
        self._mk_rx = f"am.{self.host.name}.rx"

    # -- set-up ----------------------------------------------------------------
    def register_handler(self, index: int, fn: Callable) -> None:
        if not 0 <= index <= 255:
            raise UamError("handler index must fit one byte")
        self.handlers[index] = fn

    def open_channel(self, channel_id: int):
        """Preallocate 4w buffers for a channel (§5.1.1): w transmit
        slots in the segment plus 2w receive buffers on the free queue
        (the remaining w worth of reply slots share the transmit pool
        since replies are windowed with requests here)."""
        if channel_id in self._peers:
            raise UamError(f"channel {channel_id} already open")
        peer = _Peer(channel_id, self.cfg.window)
        for _ in range(self.cfg.window):
            peer.tx_slots.append(self.session.alloc(self.cfg.buffer_size))
        yield from self.session.provide_receive_buffers(
            2 * self.cfg.window, size=self.cfg.buffer_size
        )
        self._peers[channel_id] = peer

    # -- sending (application context) ---------------------------------------
    def request(self, channel_id: int, handler: int, payload: bytes = b""):
        """Send a request Active Message (up to 36 bytes single-cell)."""
        if self._in_handler is not None:
            raise UamError("use reply() inside handlers, not request()")
        if len(payload) > SMALL_PAYLOAD_MAX:
            raise UamError(
                f"request payload limited to {SMALL_PAYLOAD_MAX} bytes; "
                "use store()/get() for bulk data"
            )
        peer = self._peer(channel_id)
        yield from self._wait_window(peer)
        yield from self._emit(peer, MSG_REQUEST, handler, payload)
        self.requests_sent += 1

    def reply(self, handler: int, payload: bytes = b""):
        """Send the reply to the request currently being handled.

        Only legal inside a *request* handler; reply handlers may not
        reply again (live-lock prevention, §5)."""
        msg = self._in_handler
        if msg is None:
            raise UamError("reply() is only legal inside a handler")
        if msg.type not in (MSG_REQUEST,):
            raise UamError("a reply handler cannot send another reply (§5)")
        if len(payload) > SMALL_PAYLOAD_MAX:
            raise UamError("reply payload limited to one cell; use store()")
        self._outbox.append(
            (self._handling_channel, MSG_REPLY, handler, payload, 0, 0, 0)
        )
        self.replies_sent += 1
        return
        yield  # pragma: no cover - generator form for API uniformity

    def store(self, channel_id: int, data: bytes, remote_addr: int, handler: int = 0):
        """Reliable bulk store into the peer's memory (GAM am_store)."""
        if self._in_handler is not None:
            raise UamError("store() may not be called from a handler")
        peer = self._peer(channel_id)
        total = len(data)
        offsets = range(0, total, XFER_CHUNK) if total else [0]
        for off in offsets:
            chunk = data[off : off + XFER_CHUNK]
            yield from self._wait_window(peer)
            yield from self._emit(
                peer, MSG_XFER, handler, chunk,
                base=remote_addr, offset=off, total=total,
            )

    def get(
        self, channel_id: int, remote_addr: int, local_addr: int,
        length: int, handler: int = 0,
    ):
        """Fetch peer memory into local memory (GAM am_get).  The
        completion handler runs locally once all data has arrived."""
        if self._in_handler is not None:
            raise UamError("get() may not be called from a handler")
        peer = self._peer(channel_id)
        yield from self._wait_window(peer)
        yield from self._emit(
            peer, MSG_GET, handler, b"",
            base=remote_addr, offset=local_addr, total=length,
        )

    # -- receiving -----------------------------------------------------------------
    def poll(self):
        """Drain the receive queue, dispatch handlers, send what the
        handlers produced, and acknowledge (§5.1.2).  Returns True if
        any message was processed."""
        progressed = False
        while True:
            desc = self.session.recv_poll()
            if desc is None:
                break
            progressed = True
            yield from self.host.compute(self.session.host_recv_cost_us)
            raw = self.session.peek_payload(desc)
            if not desc.is_inline:
                yield from self.session.repost_free(desc)
            try:
                msg = wire.decode(raw)
            except ValueError:
                continue
            if desc.channel not in self._peers:
                continue
            yield from self._handle(desc.channel, msg)
        sent = yield from self._drain_outbox()
        progressed = progressed or sent
        # Explicit acks are sent lazily: the next outgoing data message
        # usually piggybacks the ack, so only half-window batches force
        # an explicit one (keeps the send window from stalling).
        for peer in self._peers.values():
            if peer.ack_owed and (
                peer.ack_urgent
                or peer.rx_since_ack >= max(1, peer.window // 2)
            ):
                yield from self._send_ack(peer)
        return progressed

    def poll_wait(self, timeout_us: Optional[float] = None):
        """Poll; if nothing is pending, block until a message arrives or
        the retransmission timeout fires (then go-back-N retransmit)."""
        timeout_us = timeout_us if timeout_us is not None else self.cfg.rto_us
        progressed = yield from self.poll()
        if progressed:
            return True
        wait = self.session.endpoint.wait_recv(self.session.caller)
        timer = self.sim.timeout(timeout_us)
        yield AnyOf(self.sim, [wait, timer])
        if not wait.triggered:
            # Idle timeout: flush any acks we still owe (so the peer's
            # window can clear without retransmission), then go-back-N.
            for peer in self._peers.values():
                if peer.ack_owed:
                    yield from self._send_ack(peer)
            yield from self._retransmit_all()
            return False
        return (yield from self.poll())

    # -- internals: reliability ------------------------------------------------------
    def _peer(self, channel_id: int) -> _Peer:
        try:
            return self._peers[channel_id]
        except KeyError:
            raise UamError(f"channel {channel_id} is not open for UAM") from None

    def _wait_window(self, peer: _Peer):
        """Paper §5.1.2: 'If the send window is full, the sender polls
        for incoming messages until there is space in the send window or
        until a time-out occurs and all unacknowledged messages are
        retransmitted.'"""
        deadline = self.sim.now + self.cfg.rto_us
        while not peer.window_free:
            progressed = yield from self.poll()
            if progressed:
                deadline = self.sim.now + self.cfg.rto_us
                continue
            wait = self.session.endpoint.wait_recv(self.session.caller)
            timer = self.sim.timeout(max(0.0, deadline - self.sim.now))
            yield AnyOf(self.sim, [wait, timer])
            if not wait.triggered:
                yield from self._retransmit_all()
                deadline = self.sim.now + self.cfg.rto_us

    def _emit(
        self, peer: _Peer, msg_type: int, handler: int, payload: bytes,
        base: int = 0, offset: int = 0, total: int = 0,
    ):
        seq = peer.next_seq
        peer.next_seq = (seq + 1) & 0xFF
        peer.unacked.append((seq, msg_type, handler, payload, base, offset, total))
        yield from self._transmit(peer, seq, msg_type, handler, payload, base, offset, total)

    def _transmit(
        self, peer: _Peer, seq: int, msg_type: int, handler: int,
        payload: bytes, base: int, offset: int, total: int,
    ):
        raw = wire.encode(
            msg_type, seq, peer.last_ack, handler, payload, base, offset, total
        )
        # Every outgoing message piggybacks the cumulative ack (§5.1.1).
        peer.ack_owed = False
        peer.ack_urgent = False
        peer.rx_since_ack = 0
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "uam_tx", "uam", host=self.host.name)
            if _o is not None
            else None
        )
        _m = _metrics.active
        if _m is not None:
            _m.count(self._mk_tx)
        yield from self.host.compute(self.cfg.send_overhead_us)
        if len(raw) <= 40:
            desc = SendDescriptor(channel=peer.channel_id, inline=raw)
        else:
            slot = peer.tx_slots[seq % peer.window]
            yield from self.session.write_segment(slot, raw)
            desc = SendDescriptor(channel=peer.channel_id, bufs=((slot, len(raw)),))
        yield from self.session.send(desc)
        if _sp is not None:
            _o.annotate(_sp, seq=seq, type=msg_type, bytes=len(raw))
            _o.end(_sp, self.sim.now)

    def _send_ack(self, peer: _Peer):
        raw = wire.encode(MSG_ACK, 0, peer.last_ack, 0)
        peer.ack_owed = False
        peer.ack_urgent = False
        peer.rx_since_ack = 0
        self.acks_sent += 1
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "uam_ack", "uam", host=self.host.name)
            if _o is not None
            else None
        )
        yield from self.host.compute(self.cfg.send_overhead_us)
        yield from self.session.send(
            SendDescriptor(channel=peer.channel_id, inline=raw)
        )
        if _sp is not None:
            _o.end(_sp, self.sim.now)

    def _process_ack(self, peer: _Peer, ack: int) -> None:
        while peer.unacked and ((ack - peer.unacked[0][0]) & 0xFF) < 128:
            peer.unacked.popleft()

    def _retransmit_all(self):
        """Go-back-N: resend every unacknowledged message, in order."""
        for peer in self._peers.values():
            for (seq, msg_type, handler, payload, base, offset, total) in list(
                peer.unacked
            ):
                self.retransmissions += 1
                yield from self._transmit(
                    peer, seq, msg_type, handler, payload, base, offset, total
                )

    # -- internals: dispatch --------------------------------------------------------
    def _handle(self, channel_id: int, msg: Message):
        peer = self._peers[channel_id]
        self._process_ack(peer, msg.ack)
        if msg.type == MSG_ACK:
            return
        if msg.seq != peer.expected:
            if ((peer.expected - msg.seq - 1) & 0xFF) < 128:
                self.duplicates += 1
                # Re-acknowledge immediately so the peer stops resending.
                peer.ack_owed = True
                peer.ack_urgent = True
            else:
                self.out_of_order_drops += 1  # gap: go-back-N will resend
            return
        peer.expected = (peer.expected + 1) & 0xFF
        peer.ack_owed = True
        peer.rx_since_ack += 1
        if msg.type in (MSG_XFER, MSG_XFER_REPLY):
            # Bulk chunks are large (long wire times): acknowledge at the
            # end of the poll batch so the sender's window never stalls
            # into its retransmission timeout.
            peer.ack_urgent = True
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "uam_dispatch", "uam", host=self.host.name)
            if _o is not None
            else None
        )
        _m = _metrics.active
        if _m is not None:
            _m.count(self._mk_rx)
        try:
            yield from self.host.compute(self.cfg.dispatch_overhead_us)
            if msg.type in (MSG_REQUEST, MSG_REPLY):
                yield from self._dispatch(channel_id, msg)
            elif msg.type in (MSG_XFER, MSG_XFER_REPLY):
                yield from self._handle_xfer(channel_id, msg)
            elif msg.type == MSG_GET:
                self._handle_get(channel_id, msg)
        finally:
            if _sp is not None:
                _o.annotate(_sp, seq=msg.seq, type=msg.type)
                _o.end(_sp, self.sim.now)

    def _dispatch(self, channel_id: int, msg: Message):
        fn = self.handlers.get(msg.handler)
        if fn is None:
            raise UamError(f"no handler registered at index {msg.handler}")
        self._in_handler = msg
        self._handling_channel = channel_id
        try:
            yield from fn(self, channel_id, msg)
        finally:
            self._in_handler = None

    def _handle_xfer(self, channel_id: int, msg: Message):
        if msg.base + msg.total > len(self.memory):
            self.memory_range_errors += 1
            return
        # Copy from the receive buffer into the destination data
        # structure -- the second copy of §5.2's per-byte cost.
        yield from self.host.copy(len(msg.payload))
        self.memory[msg.base + msg.offset : msg.base + msg.offset + len(msg.payload)] = (
            msg.payload
        )
        self.xfer_bytes_in += len(msg.payload)
        key = (channel_id, msg.base, msg.total)
        got = self._xfers_in.get(key, 0) + len(msg.payload)
        if got < msg.total:
            self._xfers_in[key] = got
            return
        self._xfers_in.pop(key, None)
        fn = self.handlers.get(msg.handler)
        if fn is not None:
            self._in_handler = msg
            self._handling_channel = channel_id
            try:
                yield from fn(self, channel_id, msg)
            finally:
                self._in_handler = None

    def _handle_get(self, channel_id: int, msg: Message) -> None:
        """Queue the requested data as reply-class bulk chunks."""
        remote_addr, local_addr, length = msg.base, msg.offset, msg.total
        if remote_addr + length > len(self.memory):
            self.memory_range_errors += 1
            return
        offsets = range(0, length, XFER_CHUNK) if length else [0]
        for off in offsets:
            chunk = bytes(self.memory[remote_addr + off : remote_addr + off + min(XFER_CHUNK, length - off)])
            self._outbox.append(
                (channel_id, MSG_XFER_REPLY, msg.handler, chunk,
                 local_addr, off, length)
            )

    def _drain_outbox(self):
        """Send handler-produced messages (replies, get data) as window
        space allows; the rest waits for the next poll."""
        sent = False
        while self._outbox:
            channel_id, msg_type, handler, payload, base, offset, total = (
                self._outbox[0]
            )
            peer = self._peers[channel_id]
            if not peer.window_free:
                break
            self._outbox.popleft()
            yield from self._emit(
                peer, msg_type, handler, payload, base, offset, total
            )
            sent = True
        return sent
