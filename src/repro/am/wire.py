"""UAM wire formats.

Every UAM message starts with a 4-byte header::

    type(1) | seq(1) | ack(1) | handler(1)

``seq`` numbers data-class messages modulo 256; ``ack`` cumulatively
acknowledges the peer's stream on *every* message (piggybacking);
``handler`` indexes the receiver's handler table.

A request/reply with up to 36 bytes of payload fits a single ATM cell
(40-byte single-cell limit minus the 4-byte header), which is how the
paper's "single cell request message with 0 to 32 bytes of data"
travels.

Bulk transfers add an 12-byte sub-header: base address (4), chunk
offset (4), total length (4).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

HEADER = struct.Struct(">BBBB")
XFER_HEADER = struct.Struct(">III")

MSG_REQUEST = 1  # request, may generate a reply
MSG_REPLY = 2  # reply to a request; may not generate another reply
MSG_ACK = 3  # explicit cumulative acknowledgment (not sequenced)
MSG_XFER = 4  # bulk store chunk (request class)
MSG_GET = 5  # bulk get request (request class)
MSG_XFER_REPLY = 6  # bulk get data chunk (reply class)

DATA_TYPES = frozenset({MSG_REQUEST, MSG_REPLY, MSG_XFER, MSG_GET, MSG_XFER_REPLY})
REPLY_CLASS = frozenset({MSG_REPLY, MSG_XFER_REPLY})

#: Largest request/reply payload that still fits one ATM cell.
SMALL_PAYLOAD_MAX = 40 - HEADER.size
#: Bulk-transfer fragment size: "UAM uses buffers holding 4160 bytes of
#: data" (§5.2) -- the buffer holds header + sub-header + chunk.
XFER_BUFFER = 4160
XFER_CHUNK = XFER_BUFFER - HEADER.size - XFER_HEADER.size


@dataclass
class Message:
    """A decoded UAM message."""

    type: int
    seq: int
    ack: int
    handler: int
    payload: bytes
    # decoded bulk sub-header, present for MSG_XFER/MSG_GET/MSG_XFER_REPLY
    base: int = 0
    offset: int = 0
    total: int = 0

    @property
    def is_data(self) -> bool:
        return self.type in DATA_TYPES


def encode(
    msg_type: int,
    seq: int,
    ack: int,
    handler: int,
    payload: bytes = b"",
    base: int = 0,
    offset: int = 0,
    total: int = 0,
) -> bytes:
    head = HEADER.pack(msg_type, seq & 0xFF, ack & 0xFF, handler & 0xFF)
    if msg_type in (MSG_XFER, MSG_GET, MSG_XFER_REPLY):
        return head + XFER_HEADER.pack(base, offset, total) + payload
    return head + payload


def decode(raw: bytes) -> Message:
    if len(raw) < HEADER.size:
        raise ValueError(f"short UAM message: {len(raw)} bytes")
    msg_type, seq, ack, handler = HEADER.unpack(raw[: HEADER.size])
    body = raw[HEADER.size :]
    if msg_type in (MSG_XFER, MSG_GET, MSG_XFER_REPLY):
        if len(body) < XFER_HEADER.size:
            raise ValueError("short bulk sub-header")
        base, offset, total = XFER_HEADER.unpack(body[: XFER_HEADER.size])
        return Message(
            type=msg_type, seq=seq, ack=ack, handler=handler,
            payload=body[XFER_HEADER.size :], base=base, offset=offset, total=total,
        )
    return Message(type=msg_type, seq=seq, ack=ack, handler=handler, payload=body)


def seq_lte(a: int, b: int) -> bool:
    """a <= b in modulo-256 sequence space (window < 128)."""
    return ((b - a) & 0xFF) < 128
