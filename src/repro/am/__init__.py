"""U-Net Active Messages (§5): a GAM 1.1-style layer over raw U-Net.

Communication is by requests and matching replies: each message names a
*handler* that is dispatched at the receiver to pull the message out of
the network.  The library adds exactly what the paper says it adds --
"the flow-control and retransmissions necessary to implement reliable
delivery and the Active Messages-specific handler dispatch":

* window-based flow control with a fixed window ``w`` and 4w
  preallocated transmit/receive buffers per channel (§5.1.1),
* explicit acknowledgments for requests that do not generate replies,
  and a go-back-N retransmission scheme,
* bulk ``store``/``get`` transfers fragmented into 4160-byte buffers
  (the §5.2 dip at 4164 bytes falls out of this constant),
* the reply-may-not-reply rule that prevents live-lock.
"""

from repro.am.gam import UAM, UamConfig, UamError
from repro.am.wire import MSG_ACK, MSG_GET, MSG_REPLY, MSG_REQUEST, MSG_XFER

__all__ = [
    "MSG_ACK",
    "MSG_GET",
    "MSG_REPLY",
    "MSG_REQUEST",
    "MSG_XFER",
    "UAM",
    "UamConfig",
    "UamError",
]
