"""repro.obs -- causal span tracing, latency attribution, timeline export.

Observability subsystem for the U-Net reproduction (ISSUE 4).  Three
pieces:

* **causal spans** (:mod:`repro.obs.spans`) — a zero-overhead-when-off
  begin/end/annotate API.  Model code guards every call site with
  ``obs.active is not None``; with ``REPRO_OBS`` unset that is the only
  cost.  Span parents propagate across heap entries via the engine's
  instrumentation slot (the race detector's happens-before mechanism),
  so causality follows ``schedule -> execute`` edges.
* **latency attribution** (:mod:`repro.obs.attrib`) — folds a window of
  spans into a per-layer breakdown whose components sum *exactly* to
  the window length, checked against the paper's Table 1 / §4.2.3
  budgets (:mod:`repro.obs.budgets`).
* **timeline export** (:mod:`repro.obs.export`) — Chrome
  ``trace_event`` / Perfetto JSON of spans plus counter tracks per
  simulated host/NI, and engine self-profiling.

CLI: ``python -m repro.obs {report,export,diff}``.

Arming: set ``REPRO_OBS=1`` in the environment (read at import time,
before any Simulator is constructed), or use :func:`collecting` /
:func:`enable` programmatically.  The engine has a single
instrumentation slot, so ``REPRO_OBS`` and ``REPRO_RACE`` are mutually
exclusive; when the race detector is already armed, obs refuses (env
arming defers silently).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

from repro.obs import metrics
from repro.obs.flight import FlightRecorder, ring_limit_from_env
from repro.obs.spans import (
    ObsMonitor,
    PartialTraceError,
    Span,
    SpanCollector,
    SpanMerger,
)

__all__ = [
    "Span",
    "SpanCollector",
    "SpanMerger",
    "ObsMonitor",
    "PartialTraceError",
    "FlightRecorder",
    "metrics",
    "active",
    "enabled",
    "enable",
    "disable",
    "collecting",
]

#: The live collector, or ``None`` when spans are off.  Hot paths read
#: this exactly once per instrumented function: ``_o = obs.active`` /
#: ``if _o is not None: ...``.
active: Optional[SpanCollector] = None


def enabled() -> bool:
    return active is not None


def _attach_flight(collector: SpanCollector, flight) -> None:
    """Attach a flight recorder per the ``flight`` argument: ``None``
    consults ``REPRO_OBS_FLIGHT``, ``True`` uses the default capacity,
    an int sets the capacity, ``False`` forces off."""
    if flight is None:
        limit = ring_limit_from_env()
        if limit is not None:
            collector.flight = FlightRecorder(limit)
    elif flight is True:
        collector.flight = FlightRecorder()
    elif flight:
        collector.flight = FlightRecorder(int(flight))


def enable(profile_wall: bool = False, flight=None) -> SpanCollector:
    """Arm span collection (and the metrics registry) globally.

    Must run before the Simulator under observation is constructed (the
    engine picks its monitored subclass at construction time).  Raises
    ``RuntimeError`` if another engine monitor (the race detector) is
    already armed.
    """
    global active
    if active is not None:
        return active
    from repro.sim import engine as _engine

    if _engine._monitor_factory is not None:
        raise RuntimeError(
            "engine instrumentation already armed (REPRO_RACE?); "
            "span tracing and race detection are mutually exclusive"
        )
    collector = SpanCollector()
    _attach_flight(collector, flight)
    monitor = ObsMonitor(collector, profile_wall=profile_wall)
    _engine.set_instrumentation(
        lambda: monitor, _engine.access_hook, shard_aware=True
    )
    metrics.enable()
    collector.metrics = metrics.active
    active = collector
    return collector


def disable() -> None:
    """Disarm span collection and release the engine monitor slot."""
    global active
    if active is None:
        return
    from repro.sim import engine as _engine

    _engine.set_instrumentation(None, _engine.access_hook)
    metrics.disable()
    active = None


@contextmanager
def collecting(profile_wall: bool = False, flight=None):
    """Scoped span collection::

        with obs.collecting() as col:
            sim = Simulator()          # construct *inside* the scope
            ... run the scenario ...
        report = attrib.attribute(col.spans, t0, t1)

    Also arms a scoped metrics registry (``obs.metrics.active``).  Saves
    and restores whatever instrumentation (and collector) was active
    before, so scopes nest safely with the race detector's
    ``detected()`` as long as they do not overlap.
    """
    global active
    from repro.sim import engine as _engine

    prev_factory = _engine._monitor_factory
    prev_access = _engine.access_hook
    prev_shard_aware = _engine._monitor_shard_aware
    prev_active = active
    prev_metrics = metrics.active
    collector = SpanCollector()
    _attach_flight(collector, flight)
    monitor = ObsMonitor(collector, profile_wall=profile_wall)
    _engine.set_instrumentation(lambda: monitor, prev_access, shard_aware=True)
    metrics.active = collector.metrics = metrics.MetricsRegistry()
    active = collector
    try:
        yield collector
    finally:
        active = prev_active
        metrics.active = prev_metrics
        _engine.set_instrumentation(
            prev_factory, prev_access, shard_aware=prev_shard_aware
        )


_env_flag = os.environ.get("REPRO_OBS", "")
_race_flag = os.environ.get("REPRO_RACE", "").strip().lower()
if _env_flag not in ("", "0") and _race_flag in ("", "0", "false", "off", "no"):
    # The REPRO_RACE guard cannot rely on import order: model modules
    # import repro.obs, so this block can run before repro.analysis has
    # armed the race detector.  Checking the environment directly keeps
    # the documented precedence (race wins) deterministic.
    try:
        enable()
    except RuntimeError:
        # REPRO_RACE armed first; the race detector keeps the slot.
        pass
del _env_flag, _race_flag
