"""``python -m repro.obs`` -- attribution reports, timeline export, diff.

Subcommands::

    report fig3 [--size N] [--n N] [--ni KIND] [--shards N] [--json PATH]
                [--profile-wall] [--percentiles]
    export fig3 [--size N] [--n N] [--ni KIND] [--shards N] [-o trace.json]
    diff OLD.json NEW.json

``report`` exits 1 when the attribution-sum invariant fails and 2 when
the measured breakdown falls outside the analytic budget's tolerance --
both are CI gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs import export, report


def _add_scenario_args(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("scenario", choices=sorted(report.SCENARIOS))
    sub.add_argument("--size", type=int, default=32, help="message bytes")
    sub.add_argument("--n", type=int, default=8, help="round trips")
    sub.add_argument(
        "--ni", default="sba200", choices=["sba200", "sba100", "fore"]
    )
    sub.add_argument("--mhz", type=float, default=60.0)
    sub.add_argument(
        "--shards", type=int, default=1,
        help="run on the sharded engine (attribution must match 1-shard)",
    )


def _scenario_kwargs(args) -> dict:
    return dict(
        size=args.size, n=args.n, ni_kind=args.ni, mhz=args.mhz,
        shards=args.shards,
    )


def cmd_report(args) -> int:
    try:
        doc, _collector = report.run_scenario(
            args.scenario, profile_wall=args.profile_wall,
            **_scenario_kwargs(args),
        )
    except ValueError as exc:
        # the check_sum() invariant raises ValueError
        print(f"attribution invariant FAILED: {exc}", file=sys.stderr)
        return 1
    print(report.format_report(doc, percentiles=args.percentiles))
    path = (
        Path(args.json)
        if args.json
        else report.default_json_path(args.scenario)
    )
    report.write_report(doc, path)
    print(f"wrote {path}")
    budget = doc.get("budget")
    if budget is not None and not budget["ok"]:
        print("budget check FAILED (see deltas above)", file=sys.stderr)
        return 2
    return 0


def cmd_export(args) -> int:
    doc, collector = report.run_scenario(
        args.scenario, profile_wall=args.profile_wall,
        **_scenario_kwargs(args),
    )
    out = args.output or f"OBS_{args.scenario}_trace.json"
    n_events = export.write_trace(collector, out)
    print(
        f"wrote {out}: {n_events} trace events "
        f"({len(collector.spans)} spans, {len(collector.samples)} samples) "
        f"-- load in ui.perfetto.dev or chrome://tracing"
    )
    return 0


def cmd_diff(args) -> int:
    old = json.loads(Path(args.old).read_text())
    new = json.loads(Path(args.new).read_text())
    old_layers = old["attribution"]["layers_us"]
    new_layers = new["attribution"]["layers_us"]
    print(f"{'layer':<14}{'old us':>10}{'new us':>10}{'delta':>10}")
    drift = 0.0
    for layer in sorted(set(old_layers) | set(new_layers)):
        a = old_layers.get(layer, 0.0)
        b = new_layers.get(layer, 0.0)
        print(f"{layer:<14}{a:>10.3f}{b:>10.3f}{b - a:>+10.3f}")
        drift += abs(b - a)
    old_w = old["attribution"]["mean_window_us"]
    new_w = new["attribution"]["mean_window_us"]
    print(
        f"{'window':<14}{old_w:>10.3f}{new_w:>10.3f}{new_w - old_w:>+10.3f}"
    )
    if args.fail_over is not None and drift > args.fail_over:
        print(
            f"total per-layer drift {drift:.3f} us exceeds "
            f"--fail-over {args.fail_over}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    subs = parser.add_subparsers(dest="command", required=True)

    p_report = subs.add_parser(
        "report", help="per-layer latency attribution vs the paper budget"
    )
    _add_scenario_args(p_report)
    p_report.add_argument(
        "--json", default=None, help="attribution JSON output path"
    )
    p_report.add_argument("--profile-wall", action="store_true")
    p_report.add_argument(
        "--percentiles", action="store_true",
        help="print p50/p99/p999 RTT and per-layer tail attribution",
    )
    p_report.set_defaults(fn=cmd_report)

    p_export = subs.add_parser(
        "export", help="Chrome trace_event / Perfetto timeline JSON"
    )
    _add_scenario_args(p_export)
    p_export.add_argument("-o", "--output", default=None)
    p_export.add_argument("--profile-wall", action="store_true")
    p_export.set_defaults(fn=cmd_export)

    p_diff = subs.add_parser(
        "diff", help="compare two attribution JSON reports"
    )
    p_diff.add_argument("old")
    p_diff.add_argument("new")
    p_diff.add_argument(
        "--fail-over", type=float, default=None,
        help="exit 1 when total absolute per-layer drift exceeds this (us)",
    )
    p_diff.set_defaults(fn=cmd_diff)

    args = parser.parse_args(argv)
    return args.fn(args)
