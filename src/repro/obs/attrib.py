"""Latency attribution: fold a window of spans into a per-layer budget.

The paper reports per-layer software overheads (Table 1, §4.2.3); this
pass reconstructs the same decomposition from recorded spans.  Over a
window ``[t0, t1]`` the spans are cut into elementary intervals at
every span boundary; each elementary interval is attributed to the
*deepest* span covering it (ties broken by later start, then span id,
so the most recently opened — most specific — span wins), and instants
covered by no span fall into the ``unattributed`` pseudo-layer.  Since
every elementary interval is attributed to exactly one layer, the
components sum to the window length *by construction*; that equality is
the machine-checked invariant CI gates on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.spans import Span

#: Pseudo-layer for instants no span covers (scheduling gaps, waits).
UNATTRIBUTED = "unattributed"

#: Relative tolerance for the sum == window invariant.  The fold is
#: exact in exact arithmetic (elementary intervals telescope); float
#: summation of the pieces can drift by a few ulps, nothing more.
SUM_REL_TOL = 1e-9


@dataclass
class Attribution:
    """Per-layer breakdown of one window of simulated time."""

    t0: float
    t1: float
    layers: Dict[str, float] = field(default_factory=dict)

    @property
    def window_us(self) -> float:
        return self.t1 - self.t0

    @property
    def total_us(self) -> float:
        return math.fsum(self.layers.values())

    def fraction(self, layer: str) -> float:
        if self.window_us == 0.0:
            return 0.0
        return self.layers.get(layer, 0.0) / self.window_us

    def check_sum(self) -> None:
        """Raise ``ValueError`` unless components sum to the window."""
        window = self.window_us
        if not math.isclose(
            self.total_us, window, rel_tol=SUM_REL_TOL, abs_tol=1e-9
        ):
            raise ValueError(
                f"attribution components sum to {self.total_us!r} us "
                f"but the window is {window!r} us"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "t0_us": self.t0,
            "t1_us": self.t1,
            "window_us": self.window_us,
            "layers_us": {k: self.layers[k] for k in sorted(self.layers)},
        }


def fold_spans(
    spans: Iterable[Span],
    t0: float,
    t1: float,
    exclude_layers: Sequence[str] = (),
) -> Attribution:
    """Attribute every instant of ``[t0, t1]`` to exactly one layer.

    ``exclude_layers`` drops spans (typically the measurement root span
    itself, which covers the whole window) before folding.
    """
    if t1 < t0:
        raise ValueError(f"window end {t1} precedes start {t0}")
    excluded = frozenset(exclude_layers)
    clipped: List[Tuple[float, float, int, float, int, str]] = []
    bounds = {t0, t1}
    for span in spans:
        if span.t1 is None or span.layer in excluded:
            continue
        a = span.t0 if span.t0 > t0 else t0
        b = span.t1 if span.t1 < t1 else t1
        if b <= a:
            continue
        clipped.append((a, b, span.depth, span.t0, span.sid, span.layer))
        bounds.add(a)
        bounds.add(b)

    ordered = sorted(bounds)
    clipped.sort()  # by start time
    totals: Dict[str, float] = {}
    active: List[Tuple[float, float, int, float, int, str]] = []
    j = 0
    for k in range(len(ordered) - 1):
        a = ordered[k]
        b = ordered[k + 1]
        while j < len(clipped) and clipped[j][0] <= a:
            active.append(clipped[j])
            j += 1
        if active:
            active = [iv for iv in active if iv[1] > a]
        if active:
            best = max(active, key=lambda iv: (iv[2], iv[3], iv[4]))
            layer = best[5]
        else:
            layer = UNATTRIBUTED
        totals[layer] = totals.get(layer, 0.0) + (b - a)
    return Attribution(t0=t0, t1=t1, layers=totals)


def attribute_roundtrips(
    spans: Sequence[Span], root_layer: str = "bench"
) -> List[Attribution]:
    """One :class:`Attribution` per measurement root span.

    The bench harness wraps each measured round trip in a span on the
    ``root_layer``; its window is the measured latency, and the fold
    excludes the root itself so only model layers appear.
    """
    roots = [s for s in spans if s.layer == root_layer and s.t1 is not None]
    return [
        fold_spans(spans, root.t0, root.t1, exclude_layers=(root_layer,))
        for root in roots
    ]


def merge_mean(attributions: Sequence[Attribution]) -> Attribution:
    """Mean per-layer breakdown across windows (e.g. all round trips)."""
    if not attributions:
        raise ValueError("no attributions to merge")
    n = len(attributions)
    layers: Dict[str, float] = {}
    for att in attributions:
        for layer, us in att.layers.items():
            layers[layer] = layers.get(layer, 0.0) + us
    mean_layers = {layer: us / n for layer, us in layers.items()}
    mean_window = math.fsum(a.window_us for a in attributions) / n
    return Attribution(t0=0.0, t1=mean_window, layers=mean_layers)
