"""Causal spans: the data model behind ``repro.obs``.

A :class:`Span` is a named interval of simulated time attributed to one
*layer* (host, uam, ni_tx, ni_rx, wire, switch, ip, tcp, kernel, ...)
on one simulated host.  Spans form a tree: each carries a parent, and
the *current* span propagates causally — synchronously through nested
``begin``/``end`` pairs, and across heap entries through the engine's
``schedule -> execute`` edges exactly like the race detector's
happens-before edges (:class:`ObsMonitor` records the span that was
current when an entry was scheduled and restores it when the entry
pops).

Everything here is instant-off: model code guards every call with
``obs.active is not None`` so a disabled run pays one attribute load
and an ``is`` test per instrumented function.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

_MISSING = object()


class PartialTraceError(RuntimeError):
    """A trace that would be (or was) silently incomplete.

    Raised when cross-shard span stitching cannot produce one coherent
    timeline — e.g. a worker re-ships a span id it already shipped.
    Historically the sharded engines *silently* recorded a shard-0-only
    trace under ``obs.collecting()``; that silent drop is now a pinned
    regression (tests/obs/test_sharded_obs.py)."""


class Span:
    """One attributed interval of simulated time.

    ``t1`` is ``None`` while the span is open.  ``depth`` is the length
    of the parent chain; the attribution pass uses it to let the most
    specific (deepest) span win where intervals overlap.  ``shard`` is
    the simulation shard the span was recorded on (0 on the single-core
    engine); the Perfetto exporter lays shards out as separate lanes.
    """

    __slots__ = (
        "sid", "name", "layer", "host", "t0", "t1", "parent", "depth",
        "attrs", "shard",
    )

    def __init__(
        self,
        sid: int,
        name: str,
        layer: str,
        host: str,
        t0: float,
        parent: Optional["Span"],
    ):
        self.sid = sid
        self.name = name
        self.layer = layer
        self.host = host
        self.t0 = t0
        self.t1: Optional[float] = None
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.attrs: Optional[Dict[str, Any]] = None
        self.shard = 0

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "name": self.name,
            "layer": self.layer,
            "host": self.host,
            "t0": self.t0,
            "t1": self.t1,
            "parent": self.parent.sid if self.parent is not None else None,
            "depth": self.depth,
            "attrs": self.attrs,
            "shard": self.shard,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t1:.3f}" if self.t1 is not None else "open"
        return f"Span({self.sid} {self.layer}/{self.name} [{self.t0:.3f}, {end}])"


class SpanCollector:
    """Accumulates spans, counter samples, and engine self-profile data.

    One collector serves the whole run (all simulated hosts share one
    Simulator in this repo).  ``current`` is the innermost open span of
    the *executing* heap entry; :class:`ObsMonitor` swaps it on every
    pop so causality follows schedule edges, not textual nesting.
    """

    def __init__(self):
        self.spans: List[Span] = []  # completed spans, in end order
        self.current: Optional[Span] = None
        #: bump() totals: plain named counters with no time axis.
        self.counters: Counter = Counter()
        #: sample() points: (time, track, host, value) counter tracks.
        self.samples: List[Tuple[float, str, str, float]] = []
        self._sid = 0
        #: Shard currently executing (stamped onto new spans); the
        #: sharded engine's monitor flips this as timelines interleave.
        self.shard = 0
        #: Optional FlightRecorder fed on every span end; None = off.
        self.flight: Optional[Any] = None
        #: The metrics registry armed alongside this collector (set by
        #: ``obs.enable``/``obs.collecting``) so report code can read
        #: histograms after the collecting scope has exited.
        self.metrics: Optional[Any] = None
        # -- engine self-profile (fed by ObsMonitor) --------------------
        self.executed_callbacks = 0
        self.executed_events = 0
        self.executed_timers = 0
        self.entries_scheduled = 0
        self.max_heap_depth = 0
        self.wall_by_kind: Dict[str, float] = {
            "callback": 0.0,
            "event": 0.0,
            "timer": 0.0,
        }

    # -- span lifecycle -------------------------------------------------
    def begin(
        self,
        now: float,
        name: str,
        layer: str,
        host: str = "",
        parent: Any = _MISSING,
    ) -> Span:
        """Open a span at ``now``; parent defaults to the current span."""
        self._sid += 1
        if parent is _MISSING:
            parent = self.current
        span = Span(self._sid, name, layer, host, now, parent)
        span.shard = self.shard
        self.current = span
        return span

    def end(self, span: Span, now: float) -> Span:
        """Close ``span`` at ``now`` and pop it off the current chain."""
        if span.t1 is not None:
            raise ValueError(f"span {span.name!r} already ended")
        span.t1 = now
        self.spans.append(span)
        if self.current is span:
            self.current = span.parent
        fl = self.flight
        if fl is not None:
            fl.record(span)
        return span

    def annotate(self, span: Span, **attrs: Any) -> None:
        if span.attrs is None:
            span.attrs = {}
        span.attrs.update(attrs)

    def charge(self, us: float, key: str = "cpu_us") -> None:
        """Accumulate a cost figure onto the current span's attributes."""
        span = self.current
        if span is None:
            return
        if span.attrs is None:
            span.attrs = {}
        span.attrs[key] = span.attrs.get(key, 0.0) + us

    def add_complete(
        self,
        t0: float,
        t1: float,
        name: str,
        layer: str,
        host: str = "",
        parent: Optional[Span] = None,
    ) -> Span:
        """Record an analytically-known interval without touching the
        current chain (the link model computes wire occupancy in closed
        form at claim time rather than pumping per-cell events)."""
        self._sid += 1
        span = Span(self._sid, name, layer, host, t0, parent)
        span.shard = self.shard
        span.t1 = t1
        self.spans.append(span)
        fl = self.flight
        if fl is not None:
            fl.record(span)
        return span

    # -- counters -------------------------------------------------------
    def bump(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def sample(self, now: float, track: str, value: float, host: str = "") -> None:
        self.samples.append((now, track, host, value))

    # -- reporting ------------------------------------------------------
    def spans_by_layer(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.layer, []).append(span)
        return out

    def engine_profile(self) -> Dict[str, Any]:
        """Engine self-profiling summary for BENCH_perf.json / reports."""
        return {
            "entries_scheduled": self.entries_scheduled,
            "executed_callbacks": self.executed_callbacks,
            "executed_events": self.executed_events,
            "max_heap_depth": self.max_heap_depth,
            "wall_s_by_kind": dict(self.wall_by_kind),
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "spans": len(self.spans),
            "counters": dict(self.counters),
            "samples": len(self.samples),
            "engine": self.engine_profile(),
        }


class ObsMonitor:
    """Engine monitor propagating span context along schedule edges.

    Installed through ``engine.set_instrumentation`` (the same single
    slot the race detector uses — REPRO_OBS and REPRO_RACE are mutually
    exclusive).  ``on_schedule`` stamps each heap entry with a globally
    unique, monotonically increasing id (preserving the engine's FIFO
    tie-break order bit-for-bit) and remembers the span that was current
    at schedule time; ``on_execute`` restores that span before the entry
    runs, so a span opened before a ``yield`` is current again when the
    process resumes.

    The monitor doubles as the engine self-profiler: entry counts by
    kind (callback vs. event), high-water heap depth, and — when
    ``profile_wall`` is set — wall time attributed per entry kind.
    """

    def __init__(self, collector: SpanCollector, profile_wall: bool = False):
        self.collector = collector
        self._eid = 0
        self._ctx: Dict[int, Span] = {}
        self._pending = 0
        self._clock = None
        self._last_wall: Optional[float] = None
        self._last_kind = "event"
        if profile_wall:
            import time

            # Deliberate wall-clock use: this *is* the profiler.
            self._clock = time.perf_counter  # simlint: disable=wall-clock

    def on_schedule(self, seq: int, when: float, target: Any) -> int:
        c = self.collector
        c.entries_scheduled += 1
        self._eid += 1
        eid = self._eid
        cur = c.current
        if cur is not None:
            self._ctx[eid] = cur
        self._pending += 1
        if self._pending > c.max_heap_depth:
            c.max_heap_depth = self._pending
        return eid

    def on_execute(self, item: tuple) -> None:
        c = self.collector
        self._pending -= 1
        # entry shapes: None = bare callback, False = pooled timer
        # (possibly cancelled), anything else = an Event firing.
        tag = item[2]
        if tag is None:
            kind = "callback"
            c.executed_callbacks += 1
        elif tag is False:
            kind = "timer"
            c.executed_timers += 1
        else:
            kind = "event"
            c.executed_events += 1
        if self._clock is not None:
            now_w = self._clock()
            if self._last_wall is not None:
                c.wall_by_kind[self._last_kind] += now_w - self._last_wall
            self._last_wall = now_w
            self._last_kind = kind
        c.current = self._ctx.pop(item[1], None)

    def shard_view(self, shard: int) -> "_ShardView":
        """A per-timeline facade for the in-process sharded engine.

        All timelines share this one monitor (so entry ids stay globally
        monotonic and span context flows across ``_schedule_cross``
        edges), but each timeline's view stamps the collector with its
        shard before executing an entry, so every span records which
        timeline produced it.
        """
        return _ShardView(self, shard)


class _ShardView:
    """One shard's handle on a shared :class:`ObsMonitor`."""

    __slots__ = ("_mon", "_shard")

    def __init__(self, mon: ObsMonitor, shard: int):
        self._mon = mon
        self._shard = shard

    def on_schedule(self, seq: int, when: float, target: Any) -> int:
        return self._mon.on_schedule(seq, when, target)

    def on_execute(self, item: tuple) -> None:
        mon = self._mon
        mon.collector.shard = self._shard
        mon.on_execute(item)


# Bit offset of the shard tag in a cross-shard global span id.  A gid is
# ``(shard + 1) << GID_SHIFT | sid`` — nonzero even for shard 0 / sid 0,
# so 0 stays the "no span context" sentinel on the wire.
GID_SHIFT = 40


def span_gid(shard: int, sid: int) -> int:
    return ((shard + 1) << GID_SHIFT) | sid


class SpanMerger:
    """Stitch per-shard span dumps into one coordinator collector.

    Workers ship completed spans as ``to_dict()`` payloads at round
    boundaries (spans arrive in *end* order, so a parent may arrive
    rounds after its children — parent links resolve in :meth:`link`).
    Each shipped span gets a fresh sid in the destination collector;
    the (shard, remote sid) pair is the stable identity.  Cross-shard
    ``xshard`` placeholder spans carry the sender's global span id in
    their attrs and are re-parented onto the real remote span when it
    lands.
    """

    def __init__(self, collector: SpanCollector):
        self.collector = collector
        #: global id (span_gid) -> merged Span
        self._by_gid: Dict[int, Span] = {}
        #: merged Span -> parent gid still to resolve
        self._parent_gid: Dict[int, Tuple[Span, int]] = {}
        self._seen: set = set()
        self.merged = 0

    def merge(self, shard: int, span_dicts: List[Dict[str, Any]]) -> None:
        col = self.collector
        for d in span_dicts:
            key = (shard, d["sid"])
            if key in self._seen:
                raise PartialTraceError(
                    f"shard {shard} shipped span sid {d['sid']} twice; "
                    "refusing to stitch a duplicated timeline"
                )
            self._seen.add(key)
            col._sid += 1
            span = Span(col._sid, d["name"], d["layer"], d["host"], d["t0"], None)
            span.t1 = d["t1"]
            span.depth = d["depth"]
            span.attrs = d["attrs"]
            span.shard = d.get("shard", shard)
            col.spans.append(span)
            self._by_gid[span_gid(shard, d["sid"])] = span
            parent_sid = d["parent"]
            if parent_sid is not None:
                self._parent_gid[id(span)] = (span, span_gid(shard, parent_sid))
            elif span.attrs and "xshard" in span.attrs:
                # Placeholder minted at inject time: its true parent is
                # the *sender's* span, identified by a full gid.
                self._parent_gid[id(span)] = (span, span.attrs["xshard"])
            self.merged += 1

    def link(self) -> int:
        """Resolve parent pointers now that every shard has shipped;
        returns the number of unresolvable links (left as roots)."""
        unresolved = 0
        for span, gid in self._parent_gid.values():
            target = self._by_gid.get(gid)
            if target is not None:
                span.parent = target
            else:
                unresolved += 1
        self._parent_gid.clear()
        return unresolved
