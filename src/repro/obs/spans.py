"""Causal spans: the data model behind ``repro.obs``.

A :class:`Span` is a named interval of simulated time attributed to one
*layer* (host, uam, ni_tx, ni_rx, wire, switch, ip, tcp, kernel, ...)
on one simulated host.  Spans form a tree: each carries a parent, and
the *current* span propagates causally — synchronously through nested
``begin``/``end`` pairs, and across heap entries through the engine's
``schedule -> execute`` edges exactly like the race detector's
happens-before edges (:class:`ObsMonitor` records the span that was
current when an entry was scheduled and restores it when the entry
pops).

Everything here is instant-off: model code guards every call with
``obs.active is not None`` so a disabled run pays one attribute load
and an ``is`` test per instrumented function.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

_MISSING = object()


class Span:
    """One attributed interval of simulated time.

    ``t1`` is ``None`` while the span is open.  ``depth`` is the length
    of the parent chain; the attribution pass uses it to let the most
    specific (deepest) span win where intervals overlap.
    """

    __slots__ = ("sid", "name", "layer", "host", "t0", "t1", "parent", "depth", "attrs")

    def __init__(
        self,
        sid: int,
        name: str,
        layer: str,
        host: str,
        t0: float,
        parent: Optional["Span"],
    ):
        self.sid = sid
        self.name = name
        self.layer = layer
        self.host = host
        self.t0 = t0
        self.t1: Optional[float] = None
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "name": self.name,
            "layer": self.layer,
            "host": self.host,
            "t0": self.t0,
            "t1": self.t1,
            "parent": self.parent.sid if self.parent is not None else None,
            "depth": self.depth,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.t1:.3f}" if self.t1 is not None else "open"
        return f"Span({self.sid} {self.layer}/{self.name} [{self.t0:.3f}, {end}])"


class SpanCollector:
    """Accumulates spans, counter samples, and engine self-profile data.

    One collector serves the whole run (all simulated hosts share one
    Simulator in this repo).  ``current`` is the innermost open span of
    the *executing* heap entry; :class:`ObsMonitor` swaps it on every
    pop so causality follows schedule edges, not textual nesting.
    """

    def __init__(self):
        self.spans: List[Span] = []  # completed spans, in end order
        self.current: Optional[Span] = None
        #: bump() totals: plain named counters with no time axis.
        self.counters: Counter = Counter()
        #: sample() points: (time, track, host, value) counter tracks.
        self.samples: List[Tuple[float, str, str, float]] = []
        self._sid = 0
        # -- engine self-profile (fed by ObsMonitor) --------------------
        self.executed_callbacks = 0
        self.executed_events = 0
        self.executed_timers = 0
        self.entries_scheduled = 0
        self.max_heap_depth = 0
        self.wall_by_kind: Dict[str, float] = {
            "callback": 0.0,
            "event": 0.0,
            "timer": 0.0,
        }

    # -- span lifecycle -------------------------------------------------
    def begin(
        self,
        now: float,
        name: str,
        layer: str,
        host: str = "",
        parent: Any = _MISSING,
    ) -> Span:
        """Open a span at ``now``; parent defaults to the current span."""
        self._sid += 1
        if parent is _MISSING:
            parent = self.current
        span = Span(self._sid, name, layer, host, now, parent)
        self.current = span
        return span

    def end(self, span: Span, now: float) -> Span:
        """Close ``span`` at ``now`` and pop it off the current chain."""
        if span.t1 is not None:
            raise ValueError(f"span {span.name!r} already ended")
        span.t1 = now
        self.spans.append(span)
        if self.current is span:
            self.current = span.parent
        return span

    def annotate(self, span: Span, **attrs: Any) -> None:
        if span.attrs is None:
            span.attrs = {}
        span.attrs.update(attrs)

    def charge(self, us: float, key: str = "cpu_us") -> None:
        """Accumulate a cost figure onto the current span's attributes."""
        span = self.current
        if span is None:
            return
        if span.attrs is None:
            span.attrs = {}
        span.attrs[key] = span.attrs.get(key, 0.0) + us

    def add_complete(
        self,
        t0: float,
        t1: float,
        name: str,
        layer: str,
        host: str = "",
        parent: Optional[Span] = None,
    ) -> Span:
        """Record an analytically-known interval without touching the
        current chain (the link model computes wire occupancy in closed
        form at claim time rather than pumping per-cell events)."""
        self._sid += 1
        span = Span(self._sid, name, layer, host, t0, parent)
        span.t1 = t1
        self.spans.append(span)
        return span

    # -- counters -------------------------------------------------------
    def bump(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def sample(self, now: float, track: str, value: float, host: str = "") -> None:
        self.samples.append((now, track, host, value))

    # -- reporting ------------------------------------------------------
    def spans_by_layer(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.layer, []).append(span)
        return out

    def engine_profile(self) -> Dict[str, Any]:
        """Engine self-profiling summary for BENCH_perf.json / reports."""
        return {
            "entries_scheduled": self.entries_scheduled,
            "executed_callbacks": self.executed_callbacks,
            "executed_events": self.executed_events,
            "max_heap_depth": self.max_heap_depth,
            "wall_s_by_kind": dict(self.wall_by_kind),
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "spans": len(self.spans),
            "counters": dict(self.counters),
            "samples": len(self.samples),
            "engine": self.engine_profile(),
        }


class ObsMonitor:
    """Engine monitor propagating span context along schedule edges.

    Installed through ``engine.set_instrumentation`` (the same single
    slot the race detector uses — REPRO_OBS and REPRO_RACE are mutually
    exclusive).  ``on_schedule`` stamps each heap entry with a globally
    unique, monotonically increasing id (preserving the engine's FIFO
    tie-break order bit-for-bit) and remembers the span that was current
    at schedule time; ``on_execute`` restores that span before the entry
    runs, so a span opened before a ``yield`` is current again when the
    process resumes.

    The monitor doubles as the engine self-profiler: entry counts by
    kind (callback vs. event), high-water heap depth, and — when
    ``profile_wall`` is set — wall time attributed per entry kind.
    """

    def __init__(self, collector: SpanCollector, profile_wall: bool = False):
        self.collector = collector
        self._eid = 0
        self._ctx: Dict[int, Span] = {}
        self._pending = 0
        self._clock = None
        self._last_wall: Optional[float] = None
        self._last_kind = "event"
        if profile_wall:
            import time

            # Deliberate wall-clock use: this *is* the profiler.
            self._clock = time.perf_counter  # simlint: disable=wall-clock

    def on_schedule(self, seq: int, when: float, target: Any) -> int:
        c = self.collector
        c.entries_scheduled += 1
        self._eid += 1
        eid = self._eid
        cur = c.current
        if cur is not None:
            self._ctx[eid] = cur
        self._pending += 1
        if self._pending > c.max_heap_depth:
            c.max_heap_depth = self._pending
        return eid

    def on_execute(self, item: tuple) -> None:
        c = self.collector
        self._pending -= 1
        # entry shapes: None = bare callback, False = pooled timer
        # (possibly cancelled), anything else = an Event firing.
        tag = item[2]
        if tag is None:
            kind = "callback"
            c.executed_callbacks += 1
        elif tag is False:
            kind = "timer"
            c.executed_timers += 1
        else:
            kind = "event"
            c.executed_events += 1
        if self._clock is not None:
            now_w = self._clock()
            if self._last_wall is not None:
                c.wall_by_kind[self._last_kind] += now_w - self._last_wall
            self._last_wall = now_w
            self._last_kind = kind
        c.current = self._ctx.pop(item[1], None)
