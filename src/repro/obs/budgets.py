"""Analytic per-layer latency budgets (paper Table 1 and §4.2.3).

A budget is the closed-form prediction of where a message's round-trip
time goes, derived from the same cost tables the NI models charge
(:mod:`repro.core.ni.costs`) plus the wire parameters of the cluster.
The report pass (:mod:`repro.obs.report`) compares the *measured*
attribution -- folded out of the span tree -- against the budget; CI
gates on the comparison.

§4.2.3 for the SBA-200 single-cell round trip: "the dominant cost" is
the i960 per-message processing; the host-side descriptor handling is a
few microseconds; fiber and switch account for the rest of the 65 us.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.ni.costs import Sba200Costs

#: Default relative tolerance for budget comparison.  The measured
#: attribution and the analytic budget are built from the same cost
#: tables, so agreement is tight; the tolerance absorbs scheduling
#: artifacts (e.g. poll-loop phase) rather than model error.  5% of the
#: end-to-end time, applied per layer against the total.
BUDGET_REL_TOL = 0.05


def sba200_single_cell_budget(
    wire_one_way_us: float,
    switch_latency_us: float,
    costs: Optional[Sba200Costs] = None,
) -> Dict[str, float]:
    """Per-layer budget for the Figure 3 single-cell raw round trip.

    ``wire_one_way_us`` is fiber + serialization + switch for one cell,
    one way (``repro.bench.micro._one_way_wire_us``); the switch's share
    is split out so the budget matches the attribution's layer names.
    """
    c = costs if costs is not None else Sba200Costs()
    fiber_one_way = wire_one_way_us - switch_latency_us
    return {
        # descriptor post on the pinger + pop on the ponger, both ways
        "host": 2 * (c.host_post_send_us + c.host_recv_us),
        # i960 send path: poll for the descriptor + single-cell format
        "ni_tx": 2 * (c.i960_tx_poll_us + c.i960_tx_single_us),
        # i960 receive path: per-cell handling + single-cell delivery
        "ni_rx": 2 * (c.i960_rx_per_cell_us + c.i960_rx_single_us),
        "wire": 2 * fiber_one_way,
        "switch": 2 * switch_latency_us,
    }


def compare(
    measured: Dict[str, float],
    budget: Dict[str, float],
    rel_tol: float = BUDGET_REL_TOL,
) -> Dict[str, object]:
    """Compare a measured per-layer breakdown against a budget.

    Each layer's absolute delta is judged against ``rel_tol`` of the
    *budget total* (per-layer relative error would be needlessly strict
    for the small layers).  Layers present on only one side count with
    an implicit 0.0 on the other.
    """
    total = sum(budget.values())
    allowed = rel_tol * total
    deltas = {}
    ok = True
    for layer in sorted(set(measured) | set(budget)):
        delta = measured.get(layer, 0.0) - budget.get(layer, 0.0)
        deltas[layer] = delta
        if abs(delta) > allowed:
            ok = False
    return {
        "budget_total_us": total,
        "tolerance_us": allowed,
        "rel_tol": rel_tol,
        "deltas_us": deltas,
        "ok": ok,
    }
