"""repro.obs.flight -- bounded flight recorder for post-mortem dumps.

A :class:`FlightRecorder` keeps the most recent completed spans in a
bounded ring (``collections.deque(maxlen=...)``).  It is fed by
:class:`repro.obs.spans.SpanCollector` whenever a span ends, so the cost
when armed is one deque append per span and the cost when not armed is
one attribute load (the collector checks ``self.flight is None``).

On a crash -- a shard worker dying with :class:`ShardCrashError`, or a
runtime sanitizer trip -- the ring is rendered through the normal
Perfetto exporter and written to disk, so the last ``limit`` spans
leading up to the failure can be opened in a trace viewer even though
the run never finished.  The dump path travels with the error
(``ShardCrashError.dump_path``) for the mp engine, and is recorded on
``FlightRecorder.last_dump_path`` for in-process trips.
"""

from __future__ import annotations

import os
import tempfile
from collections import deque
from typing import Any, List, Optional

__all__ = ["FlightRecorder", "DEFAULT_LIMIT", "ring_limit_from_env"]

#: Default ring capacity (spans).  Small enough to dump in milliseconds,
#: large enough to cover several round trips of every layer's spans.
DEFAULT_LIMIT = 4096

#: Environment knob: ``REPRO_OBS_FLIGHT=1`` arms the recorder at the
#: default capacity, ``REPRO_OBS_FLIGHT=<n>`` sets the capacity.
ENV_VAR = "REPRO_OBS_FLIGHT"


def ring_limit_from_env() -> Optional[int]:
    """Ring capacity requested via ``REPRO_OBS_FLIGHT``, or ``None``
    when the recorder should stay off."""
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw or raw == "0":
        return None
    try:
        n = int(raw)
    except ValueError:
        return DEFAULT_LIMIT
    if n == 1:
        # "=1" is the boolean arm switch, not a capacity-1 request.
        return DEFAULT_LIMIT
    return n if n > 0 else None


class FlightRecorder:
    """Bounded ring of recently completed spans."""

    __slots__ = ("_ring", "limit", "recorded", "last_dump_path")

    def __init__(self, limit: int = DEFAULT_LIMIT):
        if limit <= 0:
            raise ValueError(f"flight recorder limit must be > 0, got {limit}")
        self._ring: deque = deque(maxlen=limit)
        self.limit = limit
        #: Total spans ever recorded (>= len(ring) once it wraps).
        self.recorded = 0
        #: Path of the most recent crash dump, "" until a trip happens.
        self.last_dump_path = ""

    def record(self, span: Any) -> None:
        self._ring.append(span)
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> List[Any]:
        return list(self._ring)

    def default_dump_path(self, shard: int = 0) -> str:
        return os.path.join(
            tempfile.gettempdir(),
            f"OBS_flight_shard{shard}_pid{os.getpid()}.json",
        )

    def dump(self, path: Optional[str] = None, shard: int = 0,
             reason: str = "") -> str:
        """Write the ring as a Perfetto trace; returns the path written.

        The dump is a full, valid trace-event JSON (loadable in
        ui.perfetto.dev) built from a throwaway collector that holds
        only the ring contents -- the live collector is not touched.
        """
        # Local imports: flight must stay importable before spans/export
        # (obs/__init__ arms it at import time).
        from repro.obs import export as _export
        from repro.obs import spans as _spans

        if path is None:
            path = self.default_dump_path(shard)
        shim = _spans.SpanCollector()
        shim.spans = self.snapshot()
        shim.counters["flight.recorded"] = self.recorded
        shim.counters["flight.ring_len"] = len(self._ring)
        if reason:
            shim.counters["flight.trip"] = 1
        _export.write_trace(shim, path)
        self.last_dump_path = path
        return path

    def dump_on_trip(self, reason: str, shard: int = 0) -> str:
        """Crash-path dump: never raises (a failed dump must not mask
        the original error)."""
        try:
            return self.dump(shard=shard, reason=reason)
        except Exception:
            return ""
