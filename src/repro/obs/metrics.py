"""repro.obs.metrics -- counters, gauges, and log-bucketed histograms.

The metrics substrate is the second leg of repro.obs (spans are the
first): plain named counters, high-water gauges, and HDR-style
log-bucketed histograms with bounded relative error and exact
min/max/count/sum.  It follows exactly the zero-overhead-when-off
discipline of :mod:`repro.obs.spans`: hot-path code reads one module
attribute and does one ``is`` test::

    _m = metrics.active
    if _m is not None:
        _m.observe(self._mk_depth, len(self._items))

With metrics off (the default) that attribute load is the only cost.

Histogram buckets are logarithmic with ``SUBBUCKETS`` linear
sub-buckets per power of two (``frexp`` decomposition), so any recorded
value is reproduced by :meth:`Histogram.percentile` within a relative
error of ``1 / (2 * SUBBUCKETS)`` -- and min/max/count/sum are tracked
exactly on the side, so p0/p100 and means are exact.

Unlike spans, metrics need no engine instrumentation slot: arming is a
single module attribute, so metrics work identically under the
single-core engine, the in-process sharded engine, and (merged at the
coordinator) the multi-process engine.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, Optional

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "active",
    "enabled",
    "enable",
    "disable",
    "collecting",
    "SUBBUCKETS",
]

#: Linear sub-buckets per power of two.  64 bounds the relative error of
#: a percentile readout at 1/128 (< 0.8%), HDR-histogram territory,
#: while a typical run touches only a few dozen (sparse) buckets.
SUBBUCKETS = 64

#: The live registry, or ``None`` when metrics are off.  Hot paths read
#: this exactly once per instrumented function (same discipline as
#: ``obs.active``).
active: Optional["MetricsRegistry"] = None


class Histogram:
    """Sparse log-bucketed histogram with exact summary statistics.

    Values must be finite and are clamped at 0 (negative occupancy or
    latency is a caller bug, but must not corrupt the bucket index).
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @staticmethod
    def _index(value: float) -> int:
        # frexp: value = m * 2**e with m in [0.5, 1); the sub-bucket is
        # the linear position of m within its octave.
        if value <= 0.0:
            return 0
        m, e = math.frexp(value)
        return 1 + (e + 1024) * SUBBUCKETS + int((m - 0.5) * 2.0 * SUBBUCKETS)

    @staticmethod
    def _value(index: int) -> float:
        """Representative (midpoint) value of a bucket."""
        if index == 0:
            return 0.0
        index -= 1
        e = index // SUBBUCKETS - 1024
        sub = index % SUBBUCKETS
        m = 0.5 + (sub + 0.5) / (2.0 * SUBBUCKETS)
        return math.ldexp(m, e)

    def observe(self, value: float) -> None:
        idx = self._index(value)
        buckets = self.buckets
        buckets[idx] = buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError("no samples in histogram")
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (in [0, 100]), accurate to the
        bucket resolution; p=0 / p=100 return the exact min / max."""
        if not self.count:
            raise ValueError("no samples in histogram")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if p == 0.0:
            return self.min
        if p == 100.0:
            return self.max
        rank = p / 100.0 * self.count
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                # Clamp to the exact extremes: the top/bottom bucket
                # midpoints can overshoot what was actually recorded.
                return min(max(self._value(idx), self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }

    # -- cross-process transport (struct-free: cold path) ---------------
    def to_state(self) -> Dict[str, Any]:
        return {
            "buckets": dict(self.buckets),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        for idx, n in state["buckets"].items():
            idx = int(idx)
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += state["count"]
        self.total += state["total"]
        self.min = min(self.min, state["min"])
        self.max = max(self.max, state["max"])


class MetricsRegistry:
    """Named counters, high-water gauges, and histograms for one run."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        #: count() totals; float amounts are allowed (busy-time sums).
        self.counters: Counter = Counter()
        #: gauge_max() high-water marks.
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording (hot path when armed) --------------------------------
    def count(self, key: str, n: float = 1) -> None:
        self.counters[key] += n

    def gauge_max(self, key: str, value: float) -> None:
        gauges = self.gauges
        if value > gauges.get(key, -math.inf):
            gauges[key] = value

    def observe(self, key: str, value: float) -> None:
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    # -- readout --------------------------------------------------------
    def histogram(self, key: str) -> Histogram:
        try:
            return self.histograms[key]
        except KeyError:
            raise KeyError(
                f"no histogram {key!r} (known: {sorted(self.histograms)})"
            ) from None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: self.histograms[key].summary()
                for key in sorted(self.histograms)
            },
        }

    # -- cross-process transport ----------------------------------------
    def to_state(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: hist.to_state() for key, hist in self.histograms.items()
            },
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold a worker registry's state into this one (coordinator)."""
        self.counters.update(state["counters"])
        for key, value in state["gauges"].items():
            self.gauge_max(key, value)
        for key, hist_state in state["histograms"].items():
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = Histogram()
            hist.merge_state(hist_state)


def enabled() -> bool:
    return active is not None


def enable() -> MetricsRegistry:
    """Arm metrics globally (idempotent); returns the live registry."""
    global active
    if active is None:
        active = MetricsRegistry()
    return active


def disable() -> None:
    global active
    active = None


class collecting:
    """Scoped metrics collection (no engine slot needed, so this nests
    freely with spans, the race detector, and the sharded engines)::

        with metrics.collecting() as reg:
            ... run ...
        print(reg.histogram("rtt_us").percentile(99))
    """

    def __init__(self):
        self._saved: Optional[MetricsRegistry] = None
        self.registry = MetricsRegistry()

    def __enter__(self) -> MetricsRegistry:
        global active
        self._saved = active
        active = self.registry
        return self.registry

    def __exit__(self, *exc: Any) -> None:
        global active
        active = self._saved
