"""Attribution reports: run a benchmark scenario with spans, fold, check.

A report runs the scenario *in this process* (the figure sweeps fork
worker processes, which would strand the spans in the children), wraps
the collection in :func:`repro.obs.collecting`, folds the span tree
into per-layer breakdowns, checks the sum == window invariant, and --
where an analytic budget exists -- compares against it.

The machine-readable result lands next to the figure benchmarks'
outputs at the repository root as ``OBS_<scenario>_attribution.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Optional

from repro import obs
from repro.obs import attrib, budgets
from repro.obs.spans import SpanCollector

REPO_ROOT = Path(__file__).resolve().parents[3]


def run_fig3(
    size: int = 32,
    n: int = 8,
    ni_kind: str = "sba200",
    mhz: float = 60.0,
    profile_wall: bool = False,
    shards: int = 1,
):
    """Figure 3 raw round trip with spans.

    ``shards`` > 1 runs the same scenario on the sharded engine (the
    timestamps are bit-identical, so per-layer attribution must match
    the single-core run exactly -- the CI parity gate).

    Returns ``(report_dict, collector)`` -- the collector so the export
    path can render the same run as a timeline.
    """
    from repro.bench import micro
    from repro.core import UNetCluster
    from repro.sim import Simulator, engine

    with obs.collecting(profile_wall=profile_wall) as collector:
        with engine.use_shards(shards):
            result = micro.raw_rtt(size, n=n, ni_kind=ni_kind, mhz=mhz)

    budget = None
    if ni_kind == "sba200":
        # wire parameters come from an identically-built (unrun) cluster
        probe = UNetCluster.pair(Simulator(), mhz=mhz, ni_kind=ni_kind)
        budget = budgets.sba200_single_cell_budget(
            micro._one_way_wire_us(probe),
            probe.network.switch.switching_latency_us,
        )
        if size > 40:
            budget = None  # multi-cell path: the single-cell budget is wrong

    report = _build_report(
        collector,
        scenario={
            "figure": "fig3",
            "benchmark": "raw_rtt",
            "size": size,
            "n": n,
            "ni": ni_kind,
            "mhz": mhz,
            "shards": shards,
        },
        measured={"rtt_mean_us": result.mean_us, "rtt_min_us": result.min_us},
        budget=budget,
        rtt_samples=result.samples,
    )
    return report, collector


def _percentile_summary(samples) -> Dict[str, float]:
    """p50/p99/p999 of a sample list via :meth:`StatSeries.percentile`
    (exact nearest-rank on the recorded floats, not bucket midpoints)."""
    from repro.sim import StatSeries

    series = StatSeries()
    for value in samples:
        series.add(value)
    return {
        "p50": series.percentile(50.0),
        "p99": series.percentile(99.0),
        "p999": series.percentile(99.9),
    }


def _build_report(
    collector: SpanCollector,
    scenario: Dict[str, object],
    measured: Dict[str, float],
    budget: Optional[Dict[str, float]],
    rtt_samples=None,
) -> Dict[str, object]:
    per_trip = attrib.attribute_roundtrips(collector.spans)
    if not per_trip:
        raise RuntimeError(
            "no measurement root spans recorded -- was the benchmark "
            "instrumented with a 'bench'-layer span per round trip?"
        )
    for att in per_trip:
        att.check_sum()  # the CI-gated invariant
    mean = attrib.merge_mean(per_trip)

    # Tail attribution: the per-roundtrip per-layer contributions give
    # each layer's queueing-delay distribution across trips.
    percentiles: Dict[str, object] = {}
    if rtt_samples:
        percentiles["rtt_us"] = _percentile_summary(rtt_samples)
    layer_tails: Dict[str, Dict[str, float]] = {}
    for layer in sorted(mean.layers):
        layer_tails[layer] = _percentile_summary(
            [att.layers.get(layer, 0.0) for att in per_trip]
        )
    percentiles["layers_us"] = layer_tails

    report: Dict[str, object] = {
        "scenario": scenario,
        "measured": measured,
        "roundtrips": len(per_trip),
        "attribution": {
            "mean_window_us": mean.window_us,
            "layers_us": {k: mean.layers[k] for k in sorted(mean.layers)},
            "fractions": {
                k: mean.fraction(k) for k in sorted(mean.layers)
            },
            "per_roundtrip": [a.to_dict() for a in per_trip],
        },
        "invariant": {
            "sum_equals_window": True,
            "rel_tol": attrib.SUM_REL_TOL,
        },
        "percentiles": percentiles,
        "counters": collector.snapshot(),
        "tracer_records_dropped": int(
            collector.counters.get("tracer.records_dropped", 0)
        ),
        "engine_profile": collector.engine_profile(),
    }
    if collector.metrics is not None:
        report["metrics"] = collector.metrics.snapshot()
    if budget is not None:
        comparison = budgets.compare(mean.layers, budget)
        report["budget"] = {
            "layers_us": {k: budget[k] for k in sorted(budget)},
            **comparison,
        }
    return report


#: scenario name -> runner; each returns ``(report_dict, collector)``.
SCENARIOS: Dict[str, Callable] = {
    "fig3": run_fig3,
}


def run_scenario(name: str, **kwargs):
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None
    return runner(**kwargs)


def default_json_path(scenario: str) -> Path:
    return REPO_ROOT / f"OBS_{scenario}_attribution.json"


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")


def format_report(
    report: Dict[str, object], percentiles: bool = False
) -> str:
    """Human-readable per-layer table for the CLI.

    ``percentiles`` appends the tail-latency section (p50/p99/p999 RTT
    plus each layer's queueing-delay tail across round trips).
    """
    lines = []
    scenario = report["scenario"]
    att = report["attribution"]
    lines.append(
        f"{scenario['figure']}: {scenario['benchmark']} "
        f"size={scenario['size']} ni={scenario['ni']} "
        f"({report['roundtrips']} round trips)"
    )
    measured = report["measured"]
    lines.append(
        f"  measured RTT: mean {measured['rtt_mean_us']:.2f} us, "
        f"min {measured['rtt_min_us']:.2f} us"
    )
    budget = report.get("budget")
    budget_layers = budget["layers_us"] if budget else {}
    lines.append(f"  {'layer':<14}{'us':>10}{'share':>9}" +
                 (f"{'budget':>10}{'delta':>9}" if budget else ""))
    layers = att["layers_us"]
    for layer in sorted(layers, key=lambda k: -layers[k]):
        row = (
            f"  {layer:<14}{layers[layer]:>10.3f}"
            f"{att['fractions'][layer]:>8.1%}"
        )
        if budget:
            if layer in budget_layers:
                row += (
                    f"{budget_layers[layer]:>10.3f}"
                    f"{budget['deltas_us'][layer]:>+9.3f}"
                )
            else:
                row += f"{'-':>10}{'-':>9}"
        lines.append(row)
    total = sum(layers.values())
    lines.append(
        f"  {'sum':<14}{total:>10.3f}{'100.0%':>8} "
        f"(window {att['mean_window_us']:.3f} us)"
    )
    if budget:
        verdict = "within" if budget["ok"] else "OUTSIDE"
        lines.append(
            f"  budget check: {verdict} {budget['rel_tol']:.0%} of "
            f"{budget['budget_total_us']:.2f} us "
            f"(tolerance {budget['tolerance_us']:.2f} us/layer)"
        )
    if percentiles:
        pct = report.get("percentiles", {})
        rtt = pct.get("rtt_us")
        if rtt:
            lines.append(
                f"  RTT tails: p50 {rtt['p50']:.3f} us, "
                f"p99 {rtt['p99']:.3f} us, p999 {rtt['p999']:.3f} us"
            )
        tails = pct.get("layers_us", {})
        if tails:
            lines.append(f"  {'layer tail':<14}{'p50':>10}{'p99':>10}{'p999':>10}")
            for layer in sorted(tails, key=lambda k: -tails[k]["p99"]):
                t = tails[layer]
                lines.append(
                    f"  {layer:<14}{t['p50']:>10.3f}{t['p99']:>10.3f}"
                    f"{t['p999']:>10.3f}"
                )
    dropped = report.get("tracer_records_dropped", 0)
    if dropped:
        lines.append(
            f"  WARNING: tracer dropped {dropped} record(s) -- counter "
            f"attribution is undercounting (raise the tracer ring limit)"
        )
    return "\n".join(lines)
