"""Timeline export: Chrome trace_event / Perfetto JSON.

The exported object follows the trace_event "JSON Array Format" wrapped
in ``{"traceEvents": [...]}`` so both ``chrome://tracing`` and
https://ui.perfetto.dev load it directly.  Simulated time is already in
microseconds, which is exactly the ``ts``/``dur`` unit the format wants
-- no scaling.

Mapping:

* one *process* per host (and one for each infrastructure element that
  emits spans, e.g. links and switches),
* one *thread* per layer within a host, so the per-layer lanes line up
  under each other,
* spans become complete events (``ph: "X"``),
* counter samples become counter events (``ph: "C"``),
* process/thread names ride on metadata events (``ph: "M"``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.obs.spans import Span, SpanCollector

#: Stable lane order for layer threads within a host's process.
LAYER_ORDER = [
    "bench", "uam", "tcp", "udp", "ip", "kernel", "host",
    "ni_tx", "ni_rx", "wire", "switch",
]


def _lane(layer: str) -> int:
    try:
        return LAYER_ORDER.index(layer) + 1
    except ValueError:
        return len(LAYER_ORDER) + 1


def to_trace_events(collector: SpanCollector) -> Dict[str, object]:
    """Render a collector's spans and counter samples as trace_event JSON.

    When any span carries a nonzero shard tag (a merged multi-shard
    trace), processes are keyed per ``(shard, host)`` and named
    ``shardK/host`` so each shard gets its own lane group; single-shard
    traces render exactly as before.
    """
    sharded = any(span.shard for span in collector.spans)
    pids: Dict[Tuple[int, str], int] = {}
    events: List[dict] = []

    def pid_of(host: str, shard: int = 0) -> int:
        key = (shard, host or "(global)")
        if key not in pids:
            pids[key] = len(pids) + 1
            name = f"shard{shard}/{key[1]}" if sharded else key[1]
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[key], "tid": 0,
                "args": {"name": name},
            })
        return pids[key]

    named_threads: Dict[Tuple[int, int], str] = {}

    def tid_of(pid: int, layer: str) -> int:
        tid = _lane(layer)
        if (pid, tid) not in named_threads:
            named_threads[(pid, tid)] = layer
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": layer},
            })
        return tid

    for span in collector.spans:
        if span.t1 is None:
            continue
        pid = pid_of(span.host, span.shard)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.layer,
            "pid": pid,
            "tid": tid_of(pid, span.layer),
            "ts": span.t0,
            "dur": span.t1 - span.t0,
            "args": _span_args(span),
        })
    for when, track, host, value in collector.samples:
        pid = pid_of(host)
        events.append({
            "ph": "C", "name": track, "pid": pid, "tid": 0,
            "ts": when, "args": {"value": value},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "counters": collector.snapshot(),
            "engine_profile": collector.engine_profile(),
        },
    }


def _span_args(span: Span) -> dict:
    args = {"sid": span.sid, "depth": span.depth}
    if span.shard:
        args["shard"] = span.shard
    if span.parent is not None:
        args["parent_sid"] = span.parent.sid
    if span.attrs:
        args.update(span.attrs)
    return args


def write_trace(collector: SpanCollector, path: str) -> int:
    """Write the Perfetto/Chrome JSON to ``path``; returns event count."""
    doc = to_trace_events(collector)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
    return len(doc["traceEvents"])
