"""Output-buffered ATM switch in the style of the Fore ASX-200.

Each port is a full-duplex fiber attachment: cells arriving on a port's
input are looked up in a per-(port, VCI) routing table, relabelled with
the outgoing VCI, and forwarded after a fixed switching latency to the
output link of the destination port.  Output contention is absorbed by
the (finite) output link queue; overflow drops cells, which downstream
turns into AAL5 CRC failures -- the paper's §7.8 cell-loss discussion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.atm.cell import Cell
from repro.atm.link import TAXI_140_BPS, CellTrain, Link
from repro.obs import metrics as _metrics
from repro.sim import Simulator, Tracer
from repro.sim import batch as _batch
from repro.sim import engine as _engine


@dataclass(frozen=True)
class SwitchRoute:
    out_port: int
    out_vci: int


class Switch:
    """An N-port VCI-translating cell switch."""

    __slots__ = (
        "sim",
        "n_ports",
        "switching_latency_us",
        "name",
        "tracer",
        "_routes",
        "output_links",
        "cells_switched",
        "cells_unrouted",
        "remote_peers",
        "_k_unrouted",
        "_mk_unrouted",
        "_mk_buf",
    )

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        bandwidth_bps: float = TAXI_140_BPS,
        switching_latency_us: float = 2.0,
        output_queue_cells: int = 256,
        propagation_us: float = 0.3,
        name: str = "asx200",
        tracer: Optional[Tracer] = None,
    ):
        if n_ports < 1:
            raise ValueError("switch needs at least one port")
        self.sim = sim
        self.n_ports = n_ports
        self.switching_latency_us = switching_latency_us
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer()
        self._routes: Dict[Tuple[int, int], SwitchRoute] = {}
        self.output_links = [
            Link(
                sim,
                bandwidth_bps=bandwidth_bps,
                propagation_us=propagation_us,
                name=f"{name}.out{p}",
                tracer=self.tracer,
                queue_cells=output_queue_cells,
            )
            for p in range(n_ports)
        ]
        self.cells_switched = 0
        self.cells_unrouted = 0
        #: Cut-edge stubs for trunk ports whose far-end switch lives on
        #: another shard: ``remote_peers[port]`` refuses attribute
        #: access (the ``cross-shard-state`` lint rule is the static
        #: counterpart of that runtime guard).
        self.remote_peers: Dict[int, object] = {}
        # Built once: _receive() runs per cell on the event hot path.
        self._k_unrouted = f"{name}.unrouted"
        self._mk_unrouted = f"switch.{name}.unrouted"
        self._mk_buf = f"switch.{name}.buffer_high_water"

    # -- trunks (multi-switch fabrics) ----------------------------------
    def trunk_inlet(self, port: int):
        """``(cell_sink, train_sink)`` for wiring a trunk into ``port``.

        Local fabrics pass these straight to the peer switch's output
        link; partitioned fabrics register them as the cut-edge inlet.
        """
        return self.input_sink(port), self.input_train_sink(port)

    def connect_trunk(self, out_port: int, peer: "Switch", peer_port: int) -> None:
        """Wire ``out_port``'s fiber into ``peer``'s input ``peer_port``
        (both switches on the same timeline)."""
        sink, train_sink = peer.trunk_inlet(peer_port)
        self.output_links[out_port].connect(sink, train_sink=train_sink)

    def bind_trunk_cut(self, out_port: int, ctx, edge) -> None:
        """Materialize ``out_port``'s trunk fiber as a cut channel.

        ``ctx`` is a :class:`~repro.sim.shard.ShardContext`; the far-end
        switch is represented only by a stub from here on.
        """
        self._check_port(out_port)
        channel = ctx.bind_cut(self.output_links[out_port], edge)
        self.remote_peers[out_port] = channel.stub

    def add_route(self, in_port: int, in_vci: int, out_port: int, out_vci: int) -> None:
        self._check_port(in_port)
        self._check_port(out_port)
        key = (in_port, in_vci)
        if key in self._routes:
            raise ValueError(f"route already exists for port {in_port} VCI {in_vci}")
        if _engine.access_hook is not None:
            _engine.access_hook(id(self._routes), f"routes:{self.name}", "w")
        self._routes[key] = SwitchRoute(out_port, out_vci)

    def remove_route(self, in_port: int, in_vci: int) -> None:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self._routes), f"routes:{self.name}", "w")
        del self._routes[(in_port, in_vci)]

    def has_route(self, in_port: int, in_vci: int) -> bool:
        return (in_port, in_vci) in self._routes

    def input_sink(self, port: int):
        """The callable to wire a host's TX link into."""
        self._check_port(port)

        def sink(cell: Cell, _port: int = port) -> None:
            self._receive(_port, cell)

        return sink

    def input_train_sink(self, port: int):
        """Train-aware variant of :meth:`input_sink`.

        A :class:`CellTrain` is expanded here: cell ``i`` of the train is
        forwarded exactly as if it had arrived individually at
        ``train.arrival_us(i)``, so output-link contention and FIFO order
        against other traffic are preserved cell-for-cell."""
        self._check_port(port)

        def sink(train: CellTrain, _port: int = port) -> None:
            self._receive_train(_port, train)

        # Marker for the train-expansion batch kernel: identifies this
        # closure as a switch input so the kernel can replay the
        # receive/forward cascade analytically (repro.sim.batch).
        sink.__batch_switch__ = (self, port)
        return sink

    def _receive(self, port: int, cell: Cell) -> None:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self._routes), f"routes:{self.name}", "r")
        route = self._routes.get((port, cell.vci))
        if route is None:
            self.cells_unrouted += 1
            self.tracer.count(self._k_unrouted)
            _m = _metrics.active
            if _m is not None:
                _m.count(self._mk_unrouted)
            return
        _o = obs.active
        if _o is not None:
            now = self.sim._now
            _o.add_complete(
                now, now + self.switching_latency_us, "xbar", "switch", host=self.name
            )
        self.sim.schedule_callback(self.switching_latency_us, self._forward, route, cell)

    def _receive_train(self, port: int, train: CellTrain) -> None:
        # Fires at the first cell's arrival time; later cells are still
        # on the wire, so each is received at its own arrival offset.
        # The route is looked up per cell *at arrival time*: circuits
        # torn down mid-train drop the tail cells, same as per-cell mode.
        cells = train.cells
        arrivals = train.arrivals_us
        schedule_at = self.sim.schedule_callback_at
        self._receive(port, cells[0])
        for i in range(1, len(cells)):
            schedule_at(arrivals[i], self._receive, port, cells[i])

    def _forward(self, route: SwitchRoute, cell: Cell) -> None:
        self.cells_switched += 1
        link = self.output_links[route.out_port]
        link.send(cell.with_vci(route.out_vci))
        _m = _metrics.active
        if _m is not None:
            # Output contention lives in the per-port link queues; the
            # switch-level high-water gauge is the max across all ports.
            _m.gauge_max(self._mk_buf, len(link._starts))

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ValueError(f"port {port} out of range (0..{self.n_ports - 1})")


# Directly scheduled per-cell receives (deferred train cells) fuse under
# the generic incremental kernel, which re-checks the global minimum
# after every call and is therefore bit-identical by construction.
_batch.register(Switch._receive, _batch.run_fused)
