"""The ATM cell: 53 bytes on the wire, 48 bytes of payload.

Only the header fields the substrate actually uses are modelled: the
virtual channel identifier (the U-Net message *tag*, §3.2) and the
payload-type "last cell of AAL5 PDU" bit.  The 5 header bytes are still
charged on the wire so that link serialization times and the Figure 4
"AAL-5 limit" sawtooth come out right.
"""

from __future__ import annotations

from dataclasses import dataclass

ATM_CELL_SIZE = 53
ATM_HEADER_SIZE = 5
ATM_PAYLOAD_SIZE = 48
MAX_VCI = 0xFFFF


@dataclass(slots=True)
class Cell:
    """A single ATM cell in flight."""

    vci: int
    payload: bytes
    last: bool = False  # AAL5 end-of-PDU indication (PT bit)
    seq: int = 0  # diagnostic: position within its PDU

    def __post_init__(self) -> None:
        if not 0 <= self.vci <= MAX_VCI:
            raise ValueError(f"VCI out of range: {self.vci}")
        if len(self.payload) != ATM_PAYLOAD_SIZE:
            raise ValueError(
                f"cell payload must be exactly {ATM_PAYLOAD_SIZE} bytes, "
                f"got {len(self.payload)}"
            )

    @property
    def wire_bytes(self) -> int:
        return ATM_CELL_SIZE

    def with_vci(self, vci: int) -> "Cell":
        """Copy of this cell relabelled with a new VCI (switch translation).

        The payload was validated when the cell was built; only the new
        VCI needs checking, so this skips ``__init__`` entirely (it is
        the hottest allocation on the switch forwarding path)."""
        if not 0 <= vci <= MAX_VCI:
            raise ValueError(f"VCI out of range: {vci}")
        clone = object.__new__(Cell)
        clone.vci = vci
        clone.payload = self.payload
        clone.last = self.last
        clone.seq = self.seq
        return clone
