"""Topology builder: hosts in a star around one ASX-200 switch.

This is the testbed of the paper (§4.2): up to eight workstations, each
on its own 140 Mbit/s full-duplex TAXI fiber to the switch.  The network
also provides the *signalling service* role of §3.2: allocating
virtual-circuit identifiers and installing switch routes when the
kernel agent opens a channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.atm.cell import Cell
from repro.atm.link import TAXI_140_BPS, Link
from repro.atm.switch import Switch
from repro.sim import Simulator, Tracer

#: VCIs 0-31 are reserved for signalling/management, as on real ATM gear.
FIRST_USER_VCI = 32


@dataclass(frozen=True)
class VciPair:
    """One side's view of a full-duplex virtual circuit."""

    tx: int  # VCI to stamp on outgoing cells
    rx: int  # VCI on which this side's incoming cells arrive

    def reversed(self) -> "VciPair":
        return VciPair(tx=self.rx, rx=self.tx)


class NetworkPort:
    """A host's attachment point: one TX fiber in, one RX fiber out."""

    def __init__(self, network: "AtmNetwork", index: int, name: str, tx_link: Link):
        self.network = network
        self.index = index
        self.name = name
        self.tx_link = tx_link

    def send_cell(self, cell: Cell) -> bool:
        return self.tx_link.send(cell)

    def set_rx_sink(self, sink: Callable[[Cell], None]) -> None:
        self.network.switch.output_links[self.index].connect(sink)


class AtmNetwork:
    """Star of hosts around one switch, plus VCI signalling."""

    def __init__(
        self,
        sim: Simulator,
        n_ports: int = 8,
        bandwidth_bps: float = TAXI_140_BPS,
        propagation_us: float = 0.3,
        switching_latency_us: float = 2.0,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.tracer = tracer if tracer is not None else Tracer()
        self.switch = Switch(
            sim,
            n_ports=n_ports,
            bandwidth_bps=bandwidth_bps,
            switching_latency_us=switching_latency_us,
            propagation_us=propagation_us,
            tracer=self.tracer,
        )
        self._ports: Dict[str, NetworkPort] = {}
        self._next_vci = FIRST_USER_VCI
        self._next_port = 0

    def attach(self, name: str) -> NetworkPort:
        """Attach a named host; returns its port."""
        if name in self._ports:
            raise ValueError(f"host {name!r} already attached")
        if self._next_port >= self.switch.n_ports:
            raise ValueError("switch is out of ports")
        index = self._next_port
        self._next_port += 1
        tx_link = Link(
            self.sim,
            bandwidth_bps=self.bandwidth_bps,
            propagation_us=self.switch.output_links[index].propagation_us,
            name=f"{name}.tx",
            tracer=self.tracer,
        )
        tx_link.connect(
            self.switch.input_sink(index),
            train_sink=self.switch.input_train_sink(index),
        )
        port = NetworkPort(self, index, name, tx_link)
        self._ports[name] = port
        return port

    def port(self, name: str) -> NetworkPort:
        return self._ports[name]

    @property
    def port_names(self):
        return list(self._ports)

    def allocate_vci(self) -> int:
        vci = self._next_vci
        self._next_vci += 1
        return vci

    def open_virtual_circuit(self, a: str, b: str) -> VciPair:
        """Install a full-duplex VC between hosts ``a`` and ``b``.

        Returns host ``a``'s :class:`VciPair`; host ``b`` uses the
        reversed pair.  This is the switch-path-setup step that the
        paper leaves to the OS signalling service.
        """
        port_a, port_b = self._ports[a], self._ports[b]
        if port_a is port_b:
            raise ValueError("cannot open a VC from a host to itself")
        vci_ab = self.allocate_vci()
        vci_ba = self.allocate_vci()
        self.switch.add_route(port_a.index, vci_ab, port_b.index, vci_ab)
        self.switch.add_route(port_b.index, vci_ba, port_a.index, vci_ba)
        return VciPair(tx=vci_ab, rx=vci_ba)

    def close_virtual_circuit(self, a: str, b: str, pair: VciPair) -> None:
        port_a, port_b = self._ports[a], self._ports[b]
        self.switch.remove_route(port_a.index, pair.tx)
        self.switch.remove_route(port_b.index, pair.rx)

    def cell_time_us(self) -> float:
        """Wire time of one cell on this network's links."""
        return 53 * 8 / self.bandwidth_bps * 1e6
