"""Topology builder: hosts in a star around one ASX-200 switch.

This is the testbed of the paper (§4.2): up to eight workstations, each
on its own 140 Mbit/s full-duplex TAXI fiber to the switch.  The network
also provides the *signalling service* role of §3.2: allocating
virtual-circuit identifiers and installing switch routes when the
kernel agent opens a channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.atm.cell import Cell
from repro.atm.link import TAXI_140_BPS, Link
from repro.atm.switch import Switch
from repro.sim import Simulator, Tracer
from repro.sim.shard.plan import ShardPlan, block_owner

#: VCIs 0-31 are reserved for signalling/management, as on real ATM gear.
FIRST_USER_VCI = 32

#: The switch (and everything reached only through it) lives on shard 0
#: when a star is auto-partitioned; host ports are block-partitioned
#: across all shards, so shard 0 carries the switch plus the first block.
SWITCH_SHARD = 0


@dataclass(frozen=True)
class VciPair:
    """One side's view of a full-duplex virtual circuit."""

    tx: int  # VCI to stamp on outgoing cells
    rx: int  # VCI on which this side's incoming cells arrive

    def reversed(self) -> "VciPair":
        return VciPair(tx=self.rx, rx=self.tx)


class NetworkPort:
    """A host's attachment point: one TX fiber in, one RX fiber out."""

    def __init__(
        self,
        network: "AtmNetwork",
        index: int,
        name: str,
        tx_link: Link,
        shard: int = SWITCH_SHARD,
    ):
        self.network = network
        self.index = index
        self.name = name
        self.tx_link = tx_link
        #: Owning shard of this host under the network's partition (0
        #: when the network is not sharded).
        self.shard = shard

    def send_cell(self, cell: Cell) -> bool:
        return self.tx_link.send(cell)

    def set_rx_sink(self, sink: Callable[[Cell], None]) -> None:
        self.network.switch.output_links[self.index].connect(sink)


class AtmNetwork:
    """Star of hosts around one switch, plus VCI signalling."""

    def __init__(
        self,
        sim: Simulator,
        n_ports: int = 8,
        bandwidth_bps: float = TAXI_140_BPS,
        propagation_us: float = 0.3,
        switching_latency_us: float = 2.0,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.tracer = tracer if tracer is not None else Tracer()
        self.switch = Switch(
            sim,
            n_ports=n_ports,
            bandwidth_bps=bandwidth_bps,
            switching_latency_us=switching_latency_us,
            propagation_us=propagation_us,
            tracer=self.tracer,
        )
        self._ports: Dict[str, NetworkPort] = {}
        self._next_vci = FIRST_USER_VCI
        self._next_port = 0
        # Auto-partition: on a sharded simulator the star is split along
        # its natural cut — host ports block-partitioned across shards,
        # the switch on shard 0 — and every fiber whose two ends land on
        # different shards becomes a codec-backed channel (DESIGN.md §8).
        self.shard_plan: Optional[ShardPlan] = None
        n_shards = getattr(sim, "n_shards", 1)
        if n_shards > 1:
            plan = ShardPlan(n_shards)
            plan.assign(self.switch.name, SWITCH_SHARD)
            for p in range(n_ports):
                owner = block_owner(p, n_ports, n_shards)
                if owner != SWITCH_SHARD:
                    out = self.switch.output_links[p]
                    edge = plan.add_edge(
                        out.name, SWITCH_SHARD, owner, out.cut_lookahead_us()
                    )
                    out.bind_cut(
                        sim.open_channel(
                            edge, out._deliver_cell, out._deliver_train
                        )
                    )
            self.shard_plan = plan

    def attach(self, name: str) -> NetworkPort:
        """Attach a named host; returns its port."""
        if name in self._ports:
            raise ValueError(f"host {name!r} already attached")
        if self._next_port >= self.switch.n_ports:
            raise ValueError("switch is out of ports")
        index = self._next_port
        self._next_port += 1
        tx_link = Link(
            self.sim,
            bandwidth_bps=self.bandwidth_bps,
            propagation_us=self.switch.output_links[index].propagation_us,
            name=f"{name}.tx",
            tracer=self.tracer,
        )
        tx_link.connect(
            self.switch.input_sink(index),
            train_sink=self.switch.input_train_sink(index),
        )
        shard = SWITCH_SHARD
        if self.shard_plan is not None:
            plan = self.shard_plan
            shard = block_owner(index, self.switch.n_ports, plan.n_shards)
            plan.assign(name, shard)
            if shard != SWITCH_SHARD:
                edge = plan.add_edge(
                    tx_link.name, shard, SWITCH_SHARD,
                    tx_link.cut_lookahead_us(),
                )
                tx_link.bind_cut(
                    self.sim.open_channel(
                        edge, tx_link._deliver_cell, tx_link._deliver_train
                    )
                )
        port = NetworkPort(self, index, name, tx_link, shard=shard)
        self._ports[name] = port
        return port

    def port(self, name: str) -> NetworkPort:
        return self._ports[name]

    @property
    def port_names(self):
        return list(self._ports)

    def allocate_vci(self) -> int:
        vci = self._next_vci
        self._next_vci += 1
        return vci

    def open_virtual_circuit(self, a: str, b: str) -> VciPair:
        """Install a full-duplex VC between hosts ``a`` and ``b``.

        Returns host ``a``'s :class:`VciPair`; host ``b`` uses the
        reversed pair.  This is the switch-path-setup step that the
        paper leaves to the OS signalling service.
        """
        port_a, port_b = self._ports[a], self._ports[b]
        if port_a is port_b:
            raise ValueError("cannot open a VC from a host to itself")
        vci_ab = self.allocate_vci()
        vci_ba = self.allocate_vci()
        self.switch.add_route(port_a.index, vci_ab, port_b.index, vci_ab)
        self.switch.add_route(port_b.index, vci_ba, port_a.index, vci_ba)
        return VciPair(tx=vci_ab, rx=vci_ba)

    def close_virtual_circuit(self, a: str, b: str, pair: VciPair) -> None:
        port_a, port_b = self._ports[a], self._ports[b]
        self.switch.remove_route(port_a.index, pair.tx)
        self.switch.remove_route(port_b.index, pair.rx)

    def cell_time_us(self) -> float:
        """Wire time of one cell on this network's links."""
        return 53 * 8 / self.bandwidth_bps * 1e6
