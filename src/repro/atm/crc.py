"""Checksums used by the substrate.

* CRC-32 (IEEE 802.3 polynomial) as used by the AAL5 trailer.  The
  SBA-200 computes this in hardware; the SBA-100 lacks the hardware and
  the paper charges the host CPU for it (Table 1 discussion).
* The 16-bit one's-complement Internet checksum used by UDP/TCP (§7.6).
"""

from __future__ import annotations

_CRC32_POLY = 0xEDB88320  # reflected form of 0x04C11DB7


def _build_table() -> list:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_CRC32_TABLE = _build_table()


def crc32_aal5(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """CRC-32 over ``data``; chainable via the ``crc`` argument.

    Returns the final (inverted) CRC value as used in the AAL5 trailer.
    To chain, pass the *raw* running value: use :func:`crc32_update` for
    incremental computation.
    """
    return crc32_finish(crc32_update(data, crc))


def crc32_update(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """Incremental CRC-32 update; returns the running (non-inverted) value."""
    table = _CRC32_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc


def crc32_finish(crc: int) -> int:
    return crc ^ 0xFFFFFFFF


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit one's-complement checksum."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
