"""Checksums used by the substrate.

* CRC-32 (IEEE 802.3 polynomial) as used by the AAL5 trailer.  The
  SBA-200 computes this in hardware; the SBA-100 lacks the hardware and
  the paper charges the host CPU for it (Table 1 discussion).
* The 16-bit one's-complement Internet checksum used by UDP/TCP (§7.6).
"""

from __future__ import annotations

import zlib


def crc32_aal5(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """CRC-32 over ``data``; chainable via the ``crc`` argument.

    Returns the final (inverted) CRC value as used in the AAL5 trailer.
    To chain, pass the *raw* running value: use :func:`crc32_update` for
    incremental computation.
    """
    return crc32_finish(crc32_update(data, crc))


def crc32_update(data: bytes, crc: int = 0xFFFFFFFF) -> int:
    """Incremental CRC-32 update; returns the running (non-inverted) value.

    ``zlib.crc32`` implements the same reflected 0xEDB88320 polynomial
    but exposes the *finished* (inverted) value; bridging the two
    conventions is the pair of XORs below.  Identical output to the old
    pure-Python table loop, at C speed.
    """
    return zlib.crc32(data, crc ^ 0xFFFFFFFF) ^ 0xFFFFFFFF


def crc32_finish(crc: int) -> int:
    return crc ^ 0xFFFFFFFF


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit one's-complement checksum."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
