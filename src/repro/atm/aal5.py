"""AAL5 segmentation and reassembly.

A CPCS-PDU is the payload padded to a multiple of 48 bytes such that the
last 8 bytes form the trailer: UU (1), CPI (1), Length (2, big-endian),
CRC-32 (4).  The CRC covers payload, padding, and the first four trailer
bytes.  Dropping any cell of a PDU makes the reassembled PDU fail its
length or CRC check and the whole PDU is discarded -- the behaviour that
makes large TCP segments risky over ATM (paper §7.8, Romanow & Floyd).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from repro import obs
from repro.atm.cell import ATM_CELL_SIZE, ATM_PAYLOAD_SIZE, Cell
from repro.atm.crc import crc32_finish, crc32_update

AAL5_TRAILER_SIZE = 8
#: Maximum CPCS-PDU payload length (16-bit length field).
AAL5_MAX_PDU = 65535


class AAL5Error(ValueError):
    """Raised on reassembly failure (bad CRC, bad length, oversized PDU)."""


def cells_for_pdu(payload_len: int) -> int:
    """Number of cells needed to carry a ``payload_len``-byte PDU."""
    if payload_len < 0:
        raise ValueError("negative PDU length")
    total = payload_len + AAL5_TRAILER_SIZE
    return max(1, -(-total // ATM_PAYLOAD_SIZE))


def aal5_limit_bandwidth(payload_len: int, link_bps: float) -> float:
    """Theoretical peak payload bandwidth (bytes/sec) for PDUs of one size.

    This is the "AAL-5 limit" curve of Figure 4: the sawtooth comes from
    the 48-byte cell quantization and the 8-byte trailer.
    """
    if payload_len <= 0:
        return 0.0
    n_cells = cells_for_pdu(payload_len)
    wire_seconds = n_cells * ATM_CELL_SIZE * 8 / link_bps
    return payload_len / wire_seconds


def segment_pdu(payload: bytes, vci: int) -> List[Cell]:
    """Segment ``payload`` into AAL5 cells tagged with ``vci``."""
    if len(payload) > AAL5_MAX_PDU:
        raise AAL5Error(f"PDU too large for AAL5: {len(payload)} bytes")
    n_cells = cells_for_pdu(len(payload))
    pad_len = n_cells * ATM_PAYLOAD_SIZE - len(payload) - AAL5_TRAILER_SIZE
    body = payload + bytes(pad_len) + struct.pack(">BBH", 0, 0, len(payload))
    crc = crc32_finish(crc32_update(body))
    cpcs = body + struct.pack(">I", crc)
    assert len(cpcs) == n_cells * ATM_PAYLOAD_SIZE
    cells = []
    for i in range(n_cells):
        chunk = cpcs[i * ATM_PAYLOAD_SIZE : (i + 1) * ATM_PAYLOAD_SIZE]
        # The cells *are* the product of segmentation; one object per
        # wire cell is the modelled behaviour, not overhead.
        cells.append(Cell(vci=vci, payload=chunk, last=(i == n_cells - 1), seq=i))  # simcost: disable=cost-alloc
    return cells


def reassemble_pdu(cells: List[Cell]) -> bytes:
    """Reassemble a complete list of cells back into the PDU payload.

    Raises :class:`AAL5Error` when the trailer length or CRC does not
    verify (e.g. after cell loss).
    """
    if not cells:
        raise AAL5Error("no cells to reassemble")
    cpcs = b"".join(cell.payload for cell in cells)
    uu_cpi_len = cpcs[-AAL5_TRAILER_SIZE : -4]
    (length,) = struct.unpack(">H", uu_cpi_len[2:4])
    (got_crc,) = struct.unpack(">I", cpcs[-4:])
    want_crc = crc32_finish(crc32_update(cpcs[:-4]))
    if got_crc != want_crc:
        raise AAL5Error("AAL5 CRC mismatch")
    if length > len(cpcs) - AAL5_TRAILER_SIZE:
        raise AAL5Error(f"AAL5 length field {length} exceeds PDU body")
    if len(cells) > 1 and length + AAL5_TRAILER_SIZE <= (len(cells) - 1) * ATM_PAYLOAD_SIZE:
        # This payload would have fit in fewer cells: a cell count mismatch.
        raise AAL5Error("AAL5 length inconsistent with cell count")
    return cpcs[:length]


class Reassembler:
    """Per-VCI reassembly state machine.

    Feed cells with :meth:`push`; a completed PDU payload is returned
    when the last cell of a PDU arrives, ``None`` otherwise.  Corrupted
    PDUs (cell loss) are counted and dropped.
    """

    def __init__(self, max_cells: int = 4096):
        self.max_cells = max_cells
        self._partial: Dict[int, List[Cell]] = {}
        self.completed_pdus = 0
        self.crc_errors = 0
        self.overflows = 0

    def push(self, cell: Cell) -> Optional[bytes]:
        buf = self._partial.setdefault(cell.vci, [])
        buf.append(cell)
        if len(buf) > self.max_cells:
            # Runaway PDU (lost last-cell marker): drop accumulated state.
            self.overflows += 1
            self._partial[cell.vci] = []
            return None
        if not cell.last:
            return None
        cells, self._partial[cell.vci] = buf, []
        _o = obs.active
        try:
            payload = reassemble_pdu(cells)
        except AAL5Error:
            self.crc_errors += 1
            if _o is not None:
                _o.bump("aal5.crc_errors")
            return None
        self.completed_pdus += 1
        if _o is not None:
            _o.bump("aal5.pdus_reassembled")
            _o.bump("aal5.cells_reassembled", len(cells))
        return payload

    def pending_cells(self, vci: int) -> int:
        return len(self._partial.get(vci, ()))
