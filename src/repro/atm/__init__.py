"""Cell-level ATM network substrate.

Models the physical network the U-Net paper runs on: 53-byte ATM cells
carried over 140 Mbit/s TAXI fibers through a Fore ASX-200-style
output-buffered switch, with AAL5 segmentation-and-reassembly (8-byte
trailer, CRC-32) on top.

The substrate moves *real bytes*: every PDU is segmented into genuine
48-byte cell payloads and reassembled (with CRC verification) at the far
end, so cell loss corrupts PDUs exactly the way §7.8 of the paper
discusses for TCP-over-ATM.
"""

from repro.atm.aal5 import (
    AAL5_TRAILER_SIZE,
    AAL5Error,
    Reassembler,
    aal5_limit_bandwidth,
    cells_for_pdu,
    reassemble_pdu,
    segment_pdu,
)
from repro.atm.cell import ATM_CELL_SIZE, ATM_PAYLOAD_SIZE, Cell
from repro.atm.crc import crc32_aal5, internet_checksum
from repro.atm.link import TAXI_140_BPS, Link
from repro.atm.network import AtmNetwork, NetworkPort
from repro.atm.switch import Switch, SwitchRoute

__all__ = [
    "AAL5Error",
    "AAL5_TRAILER_SIZE",
    "ATM_CELL_SIZE",
    "ATM_PAYLOAD_SIZE",
    "AtmNetwork",
    "Cell",
    "Link",
    "NetworkPort",
    "Reassembler",
    "Switch",
    "SwitchRoute",
    "TAXI_140_BPS",
    "aal5_limit_bandwidth",
    "cells_for_pdu",
    "crc32_aal5",
    "internet_checksum",
    "reassemble_pdu",
    "segment_pdu",
]
